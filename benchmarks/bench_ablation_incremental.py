"""Ablation: reference vs delta-driven inflationary evaluation.

DESIGN.md calls out the bottom-up iteration as the cost centre of the
paper's proposed semantics; this bench quantifies what differential
evaluation buys on recursive workloads (and verifies both engines agree).
"""

import pytest

from repro.core.fixpoint import idb_equal
from repro.core.semantics import (
    incremental_inflationary_semantics,
    inflationary_semantics,
)
from repro.graphs import generators as gg, graph_to_database
from repro.queries import distance_program, transitive_closure_program

TC = transitive_closure_program()


@pytest.mark.parametrize("n", [8, 16])
def test_tc_reference(benchmark, n):
    db = graph_to_database(gg.path(n))
    result = benchmark(inflationary_semantics, TC, db)
    assert len(result.idb["S"]) == n * (n - 1) // 2


@pytest.mark.parametrize("n", [8, 16])
def test_tc_incremental(benchmark, n):
    db = graph_to_database(gg.path(n))
    result = benchmark(incremental_inflationary_semantics, TC, db)
    assert len(result.idb["S"]) == n * (n - 1) // 2


@pytest.mark.parametrize("n", [8])
def test_distance_reference(benchmark, n):
    db = graph_to_database(gg.path(n))
    result = benchmark(inflationary_semantics, distance_program(), db)
    assert result.carrier_value


@pytest.mark.parametrize("n", [8])
def test_distance_incremental(benchmark, n):
    db = graph_to_database(gg.path(n))
    result = benchmark(incremental_inflationary_semantics, distance_program(), db)
    assert result.carrier_value


def test_engines_agree_on_bench_workload(benchmark):
    db = graph_to_database(gg.random_digraph(8, 0.25, seed=13))
    a = inflationary_semantics(distance_program(), db)
    b = benchmark.pedantic(
        incremental_inflationary_semantics,
        args=(distance_program(), db),
        rounds=1,
        iterations=1,
    )
    assert idb_equal(a.idb, b.idb)
