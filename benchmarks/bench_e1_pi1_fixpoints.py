"""E1: Section 2's worked example — pi_1 on L_n, C_n, G_n.

Regenerates: unique fixpoint on paths, 0/2 on odd/even cycles, 2^n
pairwise-incomparable fixpoints (and no least fixpoint) on G_n.
"""

from repro.bench import experiment

from bench_utils import run_once


def test_e1_pi1_fixpoint_structure(benchmark):
    run_once(benchmark, experiment("e1").run)
