"""E2: Theorem 1 / Example 1 — pi_SAT fixpoints = satisfying assignments."""

from repro.bench import experiment

from bench_utils import run_once


def test_e2_sat_normal_form(benchmark):
    run_once(benchmark, experiment("e2").run)
