"""E3: Theorem 2 — unique fixpoints track unique satisfying assignments."""

from repro.bench import experiment

from bench_utils import run_once


def test_e3_unique_fixpoint(benchmark):
    run_once(benchmark, experiment("e3").run)
