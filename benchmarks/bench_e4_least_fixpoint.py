"""E4: Theorem 3 — least-fixpoint decision via intersection of fixpoints."""

from repro.bench import experiment

from bench_utils import run_once


def test_e4_least_fixpoint(benchmark):
    run_once(benchmark, experiment("e4").run)
