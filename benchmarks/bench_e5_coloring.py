"""E5: Lemma 1 — pi_COL fixpoints = proper 3-colorings."""

from repro.bench import experiment

from bench_utils import run_once


def test_e5_coloring(benchmark):
    run_once(benchmark, experiment("e5").run)
