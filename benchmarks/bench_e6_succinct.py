"""E6: Theorem 4 — succinct 3-coloring via pi_SC + grounding blow-up."""

from repro.bench import experiment

from bench_utils import run_once


def test_e6_succinct_coloring(benchmark):
    run_once(benchmark, experiment("e6").run)
