"""E7: Section 4 — inflationary semantics: conservativity, totality, bounds."""

from repro.bench import experiment

from bench_utils import run_once


def test_e7_inflationary(benchmark):
    run_once(benchmark, experiment("e7").run)
