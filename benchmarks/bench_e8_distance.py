"""E8: Proposition 2 — distance query: inflationary vs stratified, EF games."""

from repro.bench import experiment

from bench_utils import run_once


def test_e8_distance_query(benchmark):
    run_once(benchmark, experiment("e8").run)
