"""E9: Section 5 — the expressiveness hierarchy, executable witnesses."""

from repro.bench import experiment

from bench_utils import run_once


def test_e9_hierarchy(benchmark):
    run_once(benchmark, experiment("e9").run)
