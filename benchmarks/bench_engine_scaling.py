"""Engineering benchmark: evaluation engines on growing inputs.

Supports the paper's polynomial-data-complexity argument for inflationary
semantics: time grows polynomially with the database for a fixed program,
and semi-naive evaluation beats naive re-derivation on recursive queries.
"""

import pytest

from repro.core.semantics import (
    inflationary_semantics,
    naive_least_fixpoint,
    seminaive_least_fixpoint,
    stratified_semantics,
    well_founded_semantics,
)
from repro.graphs import generators as gg, graph_to_database
from repro.queries import distance_program, pi1, transitive_closure_program

TC = transitive_closure_program()


@pytest.mark.parametrize("n", [8, 16, 24])
def test_tc_naive(benchmark, n):
    db = graph_to_database(gg.path(n))
    result = benchmark(naive_least_fixpoint, TC, db)
    assert len(result.idb["S"]) == n * (n - 1) // 2


@pytest.mark.parametrize("n", [8, 16, 24])
def test_tc_seminaive(benchmark, n):
    db = graph_to_database(gg.path(n))
    result = benchmark(seminaive_least_fixpoint, TC, db)
    assert len(result.idb["S"]) == n * (n - 1) // 2


@pytest.mark.parametrize("n", [8, 16, 24])
def test_tc_inflationary(benchmark, n):
    db = graph_to_database(gg.path(n))
    result = benchmark(inflationary_semantics, TC, db)
    assert len(result.idb["S"]) == n * (n - 1) // 2


@pytest.mark.parametrize("n", [6, 10])
def test_distance_program_inflationary(benchmark, n):
    db = graph_to_database(gg.path(n))
    result = benchmark(inflationary_semantics, distance_program(), db)
    assert result.carrier_value


@pytest.mark.parametrize("n", [6, 10])
def test_distance_program_stratified(benchmark, n):
    db = graph_to_database(gg.path(n))
    result = benchmark(stratified_semantics, distance_program(), db)
    assert result.relation("S3")


@pytest.mark.parametrize("n", [8, 16])
def test_well_founded_pi1_on_cycles(benchmark, n):
    db = graph_to_database(gg.cycle(n))
    result = benchmark(well_founded_semantics, pi1(), db)
    assert not result.is_total  # cycles stay undefined
