"""Materialized-view update latency vs from-scratch stratified recompute.

The PR-3 headline (ISSUE acceptance criterion): on the E8 distance
program, a single-tuple EDB update through ``MaterializedView`` is at
least 5x faster than recomputing the stratified fixpoint from scratch
at the largest benchmarked size.  Smaller sizes are reported for the
scaling picture; the assertion only binds at the largest, where the
``|A|**4``-shaped top stratum makes recomputation expensive while the
delta's derivation footprint stays small.
"""

from repro.bench.materialize_perf import measure_update_scenario

SIZES = (16, 24, 36)
HEADLINE_SPEEDUP = 5.0


def _run_all():
    return [measure_update_scenario(n, rounds=2) for n in SIZES]


def test_materialize_update_latency(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1, warmup_rounds=0)
    for m in results:
        assert m["equal"], "maintained view diverged from recompute at n=%d" % m["n"]
        print(
            "n=%2d build=%.3fs tail=%.4fs shortcut=%.4fs scratch=%.4fs "
            "(tail %.1fx, shortcut %.1fx)"
            % (
                m["n"],
                m["build_s"],
                m["tail_s"],
                m["shortcut_s"],
                m["scratch_s"],
                m["scratch_s"] / m["tail_s"],
                m["scratch_s"] / m["shortcut_s"],
            )
        )
    largest = results[-1]
    tail_speedup = largest["scratch_s"] / largest["tail_s"]
    assert tail_speedup >= HEADLINE_SPEEDUP, (
        "single-tuple tail update is only %.1fx faster than from-scratch "
        "recompute at n=%d (need >= %.1fx)"
        % (tail_speedup, largest["n"], HEADLINE_SPEEDUP)
    )
