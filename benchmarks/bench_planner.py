"""Compiled rule plans vs. the legacy per-round evaluator and dict executor.

Pairs of benchmarks over identical work: the ``*_compiled`` variant runs
the engines as shipped (plans compiled once per run, set-at-a-time batch
execution, indexes cached on relations), the ``*_legacy`` variant
iterates ``theta_legacy``, which re-plans the join order and rebuilds
every hash index on every round — the seed behaviour — and the
``*_dict_executor`` variants drive the *same compiled plans* through the
PR-1 tuple-at-a-time dict executor, isolating the batch executor's win
(anti-join negation, complement-based completion).  Every measured run
also asserts the paths agree, so the speedup numbers are for provably
identical results.
"""

import pytest

from repro.bench.perf import inflationary_with_executor
from repro.core.fixpoint import idb_equal, idb_union
from repro.core.operator import empty_idb, theta, theta_legacy
from repro.core.planning import (
    compile_program,
    execute_plan,
    execute_plan_rows_legacy,
)
from repro.core.semantics import (
    inflationary_semantics,
    naive_least_fixpoint,
    seminaive_least_fixpoint,
)
from repro.graphs import generators as gg, graph_to_database
from repro.queries import distance_program, pi1, transitive_closure_program

TC = transitive_closure_program()
PI1 = pi1()
DIST = distance_program()


def legacy_least_fixpoint(program, db):
    current = empty_idb(program)
    while True:
        nxt = theta_legacy(program, db, current)
        if idb_equal(nxt, current):
            return current
        current = nxt


def legacy_inflationary(program, db):
    current = empty_idb(program)
    while True:
        nxt = idb_union([current, theta_legacy(program, db, current)])
        if idb_equal(nxt, current):
            return current
        current = nxt


# ----------------------------------------------------------------------
# One Theta round on a converged TC valuation (pure operator cost)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n", [16, 32])
def test_theta_round_compiled(benchmark, n):
    db = graph_to_database(gg.path(n))
    idb = naive_least_fixpoint(TC, db).idb
    plan = compile_program(TC, db)
    result = benchmark(theta, TC, db, idb, plan=plan)
    assert idb_equal(result, idb)


@pytest.mark.parametrize("n", [16, 32])
def test_theta_round_legacy(benchmark, n):
    db = graph_to_database(gg.path(n))
    idb = naive_least_fixpoint(TC, db).idb
    result = benchmark(theta_legacy, TC, db, idb)
    assert idb_equal(result, idb)


# ----------------------------------------------------------------------
# Full engine runs, compiled vs. legacy iteration
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n", [16, 24])
def test_naive_tc_compiled(benchmark, n):
    db = graph_to_database(gg.path(n))
    result = benchmark(naive_least_fixpoint, TC, db)
    assert len(result.idb["S"]) == n * (n - 1) // 2


@pytest.mark.parametrize("n", [16, 24])
def test_naive_tc_legacy(benchmark, n):
    db = graph_to_database(gg.path(n))
    result = benchmark(legacy_least_fixpoint, TC, db)
    assert len(result["S"]) == n * (n - 1) // 2


@pytest.mark.parametrize("n", [16, 24])
def test_seminaive_tc_compiled(benchmark, n):
    db = graph_to_database(gg.path(n))
    result = benchmark(seminaive_least_fixpoint, TC, db)
    assert len(result.idb["S"]) == n * (n - 1) // 2


@pytest.mark.parametrize("n", [16, 24])
def test_inflationary_pi1_compiled(benchmark, n):
    db = graph_to_database(gg.path(n))
    result = benchmark(inflationary_semantics, PI1, db)
    assert result.idb["T"]


@pytest.mark.parametrize("n", [16, 24])
def test_inflationary_pi1_legacy(benchmark, n):
    db = graph_to_database(gg.path(n))
    result = benchmark(legacy_inflationary, PI1, db)
    assert result["T"]


# ----------------------------------------------------------------------
# Batch executor vs PR-1 dict executor on the completion-bound distance
# program (identical plans; only the execution model differs) — driven by
# the same ``inflationary_with_executor`` the perf experiment measures.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n", [8, 12])
def test_inflationary_distance_batch(benchmark, n):
    db = graph_to_database(gg.path(n))
    expected = inflationary_with_executor(DIST, db, execute_plan_rows_legacy)
    result = benchmark(inflationary_with_executor, DIST, db, execute_plan)
    assert idb_equal(result, expected)


@pytest.mark.parametrize("n", [8, 12])
def test_inflationary_distance_dict_executor(benchmark, n):
    db = graph_to_database(gg.path(n))
    result = benchmark(inflationary_with_executor, DIST, db, execute_plan_rows_legacy)
    assert result["S3"]
