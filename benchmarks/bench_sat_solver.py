"""Engineering benchmark: the DPLL oracle on the reduction workloads.

The solver sits under every Theorem 1–4 experiment, so its throughput on
the grounded fixpoint encodings is the scaling bottleneck worth tracking.
"""

import pytest

from repro.core.satreduction import FixpointSAT, count_fixpoints_sat, has_fixpoint
from repro.graphs import generators as gg, graph_to_database
from repro.queries import pi1
from repro.reductions.coloring import coloring_database, pi_col
from repro.reductions.sat_encoding import cnf_to_database, pi_sat
from repro.sat import Solver
from repro.workloads.cnf_gen import random_kcnf


@pytest.mark.parametrize("n", [4, 8, 12])
def test_encode_pi1_on_gn(benchmark, n):
    db = graph_to_database(gg.disjoint_cycles(n))
    enc = benchmark(FixpointSAT, pi1(), db)
    assert len(enc.atom_var) == 4 * n


@pytest.mark.parametrize("n", [4, 8])
def test_solve_pi1_on_gn(benchmark, n):
    db = graph_to_database(gg.disjoint_cycles(n))
    enc = FixpointSAT(pi1(), db)
    model = benchmark(lambda: Solver(enc.cnf).solve())
    assert model is not None


@pytest.mark.parametrize("seed", [0, 1])
def test_pi_sat_existence(benchmark, seed):
    inst = random_kcnf(6, 18, 3, seed=seed)
    db = cnf_to_database(inst)
    result = benchmark(has_fixpoint, pi_sat(), db)
    assert result == inst.is_satisfiable()


def test_pi_sat_count_models(benchmark):
    inst = random_kcnf(5, 12, 3, seed=3)
    db = cnf_to_database(inst)
    count = benchmark(count_fixpoints_sat, pi_sat(), db)
    assert count == inst.count_models()


def test_pi_col_on_petersen(benchmark):
    db = coloring_database(gg.petersen())
    result = benchmark(has_fixpoint, pi_col(), db)
    assert result
