"""Helpers shared by the benchmark suite."""

from __future__ import annotations



def run_once(benchmark, fn):
    """Benchmark an experiment with a single measured round.

    Experiment runners are deterministic and some are seconds-long, so one
    round gives a faithful timing without minutes of repetition; the
    returned tables are also asserted, making every benchmark double as an
    integration check.
    """
    tables = benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
    for table in tables:
        assert table.all_ok(), "failing rows in %r\n%s" % (table.title, table.render())
    return tables
