"""Well-founded view update latency vs from-scratch alternating fixpoint.

The PR-5 headline (ISSUE acceptance criterion): on the win–move game —
the paper's canonical non-stratifiable program — over a 2k-node path, a
single-tuple EDB update through ``MaterializedView(semantics=
"wellfounded")`` is at least 5x faster than recomputing the well-founded
model from scratch.  Smaller sizes are reported for the scaling picture;
the assertion binds at the largest, where the ``~n/2``-round alternation
makes recomputation quadratic while the maintained layers absorb the
delta in time proportional to its footprint.  The parity-flipping
worst-case update (``flip``) is reported at the smaller sizes only.
"""

from repro.bench.wellfounded_perf import HEADLINE_SPEEDUP, measure_wellfounded_scenario

SIZES = (500, 1000, 2000)


def _run_all():
    return [
        measure_wellfounded_scenario(n, rounds=2, include_flip=(n != SIZES[-1]))
        for n in SIZES
    ]


def test_wellfounded_update_latency(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1, warmup_rounds=0)
    for m in results:
        assert m["equal"], (
            "maintained well-founded view diverged from recompute at n=%d" % m["n"]
        )
        flip = "" if m["flip_s"] is None else " flip=%.4fs" % m["flip_s"]
        print(
            "n=%4d build=%.3fs probe=%.5fs%s scratch=%.4fs (probe %.1fx)"
            % (
                m["n"],
                m["build_s"],
                m["probe_s"],
                flip,
                m["scratch_s"],
                m["scratch_s"] / m["probe_s"],
            )
        )
    largest = results[-1]
    probe_speedup = largest["scratch_s"] / largest["probe_s"]
    assert probe_speedup >= HEADLINE_SPEEDUP, (
        "single-tuple probe update is only %.1fx faster than from-scratch "
        "well-founded recompute at n=%d (need >= %.1fx)"
        % (probe_speedup, largest["n"], HEADLINE_SPEEDUP)
    )
