"""Proposition 2: one program, two meanings.

The six-rule program below computes the *distance query*
D(x, y, x*, y*) = "some path x->y is no longer than every path x*->y*"
under inflationary semantics, but computes TC(x,y) & !TC(x*,y*) when the
very same rules are read as a stratified program.

Run with:  python examples/distance_query.py
"""

from repro.core.semantics import inflationary_semantics, stratified_semantics
from repro.graphs import generators as gg, graph_to_database
from repro.graphs.algorithms import bfs_distances, distance_query
from repro.queries import distance_program

program = distance_program()
print("Proposition 2's program (carrier S3):")
print(program)

graph = gg.path(5)  # 1 -> 2 -> 3 -> 4 -> 5
db = graph_to_database(graph)

inflationary = inflationary_semantics(program, db)
stratified = stratified_semantics(program, db)

print("\non the path 1->2->3->4->5:")
print("  inflationary S3 size:", len(inflationary.carrier_value))
print("  stratified   S3 size:", len(stratified.relation("S3")))
print("  answers differ:", inflationary.carrier_value.tuples
      != stratified.relation("S3").tuples)

# Cross-check the inflationary answer against BFS ground truth.
assert inflationary.carrier_value.tuples == distance_query(graph)
print("  inflationary answer == BFS distance query: True")

# Spot checks, in distance terms.
print("\nspot checks (dist(1,2)=1, dist(1,5)=4, dist(2,5)=3):")
for x, y, xs, ys in [(1, 2, 1, 5), (1, 5, 1, 2), (1, 5, 2, 5), (2, 5, 1, 5)]:
    in_inf = (x, y, xs, ys) in inflationary.carrier_value
    in_strat = (x, y, xs, ys) in stratified.relation("S3")
    print(
        "  D(%d,%d | %d,%d): inflationary=%-5s stratified=%-5s"
        % (x, y, xs, ys, in_inf, in_strat)
    )

# The stratified reading only asks "TC and not TC*":
print("\nstratified keeps (1,5,5,1) since 1 reaches 5 and 5 never reaches 1:",
      (1, 5, 5, 1) in stratified.relation("S3"))
print("inflationary agrees here (4 <= infinity):",
      (1, 5, 5, 1) in inflationary.carrier_value)
print("but (1,5,1,2) separates them: dist 4 > 1, TC(1,2) holds:")
print("  inflationary:", (1, 5, 1, 2) in inflationary.carrier_value,
      " stratified:", (1, 5, 1, 2) in stratified.relation("S3"))
