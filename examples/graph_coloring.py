"""Lemma 1 and Theorem 4: 3-coloring as fixpoints, explicit and succinct.

Runs pi_COL on explicit graphs, then compiles Boolean circuits presenting
graphs on {0,1}^n into the Theorem 4 program pi_SC and checks that both
routes agree.

Run with:  python examples/graph_coloring.py
"""

from repro.circuits.builders import (
    complete_graph_circuit,
    hypercube_circuit,
)
from repro.core.satreduction import (
    count_fixpoints_sat,
    enumerate_fixpoints_sat,
    has_fixpoint,
)
from repro.graphs import generators as gg
from repro.graphs.algorithms import count_3colorings, is_3colorable
from repro.reductions.coloring import (
    coloring_database,
    fixpoint_to_coloring,
    pi_col,
)
from repro.reductions.succinct_coloring import binary_database, pi_sc

# ----------------------------------------------------------------------
# Explicit graphs through pi_COL (Lemma 1).
# ----------------------------------------------------------------------
program = pi_col()
print("pi_COL fixpoints = proper 3-colorings:")
for name, graph in [
    ("triangle", gg.cycle(3).union(gg.cycle(3).reversed())),
    ("K_4", gg.complete(4)),
    ("odd wheel W_5", gg.wheel(5)),
    ("Petersen", gg.petersen()),
]:
    db = coloring_database(graph)
    print(
        "  %-14s 3-colorable=%-5s  pi_COL fixpoint=%-5s"
        % (name, is_3colorable(graph), has_fixpoint(program, db))
    )

triangle = gg.cycle(3).union(gg.cycle(3).reversed())
db = coloring_database(triangle)
print(
    "\ntriangle: #colorings=%d  #fixpoints=%d"
    % (count_3colorings(triangle), count_fixpoints_sat(program, db))
)
print("one decoded coloring:", fixpoint_to_coloring(
    next(enumerate_fixpoints_sat(program, db, limit=1))
))

# ----------------------------------------------------------------------
# Succinct graphs through pi_SC (Theorem 4).
# The graph lives on {0,1}^n and is presented only by its edge circuit;
# the circuit's gates become DATALOG¬ rules over the domain {0, 1}.
# ----------------------------------------------------------------------
print("\nSUCCINCT 3-COLORING via pi_SC (Theorem 4):")
for name, sg in [
    ("hypercube n=2 (C_4, bipartite)", hypercube_circuit(2)),
    ("complete n=2 (K_4, not 3-colorable)", complete_graph_circuit(2)),
    ("hypercube n=3 (Q_3, 8 nodes)", hypercube_circuit(3)),
]:
    program_sc = pi_sc(sg)
    succinct_answer = has_fixpoint(program_sc, binary_database())
    explicit_answer = is_3colorable(sg.expand())
    print(
        "  %-36s circuit gates=%-3d  rules=%-3d  pi_SC=%-5s explicit=%-5s"
        % (
            name,
            sg.circuit.num_gates,
            len(program_sc.rules),
            succinct_answer,
            explicit_answer,
        )
    )
    assert succinct_answer == explicit_answer
