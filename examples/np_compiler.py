"""Theorem 1 as a tool: compile an NP property into a DATALOG¬ program.

Give the compiler an existential second-order sentence (Fagin's format for
NP) and it produces a fixed program whose *fixpoint existence* decides the
property — here, 2-colorability of a graph.

Run with:  python examples/np_compiler.py
"""

from repro.core.pretty import format_program
from repro.core.satreduction import has_fixpoint
from repro.core.terms import Variable
from repro.graphs import generators as gg, graph_to_database
from repro.logic.eso import ESOFormula, eso_holds
from repro.logic.fo import AtomF, Not, and_, forall_all, or_
from repro.reductions.fagin import eso_to_program

X, Y = Variable("X"), Variable("Y")

# NP property: the graph is 2-colorable.
# exists S . forall x forall y ( !E(x,y) | (S(x) & !S(y)) | (!S(x) & S(y)) )
sentence = ESOFormula(
    (("S", 1),),
    forall_all(
        [X, Y],
        or_(
            Not(AtomF("E", [X, Y])),
            and_(AtomF("S", [X]), Not(AtomF("S", [Y]))),
            and_(Not(AtomF("S", [X])), AtomF("S", [Y])),
        ),
    ),
)

compiled = eso_to_program(sentence)
print("compiled program pi_C (fixpoint exists <=> graph is 2-colorable):\n")
print(format_program(compiled.program))
print()

for name, graph in [
    ("path L_4", gg.path(4)),
    ("even cycle C_6", gg.cycle(6)),
    ("odd cycle C_5", gg.cycle(5)),
    ("triangle", gg.cycle(3)),
    ("hypercube Q_3", gg.hypercube(3)),
]:
    db = graph_to_database(graph)
    via_fixpoint = has_fixpoint(compiled.program, db)
    via_brute_force = eso_holds(sentence, db)
    marker = "OK" if via_fixpoint == via_brute_force else "MISMATCH"
    print(
        "%-16s 2-colorable: fixpoint=%-5s brute-force-ESO=%-5s  %s"
        % (name, via_fixpoint, via_brute_force, marker)
    )
