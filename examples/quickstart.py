"""Quickstart: parse a DATALOG¬ program, run every semantics, analyse fixpoints.

Run with:  python examples/quickstart.py
"""

from repro import Database, Relation, parse_program
from repro.core.satreduction import analyze_fixpoints
from repro.core.semantics import (
    inflationary_semantics,
    naive_least_fixpoint,
    well_founded_semantics,
)

# ----------------------------------------------------------------------
# 1. Pure DATALOG: transitive closure under the standard least fixpoint.
# ----------------------------------------------------------------------
tc = parse_program(
    """
    S(X, Y) :- E(X, Y).
    S(X, Y) :- E(X, Z), S(Z, Y).
    """
)
db = Database({1, 2, 3, 4}, [Relation("E", 2, [(1, 2), (2, 3), (3, 4)])])

result = naive_least_fixpoint(tc, db)
print("transitive closure:", sorted(result.idb["S"].tuples))
print("rounds to converge:", result.rounds)

# ----------------------------------------------------------------------
# 2. Negation: the paper's pi_1 = T(x) :- E(y, x), !T(y).
#    Ordinary fixpoints may not exist, may be unique, or may be many —
#    the SAT-backed analyser reports the whole picture.
# ----------------------------------------------------------------------
pi1 = parse_program("T(X) :- E(Y, X), !T(Y).")

analysis = analyze_fixpoints(pi1, db)
print("\npi_1 on the path 1->2->3->4:")
print("  fixpoint exists:", analysis.exists)
print("  unique:", analysis.unique)
print("  least fixpoint:", sorted(analysis.least["T"].tuples))

odd_cycle = Database({1, 2, 3}, [Relation("E", 2, [(1, 2), (2, 3), (3, 1)])])
print("pi_1 on the odd cycle C_3:")
print("  fixpoint exists:", analyze_fixpoints(pi1, odd_cycle).exists)

# ----------------------------------------------------------------------
# 3. The paper's remedy: inflationary semantics — total and polynomial.
# ----------------------------------------------------------------------
for name, database in (("path L_4", db), ("odd cycle C_3", odd_cycle)):
    inf = inflationary_semantics(pi1, database)
    print(
        "inflationary pi_1 on %s: %s (rounds=%d)"
        % (name, sorted(inf.carrier_value.tuples), inf.rounds)
    )

# ----------------------------------------------------------------------
# 4. Bonus: the three-valued well-founded view of the same program.
# ----------------------------------------------------------------------
wf = well_founded_semantics(pi1, odd_cycle)
print(
    "\nwell-founded pi_1 on C_3: total=%s, undefined atoms=%d"
    % (wf.is_total, len(wf.undefined))
)
