"""Example 1 end-to-end: SATISFIABILITY as fixpoint existence.

Encodes CNF instances as databases D(I), runs the paper's pi_SAT, and
shows the one-to-one correspondence between fixpoints and satisfying
assignments (Theorems 1 and 2).

Run with:  python examples/sat_as_fixpoints.py
"""

from repro.core.satreduction import (
    count_fixpoints_sat,
    enumerate_fixpoints_sat,
    has_fixpoint,
    has_unique_fixpoint,
)
from repro.reductions.sat_encoding import (
    cnf_to_database,
    fixpoint_to_assignment,
    pi_sat,
)
from repro.workloads.cnf_gen import (
    fixed_instance_small,
    random_kcnf,
    unique_model_instance,
    unsatisfiable_instance,
)

program = pi_sat()
print("the paper's pi_SAT:")
print(program)
print()

# A small instance with exactly two models:
#   (x1 | x2) & (!x1 | x3) & (!x2 | !x3)
inst = fixed_instance_small()
db = cnf_to_database(inst)
print("instance:", inst.clauses)
print("satisfying assignments (truth table):", inst.count_models())
print("fixpoints of (pi_SAT, D(I))        :", count_fixpoints_sat(program, db))

print("\neach fixpoint decodes to a satisfying assignment:")
for fp in enumerate_fixpoints_sat(program, db):
    assignment = fixpoint_to_assignment(inst, fp)
    assert inst.is_satisfied_by(assignment)
    print("  S =", sorted(t[0] for t in fp["S"]), "->", assignment)

# Theorem 1: existence <-> satisfiability.
print("\nunsatisfiable instance has a fixpoint?",
      has_fixpoint(program, cnf_to_database(unsatisfiable_instance())))

# Theorem 2: uniqueness <-> unique satisfying assignment (US-completeness).
unique = unique_model_instance(5, seed=42)
print("engineered 1-model instance -> unique fixpoint?",
      has_unique_fixpoint(program, cnf_to_database(unique)))

# And on a random batch the counts always agree.
print("\nrandom 3-CNF batch (n=4 vars, m=8 clauses):")
for seed in range(5):
    random_inst = random_kcnf(4, 8, 3, seed=seed)
    fixpoints = count_fixpoints_sat(program, cnf_to_database(random_inst))
    print("  seed %d: #models=%d  #fixpoints=%d" % (
        seed, random_inst.count_models(), fixpoints
    ))
