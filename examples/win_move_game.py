"""The win-move game: fixpoints, inflationary, and well-founded views.

WIN(x) :- E(x, y), !WIN(y) — a position wins if some move reaches a losing
position.  This is the paper's pi_1 over reversed edges, and the classic
showcase for how the semantics differ:

* ordinary fixpoints mirror the paper's path/cycle phenomenology
  (none on odd cycles, several on even ones);
* the well-founded model plays the game correctly, leaving drawn
  positions (cycles) undefined;
* inflationary semantics gives a total but *game-theoretically wrong*
  answer — it overapproximates WIN, which is exactly why the paper
  presents it as a semantics choice, not a free lunch.

Run with:  python examples/win_move_game.py
"""

from repro import Database, Relation
from repro.core.satreduction import analyze_fixpoints
from repro.core.semantics import inflationary_semantics, well_founded_semantics
from repro.queries import win_move_program

program = win_move_program()
print("program:", program, "\n")


def show(name, edges, universe):
    db = Database(universe, [Relation("E", 2, edges)])
    analysis = analyze_fixpoints(program, db)
    wf = well_founded_semantics(program, db)
    inf = inflationary_semantics(program, db)
    print(name)
    print("  ordinary fixpoints:", analysis.count)
    print("  well-founded: win=%s lose=%s drawn=%s" % (
        sorted(t[0] for t in wf.true_idb()["WIN"]),
        sorted(
            u for u in universe
            if ("WIN", (u,)) not in wf.true and ("WIN", (u,)) not in wf.undefined
        ),
        sorted(t[0] for t in wf.undefined_idb()["WIN"]),
    ))
    print("  inflationary WIN:", sorted(t[0] for t in inf.carrier_value))
    print()


# A chain: 1 -> 2 -> 3 -> 4 (4 is stuck, hence lost).
show("chain 1->2->3->4", [(1, 2), (2, 3), (3, 4)], {1, 2, 3, 4})

# An odd cycle: every position is drawn; no ordinary fixpoint at all.
show("odd cycle C_3", [(1, 2), (2, 3), (3, 1)], {1, 2, 3})

# A cycle with an escape: 1 <-> 2, and 2 can also move to stuck node 3.
show("cycle with escape", [(1, 2), (2, 1), (2, 3)], {1, 2, 3})

# A composite board: chain feeding an even cycle.
show(
    "chain into even cycle",
    [(1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 3)],
    {1, 2, 3, 4, 5, 6},
)
