"""Legacy setup shim.

The build environment has no ``wheel`` package and no network access, so
PEP 517 editable installs (which require building a wheel) are unavailable.
This shim lets ``pip install -e .`` fall back to ``setup.py develop``.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
