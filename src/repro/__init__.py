"""repro — a reproduction of Kolaitis & Papadimitriou,
"Why Not Negation by Fixpoint?" (PODS 1988 / JCSS 1991).

The package implements DATALOG¬ (Datalog with negation) under the paper's
active-domain semantics, the immediate consequence operator Theta, fixpoint
analysis backed by a built-in SAT solver (existence, uniqueness, counting,
least-fixpoint decision), the paper's reductions (pi_SAT, pi_COL, succinct
3-coloring, the Fagin/Skolem compiler of Theorem 1), and the proposed
remedy: Inflationary DATALOG, together with stratified and well-founded
semantics for comparison.

Quickstart::

    from repro import parse_program, Database, Relation
    from repro.core.semantics import inflationary_semantics

    program = parse_program("T(X) :- E(X, Y).  T(X) :- E(X, Z), T(Z).")
    db = Database({1, 2, 3}, [Relation("E", 2, [(1, 2), (2, 3)])])
    print(inflationary_semantics(program, db).carrier_value)
"""

from .core import (
    Atom,
    Constant,
    Eq,
    Negation,
    Neq,
    Program,
    ProgramError,
    Rule,
    Variable,
    parse_atom,
    parse_program,
    parse_rule,
    rule,
    term,
    theta,
)
from .db import Database, Relation

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "Constant",
    "Database",
    "Eq",
    "Negation",
    "Neq",
    "Program",
    "ProgramError",
    "Relation",
    "Rule",
    "Variable",
    "parse_atom",
    "parse_program",
    "parse_rule",
    "rule",
    "term",
    "theta",
    "__version__",
]
