"""repro — a reproduction of Kolaitis & Papadimitriou,
"Why Not Negation by Fixpoint?" (PODS 1988 / JCSS 1991).

The package implements DATALOG¬ (Datalog with negation) under the paper's
active-domain semantics, the immediate consequence operator Theta, fixpoint
analysis backed by a built-in SAT solver (existence, uniqueness, counting,
least-fixpoint decision), the paper's reductions (pi_SAT, pi_COL, succinct
3-coloring, the Fagin/Skolem compiler of Theorem 1), and the proposed
remedy: Inflationary DATALOG, together with stratified and well-founded
semantics for comparison.

Evaluation is plan-compiled: :mod:`repro.core.planning` compiles every
rule once per (program, database) into a ``RulePlan`` — fixed join order,
precomputed index key columns, an interleaved negation/comparison filter
schedule, and a static active-domain completion order — and all fixpoint
engines (naive, semi-naive, incremental, inflationary, stratified, and
the well-founded grounder) execute those plans with hash indexes cached
on the immutable :class:`~repro.db.relation.Relation` objects, so
relations unchanged between rounds are never re-indexed.  The public
``theta``/``evaluate_rule`` API compiles transparently;
``theta_legacy``/``evaluate_rule_legacy`` keep the original
re-plan-every-round path as a property-tested baseline (see
``python -m repro.bench perf``).

Testing conventions: ``python -m pytest`` from the repository root runs
``tests/`` only (``testpaths`` in pyproject.toml); the benchmark suite is
opt-in via ``python -m pytest benchmarks``.  Shared test helpers are
importable modules (``tests/strategies.py``, ``benchmarks/bench_utils.py``),
never conftest members — importing from ``conftest`` resolves to whichever
conftest was loaded first and breaks mixed-directory collection.

Quickstart::

    from repro import parse_program, Database, Relation
    from repro.core.semantics import inflationary_semantics

    program = parse_program("T(X) :- E(X, Y).  T(X) :- E(X, Z), T(Z).")
    db = Database({1, 2, 3}, [Relation("E", 2, [(1, 2), (2, 3)])])
    print(inflationary_semantics(program, db).carrier_value)
"""

from .core import (
    Atom,
    Constant,
    Eq,
    Negation,
    Neq,
    Program,
    ProgramError,
    Rule,
    Variable,
    parse_atom,
    parse_program,
    parse_rule,
    rule,
    term,
    theta,
)
from .db import Database, Relation

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "Constant",
    "Database",
    "Eq",
    "Negation",
    "Neq",
    "Program",
    "ProgramError",
    "Relation",
    "Rule",
    "Variable",
    "parse_atom",
    "parse_program",
    "parse_rule",
    "rule",
    "term",
    "theta",
    "__version__",
]
