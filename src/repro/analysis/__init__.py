"""Static analysis of DATALOG¬ programs.

Three layers:

* **Facts** — :class:`ProgramFacts` (:mod:`repro.analysis.facts`), the
  queryable API over everything statically decidable about a program:
  dependency graph, SCCs, strata, negation cycles, derivability,
  column domains, engine applicability.
* **Diagnostics** — :mod:`repro.analysis.checks` turns the facts into
  stable-coded :class:`Diagnostic`\\ s with source spans;
  :func:`lint_source` / :func:`lint_program`
  (:mod:`repro.analysis.lint`) orchestrate and return a
  :class:`LintReport`.
* **Legacy faces** — the original classification/metrics helpers
  (:func:`classify`, :class:`ProgramStats`, ...) remain as thin views.

Surfaced as ``python -m repro lint``, the ``explain`` summary block,
and the server's ``register``/``lint``/``stats`` verbs.
"""

from .classify import EngineSupport, ProgramClass, classify
from .dependency import DependencyEdge, DependencyGraph
from .diagnostics import Diagnostic, LintReport, Severity
from .facts import ProgramFacts
from .lint import lint_program, lint_source
from .stats import GroundingStats, ProgramStats

__all__ = [
    "DependencyEdge",
    "DependencyGraph",
    "Diagnostic",
    "EngineSupport",
    "GroundingStats",
    "LintReport",
    "ProgramClass",
    "ProgramFacts",
    "ProgramStats",
    "Severity",
    "classify",
    "lint_program",
    "lint_source",
]
