"""Static analysis of DATALOG¬ programs: dependencies, strata, classes."""

from .classify import EngineSupport, ProgramClass, classify
from .dependency import DependencyEdge, DependencyGraph
from .stats import GroundingStats, ProgramStats

__all__ = [
    "DependencyEdge",
    "DependencyGraph",
    "EngineSupport",
    "GroundingStats",
    "ProgramClass",
    "ProgramStats",
    "classify",
]
