"""The check registry: every diagnostic the analyzer can produce.

Each check is a function ``(ProgramFacts) -> iterable of Diagnostic``
(database-aware checks additionally take the database) registered under
its stable code.  Codes are grouped by family:

======  ======================  ========  =====================================
code    name                    severity  meaning
======  ======================  ========  =====================================
P001    parse-error             error     program text does not parse
A001    arity-conflict          error     predicate used with two arities
V001    missing-edb             error     database lacks a required relation
V002    db-arity-mismatch       error     database arity != program arity
R001    unsafe-rule             warning   rule is not range-restricted
S001    negative-cycle          warning   recursion through negation
S002    semantics-divergence    warning   predicate on a negation cycle
D001    dead-rule               warning   rule can never fire
D002    underivable-predicate   warning   predicate never derivable
W001    duplicate-rule          warning   rule repeats an earlier rule
W002    subsumed-rule           warning   rule redundant under another
T001    column-type-conflict    warning   column mixes int and str values
D003    unconsumed-predicate    info      derived but feeding nothing
U001    unused-edb-relation     info      database relation the program ignores
======  ======================  ========  =====================================

Severities follow the paper's stance: the semantics deliberately
*permits* unsafe rules and non-stratifiable programs (inflationary and
well-founded evaluation are total), so those are warnings — the user
should know which engines become inapplicable and where models can
diverge — while structural impossibilities (arities, missing relations)
are errors.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.validation import safety_report
from ..db.database import Database
from .diagnostics import Diagnostic, Severity
from .facts import MIXED, UNKNOWN, ProgramFacts, _const_kind, _join

ProgramCheck = Callable[[ProgramFacts], Iterable[Diagnostic]]

PROGRAM_CHECKS: Dict[str, ProgramCheck] = {}
"""Registered database-independent checks, keyed by code."""


def register(code: str) -> Callable[[ProgramCheck], ProgramCheck]:
    """Class the decorated function as the check behind ``code``."""

    def wrap(fn: ProgramCheck) -> ProgramCheck:
        PROGRAM_CHECKS[code] = fn
        return fn

    return wrap


# ----------------------------------------------------------------------
# R001 — range restriction / safety
# ----------------------------------------------------------------------


@register("R001")
def check_safety(facts: ProgramFacts) -> Iterator[Diagnostic]:
    """Promote :func:`repro.core.validation.safety_report` to diagnostics."""
    index_of = {id(rule): i for i, rule in enumerate(facts.program.rules)}
    for rule, unrestricted in safety_report(facts.program).violations:
        names = ", ".join(sorted(v.name for v in unrestricted))
        yield Diagnostic(
            code="R001",
            severity=Severity.WARNING,
            message=(
                "unsafe rule: variable(s) %s occur in no positive body atom, "
                "so they range over the whole universe (rule %s)"
                % (names, rule)
            ),
            span=rule.span,
            rule_index=index_of.get(id(rule)),
            predicate=rule.head.pred,
        )


# ----------------------------------------------------------------------
# S001 / S002 — stratifiability and semantics divergence
# ----------------------------------------------------------------------


@register("S001")
def check_stratifiability(facts: ProgramFacts) -> Iterator[Diagnostic]:
    """One warning per SCC recursing through negation, witness printed
    rule by rule."""
    for cycle in facts.negative_cycles:
        lines = []
        for edge in cycle:
            rule = facts.graph.rule_for_edge(edge)
            arrow = "-(not)->" if edge.negative else "------->"
            where = ""
            if rule is not None and rule.span is not None:
                where = " at %s" % rule.span
            lines.append(
                "%s %s %s via rule%s %s"
                % (edge.source, arrow, edge.target, where, rule)
            )
        first = facts.graph.rule_for_edge(cycle[0])
        yield Diagnostic(
            code="S001",
            severity=Severity.WARNING,
            message=(
                "recursion through negation: not stratifiable, so the "
                "stratified and least-fixpoint engines are inapplicable; "
                "witness cycle: %s" % "; ".join(lines)
            ),
            span=first.span if first is not None else None,
            predicate=cycle[0].target,
        )


@register("S002")
def check_semantics_divergence(facts: ProgramFacts) -> Iterator[Diagnostic]:
    """Flag exactly the predicates where inflationary and well-founded
    models can differ: those on a cycle through negation."""
    for pred in sorted(facts.negative_cycle_predicates):
        rule = facts.defining_rule(pred)
        yield Diagnostic(
            code="S002",
            severity=Severity.WARNING,
            message=(
                "predicate %s lies on a cycle through negation: the "
                "inflationary and well-founded models can differ here "
                "(the well-founded model may leave %s partially undefined)"
                % (pred, pred)
            ),
            span=rule.span if rule is not None else None,
            predicate=pred,
        )


# ----------------------------------------------------------------------
# D001 / D002 / D003 — dead and unreachable code
# ----------------------------------------------------------------------


@register("D001")
def check_dead_rules(facts: ProgramFacts) -> Iterator[Diagnostic]:
    for index in facts.dead_rules:
        rule = facts.program.rules[index]
        blockers = sorted(
            a.pred
            for a in rule.positive_atoms()
            if a.pred in facts.underivable
        )
        yield Diagnostic(
            code="D001",
            severity=Severity.WARNING,
            message=(
                "dead rule: positive body atom(s) %s can never hold on any "
                "database (rule %s)" % (", ".join(blockers), rule)
            ),
            span=rule.span,
            rule_index=index,
            predicate=rule.head.pred,
        )


@register("D002")
def check_underivable(facts: ProgramFacts) -> Iterator[Diagnostic]:
    for pred in sorted(facts.underivable):
        rule = facts.defining_rule(pred)
        yield Diagnostic(
            code="D002",
            severity=Severity.WARNING,
            message=(
                "predicate %s is never derivable: every rule for it "
                "positively depends on an underivable predicate" % pred
            ),
            span=rule.span if rule is not None else None,
            predicate=pred,
        )


@register("D003")
def check_unconsumed(facts: ProgramFacts) -> Iterator[Diagnostic]:
    for pred in sorted(facts.unconsumed):
        rule = facts.defining_rule(pred)
        yield Diagnostic(
            code="D003",
            severity=Severity.INFO,
            message=(
                "predicate %s is derived but feeds nothing: it occurs in no "
                "rule body and is not the carrier (declare it as the carrier "
                "if it is the intended output)" % pred
            ),
            span=rule.span if rule is not None else None,
            predicate=pred,
        )


# ----------------------------------------------------------------------
# W001 / W002 — duplicate and subsumed rules
# ----------------------------------------------------------------------


@register("W001")
def check_duplicates(facts: ProgramFacts) -> Iterator[Diagnostic]:
    for first, dup in facts.duplicate_rules:
        rule = facts.program.rules[dup]
        yield Diagnostic(
            code="W001",
            severity=Severity.WARNING,
            message=(
                "duplicate rule: identical (up to literal order) to rule %d "
                "(%s)" % (first, facts.program.rules[first])
            ),
            span=rule.span,
            rule_index=dup,
            predicate=rule.head.pred,
        )


@register("W002")
def check_subsumed(facts: ProgramFacts) -> Iterator[Diagnostic]:
    for by, subsumed in facts.subsumed_rules:
        rule = facts.program.rules[subsumed]
        yield Diagnostic(
            code="W002",
            severity=Severity.WARNING,
            message=(
                "subsumed rule: rule %d (%s) derives everything this rule "
                "does with fewer body literals"
                % (by, facts.program.rules[by])
            ),
            span=rule.span,
            rule_index=subsumed,
            predicate=rule.head.pred,
        )


# ----------------------------------------------------------------------
# T001 — column domain / type inference
# ----------------------------------------------------------------------


def seed_edb_domains(
    program, db: Database
) -> Dict[Tuple[str, int], str]:
    """Per-column value kinds actually present in the database's EDB.

    One pass over the stored tuples (lint is off the hot path); the
    alphabet is the kernel's int/str symbol-family split.
    """
    seeds: Dict[Tuple[str, int], str] = {}
    for pred in program.edb_predicates:
        rel = db.get(pred)
        if rel is None:
            continue
        for t in rel:
            for col, value in enumerate(t):
                key = (pred, col)
                seeds[key] = _join(seeds.get(key, UNKNOWN), _const_kind(value))
    return seeds


def check_column_types(
    facts: ProgramFacts, db: Optional[Database] = None
) -> Iterator[Diagnostic]:
    """T001: columns inferred to mix int and str values."""
    if db is not None:
        domains = facts.column_domains_with(seed_edb_domains(facts.program, db))
    else:
        domains = facts.column_domains
    for (pred, col), domain in sorted(domains.items()):
        if domain != MIXED:
            continue
        rule = facts.defining_rule(pred)
        yield Diagnostic(
            code="T001",
            severity=Severity.WARNING,
            message=(
                "column %d of %s mixes int and str values: the kernel "
                "cannot keep one dense symbol family for it and "
                "comparisons will never match across the two kinds"
                % (col, pred)
            ),
            span=rule.span if rule is not None else None,
            predicate=pred,
        )


# ----------------------------------------------------------------------
# V001 / V002 / U001 — database compatibility
# ----------------------------------------------------------------------


def check_database_compat(
    facts: ProgramFacts, db: Database
) -> Iterator[Diagnostic]:
    """V001/V002/U001: the diagnostic face of ``validation.check_database``."""
    program = facts.program
    for pred in sorted(program.edb_predicates):
        if pred not in db:
            yield Diagnostic(
                code="V001",
                severity=Severity.ERROR,
                message=(
                    "database is missing EDB relation %r required by the "
                    "program" % pred
                ),
                predicate=pred,
            )
        elif db.arity_of(pred) != program.arity(pred):
            yield Diagnostic(
                code="V002",
                severity=Severity.ERROR,
                message=(
                    "relation %s has arity %d in the database but %d in the "
                    "program" % (pred, db.arity_of(pred), program.arity(pred))
                ),
                predicate=pred,
            )
    for pred in sorted(program.idb_predicates):
        if pred in db and db.arity_of(pred) != program.arity(pred):
            yield Diagnostic(
                code="V002",
                severity=Severity.ERROR,
                message=(
                    "IDB relation %s has arity %d in the database but %d in "
                    "the program" % (pred, db.arity_of(pred), program.arity(pred))
                ),
                predicate=pred,
            )
    for name in sorted(db.relation_names()):
        if name not in program.predicates:
            yield Diagnostic(
                code="U001",
                severity=Severity.INFO,
                message=(
                    "database relation %s is not referenced by the program"
                    % name
                ),
                predicate=name,
            )


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def run_checks(
    facts: ProgramFacts, db: Optional[Database] = None
) -> List[Diagnostic]:
    """Run every registered check (plus the db-aware ones when a
    database is given) and return the findings."""
    out: List[Diagnostic] = []
    for code in sorted(PROGRAM_CHECKS):
        out.extend(PROGRAM_CHECKS[code](facts))
    out.extend(check_column_types(facts, db))
    if db is not None:
        out.extend(check_database_compat(facts, db))
    return out
