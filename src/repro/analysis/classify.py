"""Program classification: positive / semipositive / stratified / general.

The paper's landscape orders these classes by expressive power
(``DATALOG subsetneq Stratified subsetneq Inflationary DATALOG``); the
classifier tells which engines are applicable to a given program.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..core.program import Program
from ..core.semantics.base import is_semipositive
from .dependency import DependencyGraph


class ProgramClass(Enum):
    """The most restrictive class a program falls into."""

    POSITIVE = "positive"          # DATALOG: no negation, no inequality
    SEMIPOSITIVE = "semipositive"  # negation/inequality over EDB only
    STRATIFIED = "stratified"      # layered negation
    GENERAL = "general"            # needs inflationary / fixpoint analysis


def classify(program: Program) -> ProgramClass:
    """The tightest class containing ``program``.

    ``POSITIVE < SEMIPOSITIVE < STRATIFIED < GENERAL``: e.g. a positive
    program is also stratified, but is reported as POSITIVE.
    """
    if program.is_positive():
        return ProgramClass.POSITIVE
    if is_semipositive(program):
        return ProgramClass.SEMIPOSITIVE
    if DependencyGraph(program).is_stratifiable():
        return ProgramClass.STRATIFIED
    return ProgramClass.GENERAL


@dataclass(frozen=True)
class EngineSupport:
    """Which semantics are defined for a program."""

    least_fixpoint: bool
    stratified: bool
    inflationary: bool  # always True: the paper's selling point
    well_founded: bool  # always True

    @classmethod
    def for_program(cls, program: Program) -> "EngineSupport":
        """Compute applicability from the classification."""
        kind = classify(program)
        return cls(
            least_fixpoint=kind
            in (ProgramClass.POSITIVE, ProgramClass.SEMIPOSITIVE),
            stratified=kind != ProgramClass.GENERAL,
            inflationary=True,
            well_founded=True,
        )
