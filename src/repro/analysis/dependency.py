"""Predicate dependency graphs and stratification.

A program's *dependency graph* has the IDB predicates as nodes and an edge
``q -> p`` whenever ``q`` occurs in the body of a rule with head ``p``; the
edge is *negative* when some such occurrence is negated (an inequality-free
notion — comparisons do not create edges).  A program is *stratifiable*
(Chandra–Harel / Apt–Blair–Walker) when no cycle of the graph contains a
negative edge; equivalently, no strongly connected component has an internal
negative edge ("no recursion through negation").

Strata are computed as the least assignment ``sigma`` with

    sigma(p) >= sigma(q)      for positive edges q -> p
    sigma(p) >= sigma(q) + 1  for negative edges q -> p

EDB predicates implicitly occupy stratum 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..core.literals import Atom, Negation
from ..core.program import Program


@dataclass(frozen=True)
class DependencyEdge:
    """An edge ``source -> target`` (target's rule body uses source)."""

    source: str
    target: str
    negative: bool


class DependencyGraph:
    """The predicate dependency graph of a program (IDB nodes only)."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.nodes: FrozenSet[str] = program.idb_predicates
        edges: Set[DependencyEdge] = set()
        for rule in program.rules:
            head = rule.head.pred
            for lit in rule.body:
                if isinstance(lit, Atom) and lit.pred in self.nodes:
                    edges.add(DependencyEdge(lit.pred, head, negative=False))
                elif isinstance(lit, Negation) and lit.atom.pred in self.nodes:
                    edges.add(DependencyEdge(lit.atom.pred, head, negative=True))
        self.edges: FrozenSet[DependencyEdge] = frozenset(edges)
        self._succ: Dict[str, List[DependencyEdge]] = {n: [] for n in self.nodes}
        for e in self.edges:
            self._succ[e.source].append(e)

    def successors(self, node: str) -> List[DependencyEdge]:
        """Outgoing edges of ``node``."""
        return list(self._succ[node])

    # ------------------------------------------------------------------
    # Strongly connected components (iterative Tarjan)
    # ------------------------------------------------------------------

    def sccs(self) -> List[FrozenSet[str]]:
        """Strongly connected components in reverse topological order."""
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        out: List[FrozenSet[str]] = []
        counter = [0]

        for root in sorted(self.nodes):
            if root in index:
                continue
            work: List[Tuple[str, int]] = [(root, 0)]
            while work:
                node, ei = work.pop()
                if ei == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                edges = sorted(self._succ[node], key=lambda e: e.target)
                advanced = False
                for i in range(ei, len(edges)):
                    succ = edges[i].target
                    if succ not in index:
                        work.append((node, i + 1))
                        work.append((succ, 0))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                if low[node] == index[node]:
                    component = set()
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        component.add(w)
                        if w == node:
                            break
                    out.append(frozenset(component))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return out

    # ------------------------------------------------------------------
    # Stratification
    # ------------------------------------------------------------------

    def negative_cycle_witness(self) -> Optional[DependencyEdge]:
        """A negative edge inside some SCC, or ``None`` if stratifiable."""
        component_of: Dict[str, int] = {}
        for i, comp in enumerate(self.sccs()):
            for node in comp:
                component_of[node] = i
        for e in sorted(self.edges, key=lambda e: (e.source, e.target)):
            if e.negative and component_of[e.source] == component_of[e.target]:
                return e
        return None

    def negative_sccs(self) -> List[FrozenSet[str]]:
        """The SCCs containing an internal negative edge.

        These are exactly the components where recursion goes through
        negation — the predicates on which inflationary and well-founded
        evaluation can disagree (the paper's core distinction).
        """
        component_of: Dict[str, int] = {}
        components = self.sccs()
        for i, comp in enumerate(components):
            for node in comp:
                component_of[node] = i
        bad = {
            component_of[e.source]
            for e in self.edges
            if e.negative and component_of[e.source] == component_of[e.target]
        }
        return [components[i] for i in sorted(bad)]

    def negative_cycles(self) -> List[List[DependencyEdge]]:
        """One witness cycle through negation per offending SCC.

        Each witness is an edge list ``[e_1, ..., e_k]`` with
        ``e_i.target == e_{i+1}.source`` and ``e_k.target ==
        e_1.source`` where at least one edge is negative: a concrete
        cycle a diagnostic can print rule by rule.  Self-loops are the
        length-1 case (win–move).  Deterministic: nodes and edges are
        explored in sorted order.
        """
        out: List[List[DependencyEdge]] = []
        for comp in self.negative_sccs():
            seed = min(
                (
                    e
                    for e in self.edges
                    if e.negative and e.source in comp and e.target in comp
                ),
                key=lambda e: (e.source, e.target),
            )
            if seed.target == seed.source:
                out.append([seed])
                continue
            # Shortest path seed.target -> seed.source inside the SCC
            # (it exists: both endpoints are in one SCC), closing the
            # cycle through the negative seed edge.
            parent: Dict[str, DependencyEdge] = {}
            frontier = [seed.target]
            while frontier and seed.source not in parent:
                nxt: List[str] = []
                for node in frontier:
                    for e in sorted(
                        self._succ[node], key=lambda e: (e.target, e.negative)
                    ):
                        if e.target in comp and e.target not in parent and (
                            e.target != seed.target
                        ):
                            parent[e.target] = e
                            nxt.append(e.target)
                frontier = nxt
            path: List[DependencyEdge] = []
            node = seed.source
            while node != seed.target:
                edge = parent[node]
                path.append(edge)
                node = edge.source
            out.append([seed] + list(reversed(path)))
        return out

    def rule_for_edge(self, edge: DependencyEdge):
        """A rule of the program inducing ``edge``, for witness printing."""
        for rule in self.program.rules:
            if rule.head.pred != edge.target:
                continue
            for lit in rule.body:
                if edge.negative:
                    if isinstance(lit, Negation) and lit.atom.pred == edge.source:
                        return rule
                elif isinstance(lit, Atom) and lit.pred == edge.source:
                    return rule
        return None

    def is_stratifiable(self) -> bool:
        """True when no cycle goes through a negative edge."""
        return self.negative_cycle_witness() is None

    def strata(self) -> Dict[str, int]:
        """Least stratum assignment (0-based).

        Raises
        ------
        ValueError
            If the program is not stratifiable.
        """
        witness = self.negative_cycle_witness()
        if witness is not None:
            raise ValueError(
                "program is not stratifiable: recursion through negation on "
                "edge %s -> %s" % (witness.source, witness.target)
            )
        components = self.sccs()  # reverse topological order
        component_of: Dict[str, int] = {}
        for i, comp in enumerate(components):
            for node in comp:
                component_of[node] = i
        sigma: Dict[str, int] = {n: 0 for n in self.nodes}
        # Process components in topological order (reverse of Tarjan output);
        # within an SCC all members share a stratum.
        for comp in reversed(components):
            level = 0
            for node in comp:
                for e in self.edges:
                    if e.target != node or e.source in comp:
                        continue
                    need = sigma[e.source] + (1 if e.negative else 0)
                    level = max(level, need)
            for node in comp:
                sigma[node] = level
        return sigma

    def stratum_partition(self) -> List[FrozenSet[str]]:
        """Predicates grouped by stratum, lowest first."""
        sigma = self.strata()
        if not sigma:
            return []
        top = max(sigma.values())
        return [
            frozenset(p for p, s in sigma.items() if s == i) for i in range(top + 1)
        ]
