"""The diagnostic framework: codes, severities, spans, reports.

A :class:`Diagnostic` is one finding of the static analyzer — a stable
code (``R001 unsafe-rule``, ``S001 negative-cycle``, ...), a severity,
a human message, and, when the program came from source text, the
``(line, column)`` span of the offending rule so tools can point at
real program text.  A :class:`LintReport` is the full result of one
analysis run: the diagnostics plus the program-level facts summary
(class, stratum count, negative-cycle predicates) that the CLI, the
``explain`` summary block and the server's ``lint``/``stats`` verbs all
share.

The JSON rendering (:meth:`LintReport.to_json`) is schema-stable:
``{"version", "summary", "diagnostics"}`` with fixed keys per
diagnostic, tested against golden expectations so downstream consumers
(CI, editors) can rely on it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.literals import Span

JSON_VERSION = 1
"""Schema version of :meth:`LintReport.to_json` payloads."""


class Severity(enum.IntEnum):
    """Diagnostic severity; order is significance (ERROR highest)."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    ``rule_index`` is the 0-based position of the offending rule in the
    program (``None`` for program-level findings), ``predicate`` the
    predicate the finding is about when there is one, and ``span`` the
    source position when the program was parsed from text.
    """

    code: str
    severity: Severity
    message: str
    span: Optional[Span] = None
    rule_index: Optional[int] = None
    predicate: Optional[str] = None

    def format(self, filename: Optional[str] = None) -> str:
        """Render ``file:line:col: severity[code]: message``."""
        prefix = filename or "<program>"
        if self.span is not None:
            prefix = "%s:%d:%d" % (prefix, self.span.line, self.span.column)
        return "%s: %s[%s]: %s" % (prefix, self.severity, self.code, self.message)

    def to_dict(self) -> Dict[str, Any]:
        """The schema-stable JSON object for this diagnostic."""
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "line": self.span.line if self.span is not None else None,
            "column": self.span.column if self.span is not None else None,
            "rule": self.rule_index,
            "predicate": self.predicate,
        }


_SORT_SPAN = Span(0, 0)


def _sort_key(d: Diagnostic) -> Tuple:
    span = d.span if d.span is not None else _SORT_SPAN
    return (span.line, span.column, -int(d.severity), d.code, d.message)


@dataclass(frozen=True)
class LintReport:
    """Everything one analysis run produced.

    ``summary`` carries the program-level facts every consumer wants
    next to the findings: the paper's program class, the stratum count
    (``None`` when not stratifiable), and the predicates on a cycle
    through negation (where inflationary and well-founded models can
    differ).
    """

    diagnostics: Tuple[Diagnostic, ...]
    program_class: Optional[str] = None
    stratum_count: Optional[int] = None
    negative_cycle_predicates: Tuple[str, ...] = ()
    rules: int = 0

    @classmethod
    def of(
        cls,
        diagnostics,
        program_class: Optional[str] = None,
        stratum_count: Optional[int] = None,
        negative_cycle_predicates=(),
        rules: int = 0,
    ) -> "LintReport":
        """Build a report with diagnostics in presentation order."""
        return cls(
            diagnostics=tuple(sorted(diagnostics, key=_sort_key)),
            program_class=program_class,
            stratum_count=stratum_count,
            negative_cycle_predicates=tuple(sorted(negative_cycle_predicates)),
            rules=rules,
        )

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def count(self, severity: Severity) -> int:
        """How many diagnostics carry ``severity``."""
        return sum(1 for d in self.diagnostics if d.severity is severity)

    @property
    def errors(self) -> int:
        return self.count(Severity.ERROR)

    @property
    def warnings(self) -> int:
        return self.count(Severity.WARNING)

    @property
    def infos(self) -> int:
        return self.count(Severity.INFO)

    def codes(self) -> Tuple[str, ...]:
        """The distinct diagnostic codes present, sorted."""
        return tuple(sorted({d.code for d in self.diagnostics}))

    def has_errors(self, strict: bool = False) -> bool:
        """True when the report should fail a gate.

        ``strict`` promotes warnings to errors (the ``--strict`` flag).
        """
        if strict:
            return self.errors > 0 or self.warnings > 0
        return self.errors > 0

    def exit_code(self, strict: bool = False) -> int:
        """The process exit status lint tooling should use (0 or 1)."""
        return 1 if self.has_errors(strict) else 0

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """The schema-stable program-facts + counts block."""
        return {
            "class": self.program_class,
            "rules": self.rules,
            "strata": self.stratum_count,
            "negative_cycle_predicates": list(self.negative_cycle_predicates),
            "errors": self.errors,
            "warnings": self.warnings,
            "infos": self.infos,
        }

    def to_json(self) -> Dict[str, Any]:
        """The full schema-stable JSON document (see the module doc)."""
        return {
            "version": JSON_VERSION,
            "summary": self.summary(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def format(self, filename: Optional[str] = None) -> str:
        """Human-readable multi-line rendering, one line per finding."""
        lines: List[str] = [d.format(filename) for d in self.diagnostics]
        counts = "%d error(s), %d warning(s), %d info(s)" % (
            self.errors,
            self.warnings,
            self.infos,
        )
        facts = "class=%s" % (self.program_class or "?")
        if self.stratum_count is not None:
            facts += ", strata=%d" % self.stratum_count
        if self.negative_cycle_predicates:
            facts += ", negation cycle through {%s}" % ", ".join(
                self.negative_cycle_predicates
            )
        lines.append("%s — %s" % (counts, facts))
        return "\n".join(lines)
