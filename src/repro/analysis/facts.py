"""The queryable program-facts API: everything static in one object.

Every consumer of static structure — the lint checks, the ``explain``
summary, the server's ``stats`` verb, and the ROADMAP's scaling items
(sharded fixpoints need stratum/SCC facts, the lattice-generic core
needs negation-occurrence classification) — reads from one
:class:`ProgramFacts` instead of re-deriving dependency graphs ad hoc.
Everything is computed lazily and cached; a ``ProgramFacts`` is cheap
to build and safe to hold.

The facts are database-independent (the analyzer must stay off the hot
path: the server computes them once per registered program).  Checks
that need the database (missing relations, column value types) take it
as an extra argument in :mod:`repro.analysis.checks`.
"""

from __future__ import annotations

from functools import cached_property
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..core.literals import Atom, Eq
from ..core.program import Program, ProgramError
from ..core.rules import Rule
from ..core.terms import Constant, Variable
from .classify import EngineSupport, ProgramClass, classify
from .dependency import DependencyEdge, DependencyGraph

INT = "int"
STR = "str"
MIXED = "mixed"
UNKNOWN = "unknown"
"""Column domain lattice: UNKNOWN < INT, STR < MIXED (see
:attr:`ProgramFacts.column_domains`).  The int/str split is exactly the
value domain the PR 7 kernel interns per symbol-table family."""


def _join(domain: str, kind: str) -> str:
    if domain == UNKNOWN:
        return kind
    if domain == kind or kind == UNKNOWN:
        return domain
    return MIXED


def _const_kind(value) -> str:
    return INT if isinstance(value, int) else STR


class ProgramFacts:
    """Static facts about one program, computed once, queried many times."""

    def __init__(self, program: Program) -> None:
        self.program = program

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @cached_property
    def graph(self) -> DependencyGraph:
        """The predicate dependency graph (IDB nodes, signed edges)."""
        return DependencyGraph(self.program)

    @cached_property
    def sccs(self) -> List[FrozenSet[str]]:
        """Strongly connected components, reverse topological order."""
        return self.graph.sccs()

    @cached_property
    def classification(self) -> ProgramClass:
        """The paper's class: positive / semipositive / stratified / general."""
        return classify(self.program)

    @cached_property
    def support(self) -> EngineSupport:
        """Which engines are applicable."""
        return EngineSupport.for_program(self.program)

    @cached_property
    def stratifiable(self) -> bool:
        return self.graph.is_stratifiable()

    @cached_property
    def strata(self) -> Optional[Dict[str, int]]:
        """The least stratum assignment, or ``None`` when unstratifiable."""
        if not self.stratifiable:
            return None
        return self.graph.strata()

    @cached_property
    def stratum_count(self) -> Optional[int]:
        """How many strata the program needs (``None`` if unstratifiable)."""
        strata = self.strata
        if strata is None:
            return None
        if not strata:
            return 0
        return max(strata.values()) + 1

    @cached_property
    def negative_sccs(self) -> List[FrozenSet[str]]:
        """SCCs with recursion through negation (empty iff stratifiable)."""
        return self.graph.negative_sccs()

    @cached_property
    def negative_cycle_predicates(self) -> FrozenSet[str]:
        """Predicates on some cycle through negation.

        On exactly these predicates the inflationary and well-founded
        models can differ — the paper's core distinction; everything
        downstream of them inherits the uncertainty.
        """
        out: set = set()
        for comp in self.negative_sccs:
            out |= comp
        return frozenset(out)

    @cached_property
    def negative_cycles(self) -> List[List[DependencyEdge]]:
        """One witness edge cycle through negation per offending SCC."""
        return self.graph.negative_cycles()

    @cached_property
    def carrier(self) -> Optional[str]:
        """The goal predicate when determinate (explicit or sole IDB)."""
        try:
            return self.program.carrier
        except ProgramError:
            return None

    # ------------------------------------------------------------------
    # Derivability / reachability
    # ------------------------------------------------------------------

    @cached_property
    def derivable(self) -> FrozenSet[str]:
        """IDB predicates that can derive at least one tuple from *some*
        database.

        Least fixpoint of: a predicate is derivable when one of its
        rules has every positive IDB body atom derivable (EDB relations
        are assumed nonempty; negation and comparisons never block a
        rule statically).
        """
        idb = self.program.idb_predicates
        derivable: set = set()
        changed = True
        while changed:
            changed = False
            for rule in self.program.rules:
                head = rule.head.pred
                if head in derivable:
                    continue
                if all(
                    a.pred not in idb or a.pred in derivable
                    for a in rule.positive_atoms()
                ):
                    derivable.add(head)
                    changed = True
        return frozenset(derivable)

    @cached_property
    def dead_rules(self) -> List[int]:
        """Indices of rules that can never fire on any database.

        A rule is dead when some positive body atom names an IDB
        predicate that is never derivable.
        """
        idb = self.program.idb_predicates
        out = []
        for i, rule in enumerate(self.program.rules):
            if any(
                a.pred in idb and a.pred not in self.derivable
                for a in rule.positive_atoms()
            ):
                out.append(i)
        return out

    @cached_property
    def underivable(self) -> FrozenSet[str]:
        """IDB predicates none of whose rules can ever fire."""
        return self.program.idb_predicates - self.derivable

    @cached_property
    def unconsumed(self) -> FrozenSet[str]:
        """IDB predicates derived but feeding nothing.

        A predicate that occurs in no rule body (positively or under
        negation) and is not the program's carrier is computed and then
        never read — usually a leftover, sometimes the intended output
        of a program whose carrier was simply not declared, hence
        info-level downstream.
        """
        used: set = set()
        for rule in self.program.rules:
            used |= rule.body_predicates()
        out = self.program.idb_predicates - used
        if self.carrier is not None:
            out -= {self.carrier}
        return frozenset(out)

    # ------------------------------------------------------------------
    # Duplicate / subsumed rules
    # ------------------------------------------------------------------

    @cached_property
    def duplicate_rules(self) -> List[Tuple[int, int]]:
        """Pairs ``(first, dup)`` of rule indices that are the same rule.

        Same head and same body *as a set* — literal order never matters
        to any semantics here, so the later occurrence is redundant.
        """
        seen: Dict[Tuple, int] = {}
        out = []
        for i, rule in enumerate(self.program.rules):
            key = (rule.head, frozenset(rule.body))
            if key in seen:
                out.append((seen[key], i))
            else:
                seen[key] = i
        return out

    @cached_property
    def subsumed_rules(self) -> List[Tuple[int, int]]:
        """Pairs ``(by, subsumed)``: rule ``by`` makes ``subsumed`` redundant.

        The syntactic case only: identical heads and ``body(by)`` a
        strict subset of ``body(subsumed)`` — every extra literal only
        restricts, so anything the longer rule derives the shorter one
        already derives (under every semantics in the repo, negation
        included).
        """
        rules = self.program.rules
        bodies = [frozenset(r.body) for r in rules]
        dup_pairs = set(self.duplicate_rules)
        out = []
        for j, longer in enumerate(rules):
            for i, shorter in enumerate(rules):
                if i == j or shorter.head != longer.head:
                    continue
                if bodies[i] < bodies[j] and (i, j) not in dup_pairs:
                    out.append((i, j))
                    break
        return out

    # ------------------------------------------------------------------
    # Column domain / type inference
    # ------------------------------------------------------------------

    @cached_property
    def column_domains(self) -> Dict[Tuple[str, int], str]:
        """Inferred value domain per ``(predicate, column)``.

        Constants seed their positions; variables carry domains from the
        body positions that bind them into head positions, iterated to
        fixpoint.  The domain alphabet is the kernel's: the PR 7
        ``SymbolTable`` families intern exactly ints and strings, so a
        column that mixes both (``MIXED``) forces value-space fallbacks
        and is worth a warning.  Positions never touched by a constant
        stay ``UNKNOWN``.

        EDB seeding from actual database contents is the caller's
        choice (see :func:`repro.analysis.checks.seed_edb_domains`) —
        the facts object itself stays database-independent.
        """
        domains: Dict[Tuple[str, int], str] = {}
        for pred, arity in self.program.arities.items():
            for col in range(arity):
                domains[(pred, col)] = UNKNOWN
        self._seed_constants(domains)
        self._propagate(domains)
        return domains

    def _seed_constants(self, domains: Dict[Tuple[str, int], str]) -> None:
        for rule in self.program.rules:
            atoms = [rule.head] + rule.positive_atoms() + [
                n.atom for n in rule.negated_atoms()
            ]
            for atom in atoms:
                for col, arg in enumerate(atom.args):
                    if isinstance(arg, Constant):
                        key = (atom.pred, col)
                        domains[key] = _join(domains[key], _const_kind(arg.value))

    def _propagate(
        self, domains: Dict[Tuple[str, int], str], seeds=None
    ) -> None:
        """Flow domains from body positions through variables into heads."""
        if seeds:
            for key, kind in seeds.items():
                if key in domains:
                    domains[key] = _join(domains[key], kind)
        changed = True
        while changed:
            changed = False
            for rule in self.program.rules:
                var_kind: Dict[Variable, str] = {}
                body_atoms = rule.positive_atoms() + [
                    n.atom for n in rule.negated_atoms()
                ]
                for atom in body_atoms:
                    for col, arg in enumerate(atom.args):
                        if isinstance(arg, Variable):
                            kind = domains[(atom.pred, col)]
                            var_kind[arg] = _join(var_kind.get(arg, UNKNOWN), kind)
                for cmp in rule.comparisons():
                    if not isinstance(cmp, Eq):
                        continue
                    left, right = cmp.left, cmp.right
                    if isinstance(left, Variable) and isinstance(right, Constant):
                        var_kind[left] = _join(
                            var_kind.get(left, UNKNOWN), _const_kind(right.value)
                        )
                    elif isinstance(right, Variable) and isinstance(left, Constant):
                        var_kind[right] = _join(
                            var_kind.get(right, UNKNOWN), _const_kind(left.value)
                        )
                for col, arg in enumerate(rule.head.args):
                    if isinstance(arg, Variable) and arg in var_kind:
                        key = (rule.head.pred, col)
                        joined = _join(domains[key], var_kind[arg])
                        if joined != domains[key]:
                            domains[key] = joined
                            changed = True

    def column_domains_with(
        self, seeds: Dict[Tuple[str, int], str]
    ) -> Dict[Tuple[str, int], str]:
        """Column domains re-propagated with extra (EDB) seeds joined in."""
        domains = dict(self.column_domains)
        self._propagate(domains, seeds=seeds)
        return domains

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def rule_span(self, index: int):
        """The source span of rule ``index`` (``None`` if built in code)."""
        return self.program.rules[index].span

    def defining_rule(self, pred: str) -> Optional[Rule]:
        """The first rule whose head is ``pred``."""
        for rule in self.program.rules:
            if rule.head.pred == pred:
                return rule
        return None

    def negation_occurrences(self) -> List[Tuple[int, Atom]]:
        """Every negated occurrence as ``(rule index, negated atom)``.

        The lattice-generic core (ROADMAP) classifies occurrences of
        negation; this is its raw feed.
        """
        out = []
        for i, rule in enumerate(self.program.rules):
            for neg in rule.negated_atoms():
                out.append((i, neg.atom))
        return out
