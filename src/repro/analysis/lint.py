"""Lint orchestration: source text (or a program) in, a report out.

:func:`lint_source` is the full pipeline — parse, arity-check, build
:class:`~repro.analysis.facts.ProgramFacts`, run the registry — with
every failure mode turned into a spanned diagnostic instead of an
exception:

* ``P001`` the text does not tokenize/parse,
* ``P002`` the text parses to zero rules,
* ``A001`` a predicate is used with two arities (the parse-level error
  :class:`~repro.core.program.Program` would raise),
* ``A002`` program construction failed some other way (bad carrier).

:func:`lint_program` is the short form for programs that already exist
as values (the server's hosted views); it runs the registry only.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.literals import Atom, Negation, Span
from ..core.parser import ParseError, parse_rules
from ..core.program import Program, ProgramError
from ..db.database import Database
from .checks import run_checks
from .diagnostics import Diagnostic, LintReport, Severity
from .facts import ProgramFacts


def _arity_conflicts(rules) -> List[Diagnostic]:
    """A001 diagnostics: predicates used with inconsistent arities."""
    seen: Dict[str, Tuple[int, Atom]] = {}
    out: List[Diagnostic] = []
    for rule in rules:
        atoms = [rule.head]
        for lit in rule.body:
            if isinstance(lit, Atom):
                atoms.append(lit)
            elif isinstance(lit, Negation):
                atoms.append(lit.atom)
        for atom in atoms:
            prior = seen.get(atom.pred)
            if prior is None:
                seen[atom.pred] = (atom.arity, atom)
            elif prior[0] != atom.arity:
                out.append(
                    Diagnostic(
                        code="A001",
                        severity=Severity.ERROR,
                        message=(
                            "arity conflict: %s used with arity %d here but "
                            "arity %d at %s"
                            % (
                                atom.pred,
                                atom.arity,
                                prior[0],
                                prior[1].span or "an earlier occurrence",
                            )
                        ),
                        span=atom.span,
                        predicate=atom.pred,
                    )
                )
    return out


def lint_program(
    program: Program,
    db: Optional[Database] = None,
    facts: Optional[ProgramFacts] = None,
) -> LintReport:
    """Analyze an already-constructed program (registry checks only)."""
    facts = facts if facts is not None else ProgramFacts(program)
    return LintReport.of(
        run_checks(facts, db),
        program_class=facts.classification.value,
        stratum_count=facts.stratum_count,
        negative_cycle_predicates=facts.negative_cycle_predicates,
        rules=len(program.rules),
    )


def lint_source(
    text: str,
    db: Optional[Database] = None,
    carrier: Optional[str] = None,
) -> LintReport:
    """Analyze program text; every failure mode becomes a diagnostic."""
    try:
        rules = parse_rules(text)
    except ParseError as exc:
        return LintReport.of(
            [
                Diagnostic(
                    code="P001",
                    severity=Severity.ERROR,
                    message=str(exc),
                    span=Span(exc.line, exc.column),
                )
            ]
        )
    if not rules:
        return LintReport.of(
            [
                Diagnostic(
                    code="P002",
                    severity=Severity.ERROR,
                    message="program contains no rules",
                )
            ]
        )
    conflicts = _arity_conflicts(rules)
    if conflicts:
        return LintReport.of(conflicts, rules=len(rules))
    try:
        program = Program(rules, carrier=carrier)
    except ProgramError as exc:
        return LintReport.of(
            [
                Diagnostic(
                    code="A002",
                    severity=Severity.ERROR,
                    message=str(exc),
                )
            ],
            rules=len(rules),
        )
    return lint_program(program, db)
