"""Size and shape metrics for programs and ground instantiations.

Used by experiment E6 to demonstrate the data-vs-expression complexity gap
(Vardi [Va82], cited in the Introduction): for a fixed program the ground
system grows polynomially in the database, but when the program is part of
the input the exponent tracks the program's arities.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.grounding import GroundProgram
from ..core.literals import Negation, Neq
from ..core.program import Program


@dataclass(frozen=True)
class ProgramStats:
    """Static program metrics."""

    rules: int
    idb_predicates: int
    edb_predicates: int
    max_arity: int
    max_body_length: int
    negated_literals: int
    inequality_literals: int
    total_variables: int

    @classmethod
    def of(cls, program: Program) -> "ProgramStats":
        """Collect metrics from a program."""
        negs = sum(
            1 for r in program.rules for t in r.body if isinstance(t, Negation)
        )
        neqs = sum(
            1 for r in program.rules for t in r.body if isinstance(t, Neq)
        )
        return cls(
            rules=len(program.rules),
            idb_predicates=len(program.idb_predicates),
            edb_predicates=len(program.edb_predicates),
            max_arity=max(program.arities.values()),
            max_body_length=max(len(r.body) for r in program.rules),
            negated_literals=negs,
            inequality_literals=neqs,
            total_variables=sum(len(r.variables()) for r in program.rules),
        )


@dataclass(frozen=True)
class GroundingStats:
    """Size of the ground system for one ``(program, db)`` pair."""

    universe_size: int
    atom_space: int
    derivable_atoms: int
    ground_rules: int

    @classmethod
    def of(cls, ground: GroundProgram) -> "GroundingStats":
        """Collect metrics from a ground program."""
        return cls(
            universe_size=len(ground.db.universe),
            atom_space=ground.atom_space_size(),
            derivable_atoms=len(ground.derivable),
            ground_rules=len(ground.rules),
        )
