"""Experiment harness and the E1–E9 registry."""

from . import experiments  # noqa: F401  (registers the experiments)
from .harness import Experiment, Table, all_experiments, experiment

__all__ = ["Experiment", "Table", "all_experiments", "experiment"]
