"""Experiment harness and the E1–E9 (+ perf) registry."""

from . import experiments  # noqa: F401  (registers the experiments)
from . import perf  # noqa: F401  (registers the planner perf experiment)
from . import kernel_perf  # noqa: F401  (registers the columnar kernel bench)
from . import serve_perf  # noqa: F401  (registers the server load harness)
from . import parallel_perf  # noqa: F401  (registers the sharded-executor scaling table)
from .harness import Experiment, Table, all_experiments, experiment

__all__ = ["Experiment", "Table", "all_experiments", "experiment"]
