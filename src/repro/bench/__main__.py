"""CLI: ``python -m repro.bench [e1 e2 ...|all] [--markdown|--json]``.

Runs the requested experiments and prints their tables; used to generate
EXPERIMENTS.md and for quick eyeballing.  ``--json`` emits the same
tables as machine-readable data — the ``BENCH_*.json`` files at the repo
root are committed snapshots of ``python -m repro.bench perf --json``.

``python -m repro.bench check [--baseline FILE] [--factor F]
[--floor S] [ids...]`` re-runs the experiments (default: ``perf``,
``serve``, ``kernel`` and ``parallel``) and fails when any shipped-path timing cell —
evaluation, materialized-view update latency, the view server's p95
request latency under load *and* the columnar kernel's primitive ops —
regressed more than ``F``-fold
against the committed baseline; CI runs it as the perf gate.  The
baseline defaults to the **newest** ``BENCH_*.json`` in the working
directory (natural sort, so ``BENCH_PR10`` outranks ``BENCH_PR9``), and
the gate fails loudly — it does not silently pass — when a timing table
or row of the current run has no counterpart in the baseline: a stale
baseline would otherwise exempt exactly the newest code from the gate.
"""

from __future__ import annotations

import json
import os
import platform
import re
import sys
import time
from pathlib import Path

from .harness import all_experiments, experiment

_TIMING_COLUMNS = frozenset(
    {"compiled s", "batch s", "update s", "adaptive s", "p95 s", "kernel s", "parallel s"}
)
"""Shipped-path timing columns the regression gate compares: compiled
plan execution, batch execution, materialized-view update latency,
adaptive re-planning + semi-join execution, the view server's p95
request latency under load, and the columnar kernel's primitive ops."""


def _natural_key(path: Path):
    """Sort key treating digit runs numerically (PR10 after PR9)."""
    return [
        int(part) if part.isdigit() else part
        for part in re.split(r"(\d+)", path.name)
    ]


def _default_baseline() -> "Path | None":
    """The newest committed ``BENCH_*.json`` snapshot, if any."""
    candidates = sorted(Path(".").glob("BENCH_*.json"), key=_natural_key)
    return candidates[-1] if candidates else None


def _run_experiments(ids):
    chosen = (
        all_experiments()
        if not ids or ids == ["all"]
        else [experiment(a) for a in ids]
    )
    results = []
    for exp in chosen:
        start = time.perf_counter()
        tables = exp.run()
        elapsed = time.perf_counter() - start
        results.append((exp, tables, elapsed))
    return results


def _bench_meta() -> dict:
    """Environment facts every BENCH json carries.

    A committed snapshot is only comparable to a rerun on the same
    footing — which kernel backend was live (``array`` fallback vs the
    numpy fast path changes the columnar timings severalfold), which
    interpreter, how many cores, which *machine*.  Recording them in the
    artifact makes a surprising gate verdict diagnosable from the file
    alone; ``check`` prints both sides' meta blocks on failure.
    """
    import datetime

    from ..db import kernel

    return {
        "kernel_backend": kernel.backend(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "hostname": platform.node(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "monotonic_ns": time.monotonic_ns(),
    }


def _as_json(results) -> dict:
    return {
        "generated_with": "python -m repro.bench %s --json"
        % " ".join(exp.ident for exp, _, _ in results),
        "meta": _bench_meta(),
        "experiments": [
            {
                "id": exp.ident,
                "title": exp.title,
                "claim": exp.claim,
                "runtime_s": elapsed,
                "tables": [t.to_dict() for t in tables],
            }
            for exp, tables, elapsed in results
        ],
    }


def run_check(argv) -> int:
    """Compare a fresh run against a committed ``--json`` baseline.

    ``--json-out FILE`` additionally writes the gated run's tables as
    JSON — the same document ``perf --json`` prints — so CI can upload
    the exact measurements the gate judged instead of re-running.
    """
    baseline_path = None
    factor = 3.0
    floor = 0.02
    json_out = None
    ids = []
    it = iter(argv)
    for a in it:
        if a == "--baseline":
            baseline_path = next(it, None)
        elif a == "--factor":
            factor = float(next(it))
        elif a == "--floor":
            floor = float(next(it))
        elif a == "--json-out":
            json_out = next(it, None)
        else:
            ids.append(a)
    if baseline_path is None:
        default = _default_baseline()
        if default is None:
            print(
                "no --baseline given and no BENCH_*.json snapshot found; "
                "generate one with `python -m repro.bench perf --json`"
            )
            return 2
        baseline_path = str(default)
        print("using newest committed baseline: %s" % baseline_path)
    with open(baseline_path) as fh:
        baseline = json.load(fh)

    results = _run_experiments(ids or ["perf", "serve", "kernel", "parallel"])
    current = _as_json(results)
    if json_out is not None:
        with open(json_out, "w") as fh:
            json.dump(current, fh, indent=2, sort_keys=True)
        print("wrote gated run's tables to %s" % json_out)
    current_by_id = {e["id"]: e for e in current["experiments"]}

    failures = []
    # Reverse direction first: every *current* timing table and row must
    # have a baseline counterpart, or the gate is not gating it.  (The
    # forward loop below cannot see these — it walks the baseline.)
    baseline_by_id = {e["id"]: e for e in baseline["experiments"]}
    for cur_exp in current["experiments"]:
        base_exp = baseline_by_id.get(cur_exp["id"])
        base_tables = (
            {t["title"]: t for t in base_exp["tables"]} if base_exp else {}
        )
        for cur_table in cur_exp["tables"]:
            timing_cols = [c for c in cur_table["columns"] if c in _TIMING_COLUMNS]
            if not timing_cols:
                continue
            base_table = base_tables.get(cur_table["title"])
            if base_table is None:
                failures.append(
                    "table %r is not in baseline %s — regenerate the "
                    "snapshot so the gate covers it"
                    % (cur_table["title"], baseline_path)
                )
                continue
            missing_cols = [
                c for c in timing_cols if c not in base_table["columns"]
            ]
            if missing_cols:
                failures.append(
                    "timing columns %s of table %r are not in baseline %s"
                    % (missing_cols, cur_table["title"], baseline_path)
                )
            base_rows = {row[0] for row in base_table["rows"]}
            for row in cur_table["rows"]:
                if row[0] not in base_rows:
                    failures.append(
                        "row %r of table %r is not in baseline %s"
                        % (row[0], cur_table["title"], baseline_path)
                    )
    for base_exp in baseline["experiments"]:
        cur_exp = current_by_id.get(base_exp["id"])
        if cur_exp is None:
            failures.append("experiment %r missing from current run" % base_exp["id"])
            continue
        cur_tables = {t["title"]: t for t in cur_exp["tables"]}
        for base_table in base_exp["tables"]:
            cur_table = cur_tables.get(base_table["title"])
            if cur_table is None:
                failures.append("table %r missing" % base_table["title"])
                continue
            if not cur_table["all_ok"]:
                failures.append("table %r has failing ok rows" % base_table["title"])
            # Resolve timing columns by *name* in each file independently:
            # a reordered or renamed column must fail loudly, never compare
            # mismatched cells.
            timing_cols = [c for c in base_table["columns"] if c in _TIMING_COLUMNS]
            missing = [c for c in timing_cols if c not in cur_table["columns"]]
            if missing:
                failures.append(
                    "table %r lost timing columns %s" % (base_table["title"], missing)
                )
                continue
            col_pairs = [
                (c, base_table["columns"].index(c), cur_table["columns"].index(c))
                for c in timing_cols
            ]
            cur_rows = {row[0]: row for row in cur_table["rows"]}
            for base_row in base_table["rows"]:
                cur_row = cur_rows.get(base_row[0])
                if cur_row is None:
                    failures.append(
                        "row %r missing from table %r"
                        % (base_row[0], base_table["title"])
                    )
                    continue
                for name, bi, ci in col_pairs:
                    base_t = max(float(base_row[bi]), floor)
                    cur_t = float(cur_row[ci])
                    if cur_t > factor * base_t:
                        failures.append(
                            "%s / %s / %s: %.4fs vs baseline %.4fs (> %.1fx)"
                            % (
                                base_table["title"],
                                base_row[0],
                                name,
                                cur_t,
                                base_t,
                                factor,
                            )
                        )
    if failures:
        print("perf regression check FAILED (factor %.1fx, floor %.3fs):" % (factor, floor))
        for f in failures:
            print("  - %s" % f)
        # Environment mismatches (kernel backend, host, interpreter) are
        # the usual innocent explanation — print both sides so the
        # verdict is diagnosable from the log alone.
        print("baseline meta: %s" % json.dumps(baseline.get("meta", {}), sort_keys=True))
        print("current  meta: %s" % json.dumps(current.get("meta", {}), sort_keys=True))
        return 1
    print(
        "perf regression check passed (factor %.1fx, floor %.3fs, %d experiments)"
        % (factor, floor, len(baseline["experiments"]))
    )
    return 0


def main(argv) -> int:
    if argv and argv[0] == "check":
        return run_check(argv[1:])
    args = [a for a in argv if not a.startswith("--")]
    markdown = "--markdown" in argv
    as_json = "--json" in argv
    results = _run_experiments(args)
    if as_json:
        print(json.dumps(_as_json(results), indent=2, sort_keys=True))
        return 1 if any(
            not t.all_ok() for _, tables, _ in results for t in tables
        ) else 0
    failures = 0
    for exp, tables, elapsed in results:
        if markdown:
            print("## %s\n" % exp.title)
            print("Claim: %s\n" % exp.claim)
            for table in tables:
                print(table.render_markdown())
                print()
            print("_Runtime: %.2fs_\n" % elapsed)
        else:
            print("=" * 72)
            print("%s  (%.2fs)" % (exp.title, elapsed))
            print("claim: %s" % exp.claim)
            print()
            for table in tables:
                print(table.render())
                print()
        for table in tables:
            if not table.all_ok():
                failures += 1
                print("!! table %r has failing rows" % table.title)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
