"""CLI: ``python -m repro.bench [e1 e2 ...|all] [--markdown]``.

Runs the requested experiments and prints their tables; used to generate
EXPERIMENTS.md and for quick eyeballing.
"""

from __future__ import annotations

import sys
import time

from .harness import all_experiments, experiment


def main(argv) -> int:
    args = [a for a in argv if not a.startswith("--")]
    markdown = "--markdown" in argv
    chosen = (
        all_experiments()
        if not args or args == ["all"]
        else [experiment(a) for a in args]
    )
    failures = 0
    for exp in chosen:
        start = time.perf_counter()
        tables = exp.run()
        elapsed = time.perf_counter() - start
        if markdown:
            print("## %s\n" % exp.title)
            print("Claim: %s\n" % exp.claim)
            for table in tables:
                print(table.render_markdown())
                print()
            print("_Runtime: %.2fs_\n" % elapsed)
        else:
            print("=" * 72)
            print("%s  (%.2fs)" % (exp.title, elapsed))
            print("claim: %s" % exp.claim)
            print()
            for table in tables:
                print(table.render())
                print()
        for table in tables:
            if not table.all_ok():
                failures += 1
                print("!! table %r has failing rows" % table.title)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
