"""The E1–E9 experiment suite: every claim of the paper, regenerated.

Each ``run_eN`` function returns tables whose ``ok`` columns compare the
measured outcome against what the paper predicts.  The pytest benchmarks in
``benchmarks/`` time these runners; EXPERIMENTS.md records their output.
"""

from __future__ import annotations

from typing import List

from ..analysis.stats import GroundingStats
from ..core.fixpoint import idb_equal, incomparable
from ..core.grounding import ground_program
from ..core.satreduction import (
    count_fixpoints_sat,
    enumerate_fixpoints_sat,
    has_fixpoint,
    has_unique_fixpoint,
    least_fixpoint,
)
from ..core.semantics import (
    inflationary_semantics,
    naive_least_fixpoint,
    seminaive_least_fixpoint,
    stratified_semantics,
)
from ..circuits.builders import (
    complete_graph_circuit,
    empty_graph_circuit,
    explicit_graph_circuit,
    hypercube_circuit,
)
from ..db.database import Database
from ..graphs import generators as gg
from ..graphs.algorithms import (
    count_3colorings,
    distance_query,
    is_3colorable,
    transitive_closure,
)
from ..graphs.encode import graph_to_database
from ..logic.ef import ef_equivalent
from ..logic.ifp import simultaneous_ifp
from ..logic.translate import (
    existential_fo_to_program,
    program_to_ifp_definitions,
    theta_formula,
)
from ..core.terms import Variable
from ..queries import library as q
from ..reductions.coloring import pi_col
from ..reductions.sat_encoding import cnf_to_database, pi_sat
from ..reductions.succinct_coloring import binary_database, pi_sc
from ..workloads import cnf_gen
from .harness import Table, register


@register(
    "e1",
    "E1: fixpoint structure of pi_1 on paths, cycles, and G_n",
    "Section 2: unique fixpoint {2,4,...} on L_n; none on odd C_n; two "
    "incomparable on even C_n; 2^n incomparable fixpoints and no least "
    "fixpoint on G_n.",
)
def run_e1() -> List[Table]:
    program = q.pi1()

    paths = Table(
        "pi_1 on directed paths L_n",
        ["n", "#fixpoints", "fixpoint", "expected", "ok"],
    )
    for n in range(2, 9):
        db = graph_to_database(gg.path(n))
        points = list(enumerate_fixpoints_sat(program, db))
        expected = tuple(sorted((i,) for i in range(2, n + 1, 2)))
        got = tuple(sorted(points[0]["T"].tuples)) if len(points) == 1 else None
        paths.add(n, len(points), got, expected, got == expected)

    cycles = Table(
        "pi_1 on directed cycles C_n",
        ["n", "parity", "#fixpoints", "expected", "ok"],
    )
    for n in range(3, 11):
        db = graph_to_database(gg.cycle(n))
        count = count_fixpoints_sat(program, db)
        expected = 0 if n % 2 else 2
        cycles.add(n, "odd" if n % 2 else "even", count, expected, count == expected)

    gn = Table(
        "pi_1 on G_n (n disjoint 4-cycles)",
        ["n", "#fixpoints", "expected 2^n", "pairwise incomparable", "least exists", "ok"],
    )
    for n in range(1, 6):
        db = graph_to_database(gg.disjoint_cycles(n))
        points = list(enumerate_fixpoints_sat(program, db))
        pairwise = all(
            incomparable(a, b)
            for i, a in enumerate(points)
            for b in points[i + 1:]
        )
        report = least_fixpoint(program, db)
        ok = (
            len(points) == 2 ** n and pairwise and not report.least_exists
        )
        gn.add(n, len(points), 2 ** n, pairwise, report.least_exists, ok)
    return [paths, cycles, gn]


@register(
    "e2",
    "E2: Theorem 1 / Example 1 — pi_SAT fixpoints = satisfying assignments",
    "A fixpoint of (pi_SAT, D(I)) exists iff I is satisfiable; fixpoints "
    "are in one-to-one correspondence with satisfying assignments.",
)
def run_e2() -> List[Table]:
    program = pi_sat()
    table = Table(
        "random 3-CNF instances",
        ["seed", "vars", "clauses", "satisfiable", "fixpoint exists", "#models", "#fixpoints", "ok"],
    )
    cases = [
        (seed, 4, m) for seed in range(6) for m in (6, 10)
    ] + [(seed, 5, 12) for seed in range(4)]
    for seed, n, m in cases:
        inst = cnf_gen.random_kcnf(n, m, 3, seed=seed)
        db = cnf_to_database(inst)
        models = inst.count_models()
        fixpoints = count_fixpoints_sat(program, db)
        exists = has_fixpoint(program, db)
        table.add(
            seed, n, m, models > 0, exists, models, fixpoints,
            (models > 0) == exists and models == fixpoints,
        )
    edge = Table(
        "edge cases",
        ["instance", "satisfiable", "fixpoint exists", "#models", "#fixpoints", "ok"],
    )
    for name, inst in [
        ("unsatisfiable x & !x", cnf_gen.unsatisfiable_instance()),
        ("parity chain n=4", cnf_gen.parity_chain(4)),
        ("fixed 2-model", cnf_gen.fixed_instance_small()),
    ]:
        db = cnf_to_database(inst)
        models = inst.count_models()
        fixpoints = count_fixpoints_sat(program, db)
        edge.add(
            name, models > 0, has_fixpoint(program, db), models, fixpoints,
            (models > 0) == has_fixpoint(program, db) and models == fixpoints,
        )
    return [table, edge]


@register(
    "e3",
    "E3: Theorem 2 — unique fixpoint iff unique satisfying assignment",
    "pi-UNIQUE-FIXPOINT is US-complete; behaviourally, (pi_SAT, D(I)) has "
    "a unique fixpoint exactly when I has a unique satisfying assignment.",
)
def run_e3() -> List[Table]:
    program = pi_sat()
    table = Table(
        "engineered model counts",
        ["instance", "#models", "unique fixpoint", "expected", "ok"],
    )
    cases = [("unsat", cnf_gen.unsatisfiable_instance())]
    cases += [
        ("unique seed=%d n=%d" % (s, n), cnf_gen.unique_model_instance(n, seed=s))
        for s, n in ((0, 3), (1, 4), (2, 5), (3, 6))
    ]
    cases += [
        ("multi seed=%d" % s, cnf_gen.random_kcnf(4, 5, 3, seed=s)) for s in range(3)
    ]
    cases.append(("2-model fixed", cnf_gen.fixed_instance_small()))
    for name, inst in cases:
        models = inst.count_models()
        unique = has_unique_fixpoint(program, cnf_to_database(inst))
        table.add(name, models, unique, models == 1, unique == (models == 1))
    return [table]


@register(
    "e4",
    "E4: Theorem 3 — least fixpoints via intersection of all fixpoints",
    "A least fixpoint exists iff the intersection of all fixpoints is a "
    "fixpoint; decidable with polynomially many NP-oracle calls.",
)
def run_e4() -> List[Table]:
    table = Table(
        "least-fixpoint decisions",
        ["program", "database", "fixpoint exists", "least exists", "expected least", "oracle calls", "ok"],
    )
    pi1 = q.pi1()
    cases = [
        ("pi_1", "L_4", graph_to_database(gg.path(4)), True),
        ("pi_1", "L_7", graph_to_database(gg.path(7)), True),
        ("pi_1", "C_3 (odd)", graph_to_database(gg.cycle(3)), False),
        ("pi_1", "C_4 (even)", graph_to_database(gg.cycle(4)), False),
        ("pi_1", "C_6 (even)", graph_to_database(gg.cycle(6)), False),
        ("pi_1", "G_2", graph_to_database(gg.disjoint_cycles(2)), False),
        ("pi_1", "G_3", graph_to_database(gg.disjoint_cycles(3)), False),
    ]
    for prog_name, db_name, db, expected in cases:
        report = least_fixpoint(pi1, db)
        table.add(
            prog_name, db_name, report.exists, report.least_exists, expected,
            report.oracle_calls, report.least_exists == expected,
        )

    positive = Table(
        "positive programs: least fixpoint always exists and equals the "
        "standard semantics",
        ["database", "least exists", "equals naive lfp", "ok"],
    )
    tc = q.transitive_closure_program()
    for db_name, graph in [
        ("L_5", gg.path(5)),
        ("C_5", gg.cycle(5)),
        ("random n=6 p=0.3", gg.random_digraph(6, 0.3, seed=1)),
    ]:
        db = graph_to_database(graph)
        report = least_fixpoint(tc, db)
        standard = naive_least_fixpoint(tc, db).idb
        agrees = report.least_exists and idb_equal(report.least, standard)
        positive.add(db_name, report.least_exists, agrees, agrees)
    return [table, positive]


@register(
    "e5",
    "E5: Lemma 1 — pi_COL fixpoints = proper 3-colorings",
    "pi_COL has a fixpoint on E iff the graph is 3-colorable; fixpoints "
    "biject with proper 3-colorings.",
)
def run_e5() -> List[Table]:
    program = pi_col()
    table = Table(
        "graphs vs pi_COL",
        ["graph", "3-colorable", "fixpoint exists", "#colorings", "#fixpoints", "ok"],
    )
    triangle = gg.cycle(3).union(gg.cycle(3).reversed())
    cases = [
        ("triangle", triangle),
        ("K_4", gg.complete(4)),
        ("K_{2,3}", gg.bipartite_complete(2, 3)),
        ("wheel W_5 (odd)", gg.wheel(5)),
        ("wheel W_6 (even)", gg.wheel(6)),
        ("path L_4", gg.path(4)),
        ("Petersen", gg.petersen()),
        ("random n=6 p=0.4", gg.random_digraph(6, 0.4, seed=3)),
    ]
    for name, graph in cases:
        db = graph_to_database(graph)
        colorings = count_3colorings(graph)
        colorable = is_3colorable(graph)
        exists = has_fixpoint(program, db)
        # Counting every fixpoint of the Petersen instance is expensive;
        # cap the enumeration where the exact count is not the point.
        if len(graph.nodes) <= 8:
            fixpoints = count_fixpoints_sat(program, db)
            ok = colorable == exists and colorings == fixpoints
            table.add(name, colorable, exists, colorings, fixpoints, ok)
        else:
            table.add(name, colorable, exists, colorings, "(skipped)", colorable == exists)
    return [table]


@register(
    "e6",
    "E6: Theorem 4 — succinct 3-coloring via pi_SC; expression complexity",
    "pi_SC (circuit gates compiled to rules over {0,1}) has a fixpoint iff "
    "the circuit-presented graph is 3-colorable; grounding size grows with "
    "the program, illustrating data vs expression complexity.",
)
def run_e6() -> List[Table]:
    table = Table(
        "succinct instances",
        ["circuit", "address bits", "nodes", "3-colorable (explicit)", "pi_SC fixpoint", "ok"],
    )
    from ..graphs.digraph import Digraph

    k2 = Digraph([(0,), (1,)], [((0,), (1,)), ((1,), (0,))])
    cases = [
        ("explicit K_2", explicit_graph_circuit(k2, 1)),
        ("empty n=2", empty_graph_circuit(2)),
        ("hypercube n=2 (C_4)", hypercube_circuit(2)),
        ("complete n=2 (K_4)", complete_graph_circuit(2)),
    ]
    for name, sg in cases:
        explicit = sg.expand()
        expected = is_3colorable(explicit)
        got = has_fixpoint(pi_sc(sg), binary_database())
        table.add(name, sg.address_bits, sg.num_nodes, expected, got, expected == got)

    growth = Table(
        "expression complexity: ground system size as the program grows",
        ["circuit", "program rules", "ground atom space", "derivable atoms", "ground rules"],
    )
    for name, sg in [
        ("empty n=1", empty_graph_circuit(1)),
        ("empty n=2", empty_graph_circuit(2)),
        ("hypercube n=2", hypercube_circuit(2)),
        ("complete n=2", complete_graph_circuit(2)),
        ("hypercube n=3", hypercube_circuit(3)),
    ]:
        program = pi_sc(sg)
        stats = GroundingStats.of(ground_program(program, binary_database()))
        growth.add(name, len(program.rules), stats.atom_space, stats.derivable_atoms, stats.ground_rules)
    growth.note(
        "the database is constant ({0,1}); all growth is driven by the "
        "program — the expression-complexity side of Vardi's distinction"
    )
    return [table, growth]


@register(
    "e7",
    "E7: Section 4 — inflationary semantics: totality, conservativity, "
    "polynomial rounds",
    "Inflationary DATALOG coincides with least-fixpoint DATALOG on "
    "negation-free programs, assigns meaning to all programs, and "
    "stabilises within |A|^k rounds.",
)
def run_e7() -> List[Table]:
    conserv = Table(
        "negation-free: naive = semi-naive = inflationary",
        ["database", "naive size", "agree", "naive rounds", "inflationary rounds", "ok"],
    )
    tc = q.transitive_closure_program()
    for name, graph in [
        ("L_6", gg.path(6)),
        ("C_5", gg.cycle(5)),
        ("random n=7 p=0.25", gg.random_digraph(7, 0.25, seed=5)),
        ("grid 3x3", gg.grid(3, 3)),
    ]:
        db = graph_to_database(graph)
        a = naive_least_fixpoint(tc, db)
        b = seminaive_least_fixpoint(tc, db)
        c = inflationary_semantics(tc, db)
        agree = idb_equal(a.idb, b.idb) and idb_equal(b.idb, c.idb)
        conserv.add(name, len(a.idb["S"]), agree, a.rounds, c.rounds, agree)

    totality = Table(
        "paper's worked inflationary values",
        ["program", "database", "carrier value", "expected", "rounds", "ok"],
    )
    toggle = q.toggle_program()
    db3 = Database({1, 2, 3}, [])
    r = inflationary_semantics(toggle, db3)
    got = sorted(r.carrier_value.tuples)
    expected = [(1,), (2,), (3,)]
    totality.add("T(x):-!T(y)", "|A|=3", got, "A (all)", r.rounds, got == expected)

    pi1 = q.pi1()
    for name, graph in [("L_5", gg.path(5)), ("C_4", gg.cycle(4))]:
        db = graph_to_database(graph)
        r = inflationary_semantics(pi1, db)
        got = sorted(r.carrier_value.tuples)
        expected = sorted(
            {(y,) for (x, y) in graph.edges}
        )
        totality.add(
            "pi_1", name, got, "{x : exists y E(y,x)}", r.rounds, got == expected
        )

    bounds = Table(
        "rounds stay within the |A|^k bound (TC on growing paths)",
        ["n", "rounds", "bound |A|^2", "within", "ok"],
    )
    for n in (4, 8, 12, 16):
        db = graph_to_database(gg.path(n))
        r = inflationary_semantics(tc, db)
        bounds.add(n, r.rounds, n ** 2, r.rounds <= n ** 2, r.rounds <= n ** 2)
    return [conserv, totality, bounds]


@register(
    "e8",
    "E8: Proposition 2 — the distance query: inflationary vs stratified, "
    "and FO-inexpressibility evidence",
    "The same six rules compute the distance query inflationarily but "
    "TC x not-TC* stratified; the distance query is non-monotone (not "
    "DATALOG) and reduces to TC (not FO, via EF games).",
)
def run_e8() -> List[Table]:
    program = q.distance_program()
    semantics = Table(
        "inflationary vs stratified on the same program",
        ["database", "inflationary = distance query", "stratified = TC x notTC",
         "semantics differ", "ok"],
    )
    for name, graph in [
        ("L_4", gg.path(4)),
        ("L_5", gg.path(5)),
        ("two chains", gg.path(3).union(
            gg.random_dag(3, 0.0, seed=0)  # isolated extra nodes
        )),
        ("random DAG n=5", gg.random_dag(5, 0.4, seed=2)),
        ("C_4", gg.cycle(4)),
    ]:
        db = graph_to_database(graph)
        infl = inflationary_semantics(program, db).carrier_value.tuples
        strat = stratified_semantics(program, db).relation("S3").tuples
        expected_infl = distance_query(graph)
        tc = transitive_closure(graph)
        not_tc = {
            (a, b)
            for a in graph.nodes
            for b in graph.nodes
            if (a, b) not in tc
        }
        expected_strat = frozenset(
            (x, y, xs, ys) for (x, y) in tc for (xs, ys) in not_tc
        )
        ok = infl == expected_infl and strat == expected_strat
        semantics.add(
            name, infl == expected_infl, strat == expected_strat,
            infl != strat, ok,
        )

    mono = Table(
        "non-monotonicity of the distance query (hence not DATALOG)",
        ["graph G", "superset G'", "tuple", "in D(G)", "in D(G')", "monotonicity violated", "ok"],
    )
    small = gg.path(3)  # 1 -> 2 -> 3
    from ..graphs.digraph import Digraph as _Digraph

    bigger = _Digraph(small.nodes, set(small.edges) | {(3, 1)})
    # dist(1,3)=2 <= dist(3,1)=inf in G; adding edge (3,1) makes
    # dist(3,1)=1 < 2, so the tuple falls OUT of the answer on more edges.
    witness = (1, 3, 3, 1)
    in_small = witness in distance_query(small)
    in_big = witness in distance_query(bigger)
    mono.add("L_3", "L_3 + edge(3,1)", witness, in_small, in_big,
             in_small and not in_big, in_small and not in_big)

    ef = Table(
        "EF games: connectivity-style properties escape fixed quantifier rank",
        ["rank r", "A", "B", "rank-r equivalent", "TC facts differ", "ok"],
    )
    for rank, la, lb in ((1, 2, 3), (2, 5, 6), (2, 6, 8)):
        a = graph_to_database(gg.path(la))
        b = graph_to_database(gg.path(lb))
        eq = ef_equivalent(a, b, rank)
        differ = (1, la) in transitive_closure(gg.path(la)) and (
            (1, lb) in transitive_closure(gg.path(lb))
        )
        # TC differs as a *query*: pair (1, la) reaches in A; in B the pair
        # (1, la) exists too but (la, lb) type facts differ — we record
        # equivalence at rank r while the structures have different sizes,
        # the standard EF evidence step.
        ef.add(rank, "L_%d" % la, "L_%d" % lb, eq, la != lb, eq)
    ef.note(
        "rank-r equivalent path pairs of different lengths witness that no "
        "FO sentence of that rank counts path length — the standard route "
        "to TC not being first-order"
    )
    return [semantics, mono, ef]


@register(
    "e9",
    "E9: Section 5 — the expressiveness hierarchy, executable witnesses",
    "DATALOG < Stratified < Inflationary DATALOG; Proposition 1: "
    "Inflationary DATALOG = existential FO+IFP (round-trip translations).",
)
def run_e9() -> List[Table]:
    prop1 = Table(
        "Proposition 1 round trips: program <-> existential FO+IFP",
        ["program", "database", "engine = simultaneous IFP", "ok"],
    )
    programs = [
        ("TC", q.transitive_closure_program()),
        ("pi_1", q.pi1()),
        ("distance", q.distance_program()),
        ("win-move", q.win_move_program()),
    ]
    dbs = [
        ("L_4", graph_to_database(gg.path(4))),
        ("C_3", graph_to_database(gg.cycle(3))),
        ("random n=4", graph_to_database(gg.random_digraph(4, 0.4, seed=9))),
    ]
    for pname, program in programs:
        defs = program_to_ifp_definitions(program)
        for dname, db in dbs:
            expect = inflationary_semantics(program, db).idb
            got = simultaneous_ifp(db, defs)
            ok = idb_equal(expect, got)
            prop1.add(pname, dname, ok, ok)

    back = Table(
        "existential FO operator -> DATALOG¬ program (other direction)",
        ["operator", "database", "agree", "ok"],
    )
    pi1 = q.pi1()
    xvars = (Variable("_x0"),)
    formula = theta_formula(pi1, "T", xvars)
    recompiled = existential_fo_to_program(formula, "T", xvars)
    for dname, db in dbs:
        a = inflationary_semantics(pi1, db).carrier_value.tuples
        b = inflationary_semantics(recompiled, db).carrier_value.tuples
        back.add("Theta_pi1", dname, a == b, a == b)

    strict = Table(
        "strict inclusions (executable witnesses)",
        ["witness", "holds", "ok"],
    )
    # Relational calculus / DATALOG separation: not-TC is non-monotone.
    tcq_small = transitive_closure(gg.path(3))
    from ..graphs.digraph import Digraph as _Digraph

    bigger = _Digraph(gg.path(3).nodes, set(gg.path(3).edges) | {(3, 1)})
    tcq_big = transitive_closure(bigger)
    not_tc_shrinks = ((3, 2) not in tcq_small) and ((3, 2) in tcq_big)
    strict.add(
        "not-TC (stratified-expressible) is non-monotone => not DATALOG",
        not_tc_shrinks, not_tc_shrinks,
    )
    # Stratified != inflationary on Proposition 2's program.
    db = graph_to_database(gg.path(4))
    dist_prog = q.distance_program()
    differ = (
        inflationary_semantics(dist_prog, db).carrier_value.tuples
        != stratified_semantics(dist_prog, db).relation("S3").tuples
    )
    strict.add(
        "Prop 2 program: inflationary and stratified answers differ on L_4",
        differ, differ,
    )
    # Inflationary handles programs stratified semantics rejects.
    from ..core.semantics import is_stratifiable

    toggle_ok = not is_stratifiable(q.toggle_program())
    strict.add(
        "T(x):-!T(y) is unstratifiable yet has inflationary meaning",
        toggle_ok, toggle_ok,
    )
    return [prop1, back, strict]
