"""Experiment harness: declarative tables with expected-vs-measured rows.

The paper is a theory paper — its "tables" are worked examples and theorem
statements.  Each experiment here regenerates one of those claims as an
executable table: columns of measured values next to the value the paper
predicts, plus an ``ok`` column.  EXPERIMENTS.md is generated from these
tables, and the pytest benchmarks call the same runners.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence


@dataclass
class Table:
    """A titled table of rows; all cells are stringified on render."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, *cells: Any) -> None:
        """Append a row (must match the column count)."""
        if len(cells) != len(self.columns):
            raise ValueError(
                "row has %d cells, table %r has %d columns"
                % (len(cells), self.title, len(self.columns))
            )
        self.rows.append(cells)

    def note(self, text: str) -> None:
        """Attach a free-text note rendered under the table."""
        self.notes.append(text)

    def all_ok(self) -> bool:
        """True when every cell of every ``ok``-ish column is truthy.

        Columns named ``ok`` (case-insensitive) are treated as checks.
        """
        check_idx = [
            i for i, c in enumerate(self.columns) if c.strip().lower() == "ok"
        ]
        return all(bool(row[i]) for row in self.rows for i in check_idx)

    def render(self) -> str:
        """Fixed-width text rendering."""
        header = [str(c) for c in self.columns]
        body = [[_cell(v) for v in row] for row in self.rows]
        widths = [len(h) for h in header]
        for row in body:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
        for note in self.notes:
            lines.append("note: %s" % note)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable view (``python -m repro.bench --json``).

        Cells that are not JSON scalars are stringified, so the output is
        loadable anywhere; floats (the timing cells the regression gate
        compares) survive as numbers.
        """

        def scalar(value: Any) -> Any:
            if isinstance(value, (bool, int, float, str)) or value is None:
                return value
            return str(value)

        return {
            "title": self.title,
            "columns": [str(c) for c in self.columns],
            "rows": [[scalar(v) for v in row] for row in self.rows],
            "notes": list(self.notes),
            "all_ok": self.all_ok(),
        }

    def render_markdown(self) -> str:
        """GitHub-flavoured markdown rendering (for EXPERIMENTS.md)."""
        lines = ["### %s" % self.title, ""]
        lines.append("| " + " | ".join(str(c) for c in self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(_cell(v) for v in row) + " |")
        for note in self.notes:
            lines.append("")
            lines.append("*%s*" % note)
        return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return "%.3g" % value
    return str(value)


@dataclass(frozen=True)
class Experiment:
    """A registered experiment: id, paper claim, and a runner."""

    ident: str
    title: str
    claim: str
    run: Callable[[], List[Table]]


_REGISTRY: Dict[str, Experiment] = {}


def register(ident: str, title: str, claim: str):
    """Decorator registering an experiment runner under an id (e.g. e1)."""

    def wrap(fn: Callable[[], List[Table]]) -> Callable[[], List[Table]]:
        if ident in _REGISTRY:
            raise ValueError("experiment %r already registered" % ident)
        _REGISTRY[ident] = Experiment(ident=ident, title=title, claim=claim, run=fn)
        return fn

    return wrap


def experiment(ident: str) -> Experiment:
    """Look up a registered experiment."""
    try:
        return _REGISTRY[ident]
    except KeyError:
        raise KeyError(
            "unknown experiment %r; known: %s" % (ident, sorted(_REGISTRY))
        ) from None


def all_experiments() -> List[Experiment]:
    """All experiments in id order."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]
