"""KERNEL: interned columnar primitives vs. per-tuple evaluation.

The PR 7 kernel claims the core relational operations — equi-join,
anti-join, complement, and the Yannakakis semi-join filter — get a
step-change from running over dense int codes instead of Python tuples.
This experiment measures exactly those four primitives head to head:

* **legacy**: the per-tuple shapes the row executor uses — a hash index
  probe for joins, key-set membership for anti/semi-joins, a set
  difference over the materialised universe product for complements —
  over ordinary Python tuples of strings.
* **kernel**: the same operations over :class:`~repro.db.kernel
  .RelationCodes` under a shared :class:`~repro.db.kernel.SymbolTable`,
  once per usable backend (the portable ``array('q')`` baseline and,
  when importable, the numpy fast path the executor actually ships).

Every row cross-checks the two answers tuple-for-tuple (the ``ok``
column), so the speedup figures can't come from computing a different
relation.  Encoding happens once outside the timed region — mirroring
the engine, where relations live in code space across fixpoint rounds
and interning cost amortises over the whole run.

The ``kernel s`` column is a gated timing column: the regression check
(``python -m repro.bench check``) compares it against the committed
``BENCH_*.json`` baseline, so a backend-selection or kernel-algebra
regression trips CI even before it shows up in the end-to-end tables.
"""

from __future__ import annotations

import random
import time
from itertools import product
from typing import Callable, Dict, List, Tuple

from ..db import kernel
from ..db.kernel import KeyMembership, RelationCodes, SymbolTable, as_codes
from .harness import Table, register

# Workload shape: R and S share their join key in column 1, over more
# distinct keys than the bitset limit exercises trivially but few enough
# that joins fan out (~2 matches per probe on average).
_N_R = 20_000
_N_S = 2_000
_N_KEYS = 1_000
# The complement runs over its own small universe — the product grows
# quadratically, and the point is range arithmetic vs. materialising it.
_N_COMPL_UNIVERSE = 140
_N_COMPL_ROWS = 5_000
_REPEATS = 3


def _dataset():
    """Deterministic relations: R(a, k) with 20k rows, S(c, k) with 2k."""
    rng = random.Random(20260808)
    keys = ["k%04d" % i for i in range(_N_KEYS)]
    r_rows = [
        ("a%05d" % i, keys[rng.randrange(_N_KEYS)]) for i in range(_N_R)
    ]
    s_rows = [
        ("c%05d" % i, keys[rng.randrange(_N_KEYS)]) for i in range(_N_S)
    ]
    universe = ["u%03d" % i for i in range(_N_COMPL_UNIVERSE)]
    compl_rows = set()
    while len(compl_rows) < _N_COMPL_ROWS:
        compl_rows.add(
            (universe[rng.randrange(len(universe))],
             universe[rng.randrange(len(universe))])
        )
    return r_rows, s_rows, universe, sorted(compl_rows)


def _best_of(fn: Callable[[], object], repeats: int = _REPEATS):
    """Run ``fn`` ``repeats`` times; return (best seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


# ----------------------------------------------------------------------
# Legacy: per-tuple operations, the row executor's shapes
# ----------------------------------------------------------------------


def _legacy_join(r_rows, s_rows):
    index: Dict[str, List[Tuple[str, str]]] = {}
    for s in s_rows:
        index.setdefault(s[1], []).append(s)
    out = []
    for r in r_rows:
        for s in index.get(r[1], ()):
            out.append((r, s))
    return out


def _legacy_antijoin(r_rows, s_rows):
    keys = {s[1] for s in s_rows}
    return [r for r in r_rows if r[1] not in keys]


def _legacy_semijoin(r_rows, s_rows):
    keys = {s[1] for s in s_rows}
    return [r for r in r_rows if r[1] in keys]


def _legacy_complement(universe, rows):
    return set(product(universe, repeat=2)) - set(rows)


# ----------------------------------------------------------------------
# The experiment
# ----------------------------------------------------------------------


@register(
    "kernel",
    "KERNEL: interned columnar primitives vs. per-tuple evaluation",
    "join, anti-join, complement, and semi-join filtering over dense int "
    "codes match the per-tuple answers exactly while running on flat "
    "int64 columns (PR 7 kernel claim)",
)
def run_kernel() -> List[Table]:
    r_rows, s_rows, universe, compl_rows = _dataset()

    legacy: Dict[str, Tuple[float, object]] = {
        "join": _best_of(lambda: _legacy_join(r_rows, s_rows)),
        "anti-join": _best_of(lambda: _legacy_antijoin(r_rows, s_rows)),
        "semi-join filter": _best_of(lambda: _legacy_semijoin(r_rows, s_rows)),
        "complement": _best_of(lambda: _legacy_complement(universe, compl_rows)),
    }

    table = Table(
        title="columnar kernel primitives (|R|=%d, |S|=%d, keys=%d)"
        % (_N_R, _N_S, _N_KEYS),
        columns=["op/backend", "rows out", "legacy s", "kernel s", "speedup", "ok"],
    )

    previous = kernel.backend()
    try:
        for name in kernel.available_backends():
            kernel.set_backend(name)
            # Encode under this backend (storage format differs); the
            # one symbol table spans both relations, as in a Database.
            sym = SymbolTable()
            rc = RelationCodes.encode(sym, 2, r_rows)
            sc = RelationCodes.encode(sym, 2, s_rows)
            csym = SymbolTable()
            cc = RelationCodes.encode(csym, 2, compl_rows)
            cuni = frozenset(universe)

            t, (li, ri) = _best_of(lambda: kernel.join_codes(rc, sc, [(1, 1)]))
            got = {
                (r_rows[i], s_rows[j])
                for i, j in zip(li.tolist(), ri.tolist())
            }
            _row(table, "join", name, legacy["join"], t, len(li),
                 got == set(legacy["join"][1]))

            t, codes = _best_of(lambda: kernel.antijoin_codes(rc, (1,), sc))
            got = RelationCodes(sym, 2, codes).decode()
            _row(table, "anti-join", name, legacy["anti-join"], t, len(got),
                 got == frozenset(legacy["anti-join"][1]))

            allowed = KeyMembership(as_codes(sc.key_codes((1,))))
            t, codes = _best_of(
                lambda: kernel.semijoin_filter(rc, (1,), allowed)
            )
            got = RelationCodes(sym, 2, codes).decode()
            _row(table, "semi-join filter", name,
                 legacy["semi-join filter"], t, len(got),
                 got == frozenset(legacy["semi-join filter"][1]))

            t, codes = _best_of(
                lambda: kernel.complement_codes(csym, cuni, cc)
            )
            got = RelationCodes(csym, 2, codes).decode()
            _row(table, "complement", name, legacy["complement"], t, len(got),
                 got == frozenset(legacy["complement"][1]))
    finally:
        kernel.set_backend(previous)

    table.note(
        "legacy = per-tuple hash index / key set / universe-product set "
        "over Python string tuples, measured once (backend-independent); "
        "best of %d runs per cell; encoding is outside the timed region "
        "(relations live in code space across fixpoint rounds)." % _REPEATS
    )
    table.note(
        "the array backend is the no-dependency portability baseline "
        "(Python loops over array('q') columns) — the engine selects "
        "the numpy fast path whenever numpy imports; active backend "
        "for this run: %s" % previous
    )
    return [table]


def _row(table, op, backend_name, legacy_entry, kernel_s, n_out, ok):
    legacy_s = legacy_entry[0]
    table.add(
        "%s [%s]" % (op, backend_name),
        n_out,
        legacy_s,
        kernel_s,
        (legacy_s / kernel_s) if kernel_s > 0 else float("inf"),
        bool(ok),
    )
