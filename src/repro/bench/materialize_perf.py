"""The materialized-view update-latency scenario (shared measurement).

One measurement function serves two consumers: the ``perf`` experiment's
materialize table (``python -m repro.bench perf``, snapshotted into the
committed baseline and gated by ``repro.bench check``) and the opt-in
``benchmarks/bench_materialize.py``, which runs larger sizes and asserts
the headline claim — single-tuple update latency beating from-scratch
stratified recomputation on the E8 distance program.

The workload is the E8 distance program (Proposition 2) on the path
``L_n``, under two single-tuple updates:

* **tail** — delete and re-insert the last edge ``(n-1, n)``: the
  natural append/retract at the end of a growing log.  Deletion is the
  hard direction (DRed over-delete + rederive on the TC strata, then a
  counted flip of every ``!S2`` literal the change touches).
* **shortcut** — insert and delete the chord ``(1, n)``: an update whose
  transitive closure is already known, isolating the counting layer.

From-scratch times evaluate ``stratified_semantics`` on a freshly built
database (fresh relation objects, so no cache asymmetry with the view's
long-lived ones).
"""

from __future__ import annotations

import statistics
import time
from typing import Dict, List

from ..core.semantics import stratified_semantics
from ..graphs import generators as gg
from ..graphs.encode import graph_to_database
from ..materialize import Delta, MaterializedView
from ..queries import distance_program
from .harness import Table


def measure_update_scenario(n: int, rounds: int = 2) -> Dict[str, float]:
    """Update-latency measurements for the distance program on ``L_n``.

    Returns mean seconds for the tail and shortcut single-tuple updates,
    the from-scratch stratified recompute, the view build, and an
    ``equal`` flag asserting the maintained result matches a final
    from-scratch evaluation.
    """
    program = distance_program()
    start = time.perf_counter()
    view = MaterializedView(program, graph_to_database(gg.path(n)))
    build_s = time.perf_counter() - start

    def timed_updates(delta: Delta, undo: Delta) -> List[float]:
        times = []
        for _ in range(rounds):
            start = time.perf_counter()
            view.apply(delta)
            times.append(time.perf_counter() - start)
            start = time.perf_counter()
            view.apply(undo)
            times.append(time.perf_counter() - start)
        return times

    tail = (n - 1, n)
    tail_s = statistics.mean(
        timed_updates(Delta.delete("E", tail), Delta.insert("E", tail))
    )
    shortcut = (1, n)
    shortcut_s = statistics.mean(
        timed_updates(Delta.insert("E", shortcut), Delta.delete("E", shortcut))
    )

    scratch_times = []
    for _ in range(rounds):
        fresh = graph_to_database(gg.path(n))
        start = time.perf_counter()
        reference = stratified_semantics(program, fresh)
        scratch_times.append(time.perf_counter() - start)
    scratch_s = statistics.mean(scratch_times)

    return {
        "n": n,
        "build_s": build_s,
        "tail_s": tail_s,
        "shortcut_s": shortcut_s,
        "scratch_s": scratch_s,
        "equal": view.result.idb == reference.idb,
    }


def materialize_table(sizes=(16, 24)) -> Table:
    """The perf experiment's materialize table (one row per update kind)."""
    table = Table(
        "materialized view: single-tuple EDB update vs from-scratch stratified",
        ["view/update", "update s", "scratch s", "speedup", "equal", "ok"],
    )
    for n in sizes:
        m = measure_update_scenario(n)
        for kind, seconds in (("tail", m["tail_s"]), ("shortcut", m["shortcut_s"])):
            speedup = m["scratch_s"] / seconds if seconds > 0 else float("inf")
            table.add(
                "distance (L_%d) %s" % (n, kind),
                seconds,
                m["scratch_s"],
                "%.1fx" % speedup,
                m["equal"],
                m["equal"],
            )
    table.note(
        "update s = mean latency of MaterializedView.apply on one EDB "
        "tuple (counting + DRed); scratch s = stratified_semantics on a "
        "fresh database.  Speedups are informational here; the >=5x "
        "headline is asserted at larger sizes in benchmarks/"
        "bench_materialize.py, and the regression gate compares update s "
        "against the committed baseline."
    )
    return table
