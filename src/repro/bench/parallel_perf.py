"""Scaling table for the sharded parallel executor.

``python -m repro.bench parallel`` times the sharded fixpoints against
the sequential engines on the two headline workloads — the win-move
game on the ``L_2000`` path under well-founded semantics, and the E8
distance program under inflationary semantics — at 1, 2, and 4 worker
processes.  Every row's ``ok`` asserts result equality against the
sequential engine (the executor's defining property); the 4-worker row
additionally requires a >=2x speedup, *waived with a table note* when
the machine has fewer than 4 cores — a 1-core box time-slices the
replicas and measures only the exchange overhead, not the scaling.

The row set is fixed at {1, 2, 4} workers on every machine, never
capped to ``cpu_count``: the regression gate matches rows by name
across the committed baseline and the CI rerun, and a machine-shaped
table would make the gate compare different experiments.

``parallel s`` is the timing cell the CI regression gate
(``python -m repro.bench check``) compares against the committed
``BENCH_*.json`` baseline.
"""

from __future__ import annotations

import os
import time
from typing import Callable, List, Tuple

from ..core.semantics.inflationary import inflationary_semantics
from ..core.semantics.wellfounded import well_founded_semantics
from ..db.database import Database
from ..db.relation import Relation
from ..queries.library import distance_program, win_move_program
from .harness import Table, register

_WORKERS = (1, 2, 4)
_WIN_N = 2000
_DISTANCE_N = 16


def _path_db(rel: str, n: int) -> Database:
    return Database(
        frozenset(range(1, n + 1)),
        [Relation(rel, 2, {(i, i + 1) for i in range(1, n)})],
    )


def _win_workload() -> Tuple[str, Callable[[int], object]]:
    program = win_move_program()
    db = _path_db("E", _WIN_N)

    def run(workers: int):
        result = well_founded_semantics(program, db, parallel=workers)
        return (result.true, result.undefined)

    return "win-move L_%d (wellfounded)" % _WIN_N, run


def _distance_workload() -> Tuple[str, Callable[[int], object]]:
    program = distance_program()
    db = _path_db("E", _DISTANCE_N)

    def run(workers: int):
        result = inflationary_semantics(program, db, parallel=workers)
        return {p: rel.tuples for p, rel in result.idb.items()}

    return "distance L_%d (inflationary)" % _DISTANCE_N, run


@register(
    "parallel",
    "PARALLEL: sharded fixpoints across worker processes",
    "sharded evaluation returns exactly the sequential engines' models "
    "on the headline workloads while splitting the per-round rule work "
    "across a process pool (PR 10 executor claim)",
)
def run_parallel() -> List[Table]:
    from ..parallel.pool import fork_available, shutdown_pools

    cores = os.cpu_count() or 1
    table = Table(
        "sharded vs sequential fixpoints",
        ["workload / workers", "parallel s", "sequential s", "speedup", "ok"],
    )
    table.note("machine has %d core(s)" % cores)
    if not fork_available():
        table.note("fork unavailable: parallel runs fall back to sequential")
    if cores < 4:
        table.note(
            "speedup requirement waived: >=2x at 4 workers is only "
            "asserted on machines with >=4 cores; on %d core(s) the "
            "replicas time-slice and the cells measure exchange "
            "overhead, not scaling" % cores
        )

    for name, run in (_win_workload(), _distance_workload()):
        started = time.perf_counter()
        expected = run(0)
        sequential_s = time.perf_counter() - started
        for workers in _WORKERS:
            started = time.perf_counter()
            got = run(workers)
            parallel_s = time.perf_counter() - started
            speedup = sequential_s / parallel_s if parallel_s else 0.0
            ok = got == expected
            if workers == 4 and cores >= 4 and fork_available():
                ok = ok and speedup >= 2.0
            table.add(
                "%s / %d" % (name, workers),
                parallel_s,
                sequential_s,
                "%.2fx" % speedup,
                ok,
            )
    shutdown_pools()
    return [table]
