"""Perf experiment: the planner's compiled path vs. the legacy evaluator.

Registered in the same harness as E1–E9 so ``python -m repro.bench perf``
prints a table of wall-clock times per engine.  The ``ok`` column asserts
what actually matters for correctness — compiled and legacy produce the
same valuations — while the timing columns document the win; speedups
vary by machine, so they are reported, not asserted.
"""

from __future__ import annotations

import time
from typing import Callable, List, Tuple

from ..core.fixpoint import idb_equal, idb_union
from ..core.operator import IDBMap, empty_idb, theta_legacy
from ..core.semantics import (
    inflationary_semantics,
    naive_least_fixpoint,
    seminaive_least_fixpoint,
)
from ..db.database import Database
from ..core.program import Program
from ..graphs import generators as gg
from ..graphs.encode import graph_to_database
from ..queries import distance_program, pi1, transitive_closure_program
from .harness import Table, register


def _legacy_least_fixpoint(program: Program, db: Database) -> IDBMap:
    current = empty_idb(program)
    while True:
        nxt = theta_legacy(program, db, current)
        if idb_equal(nxt, current):
            return current
        current = nxt


def _legacy_inflationary(program: Program, db: Database) -> IDBMap:
    current = empty_idb(program)
    while True:
        nxt = idb_union([current, theta_legacy(program, db, current)])
        if idb_equal(nxt, current):
            return current
        current = nxt


def _timed(fn: Callable[[], IDBMap]) -> Tuple[IDBMap, float]:
    start = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - start


@register(
    "perf",
    "PERF: compiled rule plans vs. legacy per-round evaluation",
    "The planner (compile once per program+db, cache indexes on relations) "
    "computes exactly the valuations of the legacy evaluator, faster.",
)
def run_perf() -> List[Table]:
    n = 24
    path_db = graph_to_database(gg.path(n))
    # The distance program's unsafe rules complete variables over the whole
    # universe — work the planner cannot skip — so it runs on a smaller
    # instance to keep the experiment quick.
    small_db = graph_to_database(gg.path(8))

    cases = [
        (
            "naive/TC",
            lambda: naive_least_fixpoint(transitive_closure_program(), path_db).idb,
            lambda: _legacy_least_fixpoint(transitive_closure_program(), path_db),
        ),
        (
            "seminaive/TC",
            lambda: seminaive_least_fixpoint(
                transitive_closure_program(), path_db
            ).idb,
            lambda: _legacy_least_fixpoint(transitive_closure_program(), path_db),
        ),
        (
            "inflationary/pi_1",
            lambda: inflationary_semantics(pi1(), path_db).idb,
            lambda: _legacy_inflationary(pi1(), path_db),
        ),
        (
            "inflationary/distance (L_8)",
            lambda: inflationary_semantics(distance_program(), small_db).idb,
            lambda: _legacy_inflationary(distance_program(), small_db),
        ),
    ]

    table = Table(
        "compiled vs legacy on L_%d (unless noted)" % n,
        ["engine/program", "compiled s", "legacy s", "speedup", "equal", "ok"],
    )
    for name, compiled_fn, legacy_fn in cases:
        compiled, compiled_s = _timed(compiled_fn)
        legacy, legacy_s = _timed(legacy_fn)
        equal = idb_equal(compiled, legacy)
        speedup = legacy_s / compiled_s if compiled_s > 0 else float("inf")
        table.add(name, compiled_s, legacy_s, "%.1fx" % speedup, equal, equal)
    table.note(
        "timings are informational (machine-dependent); the ok column "
        "asserts result equality only"
    )
    return [table]
