"""Perf experiment: compiled batch execution vs. the older pipelines.

Registered in the same harness as E1–E9 so ``python -m repro.bench perf``
prints three tables of wall-clock times: the shipped path (compiled
plans, set-at-a-time batch executor) against the seed's legacy
evaluator; against the PR-1 tuple-at-a-time dict executor — where the
completion-bound distance program shows the complement-representation
win; and the materialized-view scenario — single-tuple EDB update
latency through ``MaterializedView`` against from-scratch stratified
recomputation.  The ``ok`` columns assert what actually matters for
correctness — all paths produce the same valuations — while the timing
columns document the wins; speedups vary by machine, so they are
reported, not asserted.  ``--json`` emits the same tables as data;
``BENCH_PR3.json`` is a committed snapshot the CI regression gate
compares against (``compiled s``, ``batch s`` and ``update s`` cells).
"""

from __future__ import annotations

import time
from typing import Callable, List, Tuple

from ..core.fixpoint import idb_equal, idb_union
from ..core.operator import IDBMap, as_interpretation, empty_idb, theta_legacy
from ..core.planning import (
    PLAN_STORE,
    PlanStore,
    execute_plan,
    execute_plan_rows_legacy,
)
from ..core.semantics import (
    inflationary_semantics,
    naive_least_fixpoint,
    seminaive_least_fixpoint,
    well_founded_semantics,
)
from ..db.database import Database
from ..db.relation import Relation
from ..core.parser import parse_program
from ..core.program import Program
from ..graphs import generators as gg
from ..graphs.encode import graph_to_database
from ..obs import (
    RECORDER,
    TRACER,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    walk,
)
from ..queries import (
    distance_program,
    pi1,
    transitive_closure_program,
    win_move_program,
)
from .harness import Table, register
from .materialize_perf import materialize_table
from .wellfounded_perf import wellfounded_table


def _legacy_least_fixpoint(program: Program, db: Database) -> IDBMap:
    current = empty_idb(program)
    while True:
        nxt = theta_legacy(program, db, current)
        if idb_equal(nxt, current):
            return current
        current = nxt


def _legacy_inflationary(program: Program, db: Database) -> IDBMap:
    current = empty_idb(program)
    while True:
        nxt = idb_union([current, theta_legacy(program, db, current)])
        if idb_equal(nxt, current):
            return current
        current = nxt


def _timed(fn: Callable[[], IDBMap]) -> Tuple[IDBMap, float]:
    """Run ``fn`` several times post-warm, GC paused; report the minimum.

    The gated cells are millisecond-scale: a single shot measures the
    scheduler (and, on virtualised CI boxes, steal time) as much as the
    code — observed spread is 2-3x on an otherwise idle machine.  The
    protocol here is ``timeit``'s: garbage collection paused around the
    timed region and the minimum of several runs reported, which
    estimates the code's intrinsic cost.  Both cells of every compared
    row go through the same protocol, so the speedup columns compare
    like with like.
    """
    import gc

    best = float("inf")
    out = None
    enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(7):
            start = time.perf_counter()
            out = fn()
            elapsed = time.perf_counter() - start
            if elapsed < best:
                best = elapsed
    finally:
        if enabled:
            gc.enable()
    return out, best


def inflationary_with_executor(
    program: Program, db: Database, executor
) -> IDBMap:
    """Inflationary iteration driving each compiled plan with ``executor``.

    Used to pit the batch executor against the PR-1 dict executor on
    *identical plans*, so the measured difference is purely the
    execution model (set-at-a-time + complement vs. dict-at-a-time).
    """
    plan = PLAN_STORE.program_plan(program, db)
    if executor is execute_plan:
        out = _inflationary_codes(program, db, plan)
        if out is not None:
            return out
    current = empty_idb(program)
    while True:
        interp = as_interpretation(program, db, current)
        derived = {p: set() for p in program.idb_predicates}
        for rule_plan in plan.plans:
            derived[rule_plan.head_pred] |= executor(rule_plan, interp)
        nxt = {
            p: current[p].union(Relation(p, program.arity(p), tuples))
            for p, tuples in derived.items()
        }
        if idb_equal(nxt, current):
            return current
        current = nxt


def _inflationary_codes(program: Program, db: Database, plan) -> IDBMap:
    """Codes-to-codes inflationary loop; ``None`` bails to the row loop.

    The whole fixpoint stays interned: every round compares sorted
    unique head-code vectors and feeds code-backed relations
    (:func:`~repro.core.planning.colexec.relation_from_codes`) into the
    next interpretation, so no tuple is decoded or re-encoded between
    rounds.  Bails (``None``) when any plan declines the columnar path
    or the symbol table widens mid-run — the row loop recomputes from
    scratch with identical results.
    """
    from ..core.planning import colexec

    try:
        import numpy as np
    except ImportError:
        return None
    if colexec.mode() == "never":
        return None
    from ..core.planning.statistics import DEFAULT_STATISTICS as stats

    sym = db.symbols()
    gen = sym.generation
    preds = tuple(program.idb_predicates)
    empty = colexec.empty_codes_array()
    cur_codes = {p: empty for p in preds}
    current = empty_idb(program)
    while True:
        interp = as_interpretation(program, db, current)
        derived = {}
        for rule_plan in plan.plans:
            out = colexec.execute_plan_codes(rule_plan, interp, stats=stats)
            if out is None:
                return None
            prev = derived.get(rule_plan.head_pred)
            derived[rule_plan.head_pred] = (
                out[1] if prev is None else colexec.merge_codes(prev, out[1])
            )
        if sym.generation != gen:
            return None
        changed = False
        nxt = {}
        nxt_codes = {}
        for p in preds:
            prev = cur_codes[p]
            merged = colexec.merge_codes(prev, derived.get(p, empty))
            if merged is prev or (
                len(merged) == len(prev) and np.array_equal(merged, prev)
            ):
                # Converged predicate: keep the previous relation, whose
                # cached column views and sorted runs stay warm.
                nxt_codes[p] = cur_codes[p]
                nxt[p] = current[p]
            else:
                changed = True
                nxt_codes[p] = merged
                nxt[p] = colexec.relation_from_codes(
                    p, program.arity(p), sym, merged
                )
        if not changed:
            return current
        cur_codes = nxt_codes
        current = nxt


def _hub_workload(n_big: int = 4000, hubs: int = 64, chain: int = 8):
    """A join-heavy instance where static IDB estimates order joins badly.

    ``Big`` is a large EDB relation fanning into ``hubs`` hub values;
    ``Seed`` chains ``chain`` fresh values off hub 0, so the recursive
    ``SEL`` closure stays tiny and touches exactly one hub.  The payoff
    rule joins them:

        Q(X, Y) :- Big(X, Z), SEL(Z, Y).

    A static plan estimates the unseen IDB ``SEL`` as "large", scans all
    of ``Big`` first and probes ``SEL`` per row — all but one hub's rows
    die, every round.  With observed sizes the planner starts from
    ``SEL`` and probes ``Big``'s index; the semi-join pass reaches the
    same shape from the other side by reducing ``Big`` to the tuples
    whose hub appears in ``SEL`` before any row is materialised.
    """
    program = parse_program(
        """
        SEL(X, Y) :- Seed(X, Y).
        SEL(X, Y) :- Seed(X, Z), SEL(Z, Y).
        Q(X, Y) :- Big(X, Z), SEL(Z, Y).
        """,
        carrier="Q",
    )
    big = [(hubs + i, i % hubs) for i in range(n_big)]
    fresh = hubs + n_big  # chain values disjoint from Big's columns
    seed = [(0, fresh)] + [(fresh + j, fresh + j + 1) for j in range(chain - 1)]
    universe = set(range(fresh + chain + 1))
    db = Database(
        universe,
        [Relation("Big", 2, big), Relation("Seed", 2, seed)],
        check=False,
    )
    return program, db


def _lfp_static(
    program: Program, db: Database, semijoin: bool, store: "PlanStore" = None
) -> IDBMap:
    """Naive least-fixpoint over statically compiled plans (private store)."""
    store = store if store is not None else PlanStore()
    plan = store.program_plan(program, db)
    current = empty_idb(program)
    while True:
        interp = as_interpretation(program, db, current)
        derived = {p: set() for p in program.idb_predicates}
        for rule_plan in plan.plans:
            derived[rule_plan.head_pred] |= execute_plan(
                rule_plan, interp, stats=None, semijoin=semijoin
            )
        nxt = {
            p: Relation(p, program.arity(p), tuples)
            for p, tuples in derived.items()
        }
        if idb_equal(nxt, current):
            return current
        current = nxt


def _lfp_adaptive(program: Program, db: Database, store: PlanStore) -> IDBMap:
    """Naive least-fixpoint with per-round adaptive re-planning."""
    plan = store.adaptive_program_plan(program, db)
    out = _lfp_adaptive_codes(program, db, plan)
    if out is not None:
        return out
    current = empty_idb(program)
    while True:
        interp = as_interpretation(program, db, current)
        derived = plan.consequences(interp)
        nxt = {
            p: Relation(p, program.arity(p), tuples)
            for p, tuples in derived.items()
        }
        if idb_equal(nxt, current):
            return current
        current = nxt


def _lfp_adaptive_codes(program: Program, db: Database, plan) -> IDBMap:
    """Codes-to-codes naive lfp with adaptive refresh; ``None`` bails.

    Mirrors :func:`_lfp_adaptive`'s row loop through
    :meth:`~repro.core.planning.adaptive.AdaptiveProgramPlan
    .consequences_codes`: the round-to-round IDB state is sorted unique
    head-code vectors, convergence is vector equality, and the refresh's
    observed sizes come from code-backed relations (``len`` on the
    vectors).  The same statistics flow into the store's feedback loop
    as on the row path.
    """
    from ..core.planning import colexec

    try:
        import numpy as np
    except ImportError:
        return None
    if colexec.mode() == "never":
        return None
    sym = db.symbols()
    gen = sym.generation
    preds = tuple(program.idb_predicates)
    empty = colexec.empty_codes_array()
    cur_codes = {p: empty for p in preds}
    current = empty_idb(program)
    while True:
        interp = as_interpretation(program, db, current)
        derived = plan.consequences_codes(interp)
        if derived is None or sym.generation != gen:
            return None
        changed = False
        nxt = {}
        for p in preds:
            d, c = derived[p], cur_codes[p]
            # A growing IDB fails the length check for free; the full
            # vector compare only runs on the confirmation round.
            if len(d) == len(c) and np.array_equal(d, c):
                nxt[p] = current[p]
            else:
                changed = True
                nxt[p] = colexec.relation_from_codes(
                    p, program.arity(p), sym, derived[p]
                )
        if not changed:
            return current
        cur_codes = derived
        current = nxt


def adaptive_tables() -> List[Table]:
    """Adaptive re-planning + semi-join reduction vs static plans.

    The first table times the shipped execution path (statistics-driven
    re-planning *and* the Yannakakis semi-join pass) against fully
    static plans with the reduction disabled, on the hub workload the
    static estimator misplans and on the E8 distance program (where the
    adaptive path must not regress).  The second table exposes the
    statistics the run actually recorded — the observability face of
    the feedback loop.
    """
    table = Table(
        "adaptive re-planning + semi-join reduction vs static plans",
        ["engine/program", "adaptive s", "static s", "speedup", "equal", "ok"],
    )
    hub_program, hub_db = _hub_workload()
    stats_store = PlanStore()
    cases = [
        (
            "naive lfp/hub join (|Big|=4000)",
            hub_program,
            hub_db,
            stats_store,
        ),
        (
            "naive lfp/distance E8 (L_10)",
            distance_program(),
            graph_to_database(gg.path(10)),
            PlanStore(),
        ),
    ]
    for name, program, case_db, store in cases:
        # Warm BOTH stores first: the table compares steady-state
        # execution (bucketed re-planned variants are cached and shared,
        # exactly like the process-wide store in production), not
        # first-compile latency — neither cell includes compilation.
        static_store = PlanStore()
        _lfp_adaptive(program, case_db, store)
        _lfp_static(program, case_db, semijoin=False, store=static_store)
        adaptive, adaptive_s = _timed(
            lambda p=program, d=case_db, s=store: _lfp_adaptive(p, d, s)
        )
        static, static_s = _timed(
            lambda p=program, d=case_db, s=static_store: _lfp_static(
                p, d, semijoin=False, store=s
            )
        )
        equal = idb_equal(adaptive, static)
        speedup = static_s / adaptive_s if adaptive_s > 0 else float("inf")
        table.add(name, adaptive_s, static_s, "%.1fx" % speedup, equal, equal)
    table.note(
        "adaptive = bucketed re-planning from observed IDB sizes + semi-join "
        "reduction (store pre-warmed: steady-state execution); static = "
        "compile-time estimates only, reduction off"
    )

    # Plan-statistics table: what the feedback loop recorded while the
    # hub case ran on its private store.
    stats = stats_store.statistics
    hits, misses, size = stats_store.stats()
    big_card = stats.cardinality("Big")
    sel_card = stats.cardinality("SEL")
    sel_join = any(pred == "Big" for pred, _ in stats.join_keys())
    stats_table = Table(
        "plan statistics recorded during the hub run",
        ["statistic", "value", "ok"],
    )
    stats_table.add("plans compiled (store misses)", misses, misses > 0)
    stats_table.add("plan-store hits", hits, True)
    stats_table.add("plan-store entries", size, True)
    stats_table.add("relations with observed cardinality", len(stats.cards), len(stats.cards) >= 2)
    stats_table.add("observed |Big|", big_card, big_card == 4000)
    stats_table.add(
        "observed |SEL| (recursive IDB, vs 'assume large')",
        sel_card,
        sel_card is not None and 0 < sel_card < 4000,
    )
    stats_table.add(
        "join selectivity recorded for Big probes", sel_join, sel_join
    )
    stats_table.note(
        "recorded by the batch executor into the store's Statistics; "
        "maintenance deltas and alias relations are excluded by design"
    )
    return [table, stats_table]


def _count_obs_touchpoints(fn: Callable[[], object]) -> int:
    """Run ``fn`` once fully observed and count every instrumentation hit.

    Metrics go into a scratch registry (the process-wide one stays
    clean); spans are counted from the collected trace.  Counters
    incremented by an amount > 1 count their full amount even though
    they cost one facade call, so the touchpoint count — and therefore
    the overhead estimate built on it — errs high.
    """
    scratch = MetricsRegistry()
    enable_metrics(scratch)
    TRACER.start()
    try:
        fn()
    finally:
        roots = TRACER.stop()
        disable_metrics()
    touchpoints = sum(1 for _ in walk(roots))
    for family in scratch.families():
        for _, child in family.children():
            if family.kind == "histogram":
                touchpoints += child.count
            else:
                touchpoints += int(child.value)
    return touchpoints


def observability_overhead_table() -> Table:
    """The gated claim: observability off must cost < 3% (ISSUE 8).

    Every instrumented hot path either early-returns off one attribute
    load (``RECORDER.inc`` / ``TRACER.span`` while disabled) or
    dispatches to an un-instrumented twin off the same check, so the
    disabled-path cost of a workload is bounded by (touchpoints crossed)
    x (cost of one disabled facade call).  Both factors are measured —
    the touchpoints by running the workload fully observed, the per-call
    cost by a microbenchmark of the disabled facade — and the bound is
    asserted against the workload's un-observed runtime.  The ``eval s``
    column is deliberately *not* one of the regression gate's timing
    columns: this table asserts a ratio, not a machine-dependent time.
    """
    import gc

    calls = 200_000
    enabled = gc.isenabled()
    gc.disable()
    try:
        inc = RECORDER.inc
        start = time.perf_counter()
        for _ in range(calls):
            inc("repro_engine_rounds_total")
        ns_per_call = (time.perf_counter() - start) / calls * 1e9
    finally:
        if enabled:
            gc.enable()

    n = 24
    path_db = graph_to_database(gg.path(n))
    win_db = graph_to_database(gg.path(64))
    cases = [
        (
            "seminaive/TC (L_%d)" % n,
            lambda: seminaive_least_fixpoint(
                transitive_closure_program(), path_db
            ),
        ),
        (
            "inflationary/pi_1 (L_%d)" % n,
            lambda: inflationary_semantics(pi1(), path_db),
        ),
        (
            "wellfounded/win (L_64)",
            lambda: well_founded_semantics(win_move_program(), win_db),
        ),
    ]
    table = Table(
        "observability disabled-path overhead (bound, gated < 3%)",
        ["workload", "eval s", "obs sites", "ns/site", "overhead %", "ok"],
    )
    for name, fn in cases:
        _, eval_s = _timed(fn)  # RECORDER and TRACER are off here
        sites = _count_obs_touchpoints(fn)
        overhead = sites * ns_per_call / (eval_s * 1e9) * 100.0
        table.add(
            name, eval_s, sites, "%.0f" % ns_per_call, "%.3f" % overhead,
            overhead < 3.0,
        )
    table.note(
        "overhead % = obs sites x disabled-facade ns / un-observed runtime "
        "— an upper bound (sites counted from a fully observed run); the "
        "ok column asserts the bound stays under 3%"
    )
    return table


@register(
    "perf",
    "PERF: compiled rule plans vs. legacy per-round evaluation",
    "The planner (compile once per program+db, cache indexes on relations) "
    "computes exactly the valuations of the legacy evaluator, faster.",
)
def run_perf() -> List[Table]:
    n = 24
    path_db = graph_to_database(gg.path(n))
    # The distance program's unsafe rules complete variables over the whole
    # universe — work the planner cannot skip — so it runs on a smaller
    # instance to keep the experiment quick.
    small_db = graph_to_database(gg.path(8))

    cases = [
        (
            "naive/TC",
            lambda: naive_least_fixpoint(transitive_closure_program(), path_db).idb,
            lambda: _legacy_least_fixpoint(transitive_closure_program(), path_db),
        ),
        (
            "seminaive/TC",
            lambda: seminaive_least_fixpoint(
                transitive_closure_program(), path_db
            ).idb,
            lambda: _legacy_least_fixpoint(transitive_closure_program(), path_db),
        ),
        (
            "inflationary/pi_1",
            lambda: inflationary_semantics(pi1(), path_db).idb,
            lambda: _legacy_inflationary(pi1(), path_db),
        ),
        (
            "inflationary/distance (L_8)",
            lambda: inflationary_semantics(distance_program(), small_db).idb,
            lambda: _legacy_inflationary(distance_program(), small_db),
        ),
    ]

    table = Table(
        "compiled vs legacy on L_%d (unless noted)" % n,
        ["engine/program", "compiled s", "legacy s", "speedup", "equal", "ok"],
    )
    for name, compiled_fn, legacy_fn in cases:
        compiled, compiled_s = _timed(compiled_fn)
        legacy, legacy_s = _timed(legacy_fn)
        equal = idb_equal(compiled, legacy)
        speedup = legacy_s / compiled_s if compiled_s > 0 else float("inf")
        table.add(name, compiled_s, legacy_s, "%.1fx" % speedup, equal, equal)
    table.note(
        "timings are informational (machine-dependent); the ok column "
        "asserts result equality only"
    )

    # Batch executor vs the PR-1 dict executor on identical plans: the
    # completion-bound distance program is where complement-based
    # completion replaces the |A|^k enumerate-then-filter pipeline.
    batch_table = Table(
        "set-at-a-time batch executor vs PR-1 dict executor (same plans)",
        ["engine/program", "batch s", "dict s", "speedup", "equal", "ok"],
    )
    executor_cases = [
        ("inflationary/distance (L_8)", distance_program(), graph_to_database(gg.path(8))),
        ("inflationary/distance (L_12)", distance_program(), graph_to_database(gg.path(12))),
        ("inflationary/pi_1 (L_%d)" % n, pi1(), path_db),
    ]
    for name, program, case_db in executor_cases:
        batch, batch_s = _timed(
            lambda p=program, d=case_db: inflationary_with_executor(p, d, execute_plan)
        )
        dict_rows, dict_s = _timed(
            lambda p=program, d=case_db: inflationary_with_executor(
                p, d, execute_plan_rows_legacy
            )
        )
        equal = idb_equal(batch, dict_rows)
        speedup = dict_s / batch_s if batch_s > 0 else float("inf")
        batch_table.add(name, batch_s, dict_s, "%.1fx" % speedup, equal, equal)
    batch_table.note(
        "both columns execute the same compiled plans; only the execution "
        "model differs (BindingTable + anti-join/complement vs dict rows)"
    )

    # The serving path: materialized-view single-tuple update latency
    # against from-scratch stratified recomputation (PR-3 subsystem),
    # the adaptive re-planning + semi-join tables (PR-4 subsystem), and
    # live well-founded views against alternating-fixpoint recomputation
    # (PR-5 subsystem, the non-stratifiable workload class).
    return (
        [table, batch_table, materialize_table()]
        + adaptive_tables()
        + [wellfounded_table(), observability_overhead_table()]
    )
