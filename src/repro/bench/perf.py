"""Perf experiment: compiled batch execution vs. the older pipelines.

Registered in the same harness as E1–E9 so ``python -m repro.bench perf``
prints three tables of wall-clock times: the shipped path (compiled
plans, set-at-a-time batch executor) against the seed's legacy
evaluator; against the PR-1 tuple-at-a-time dict executor — where the
completion-bound distance program shows the complement-representation
win; and the materialized-view scenario — single-tuple EDB update
latency through ``MaterializedView`` against from-scratch stratified
recomputation.  The ``ok`` columns assert what actually matters for
correctness — all paths produce the same valuations — while the timing
columns document the wins; speedups vary by machine, so they are
reported, not asserted.  ``--json`` emits the same tables as data;
``BENCH_PR3.json`` is a committed snapshot the CI regression gate
compares against (``compiled s``, ``batch s`` and ``update s`` cells).
"""

from __future__ import annotations

import time
from typing import Callable, List, Tuple

from ..core.fixpoint import idb_equal, idb_union
from ..core.operator import IDBMap, as_interpretation, empty_idb, theta_legacy
from ..core.planning import (
    PLAN_STORE,
    execute_plan,
    execute_plan_rows_legacy,
)
from ..core.semantics import (
    inflationary_semantics,
    naive_least_fixpoint,
    seminaive_least_fixpoint,
)
from ..db.database import Database
from ..db.relation import Relation
from ..core.program import Program
from ..graphs import generators as gg
from ..graphs.encode import graph_to_database
from ..queries import distance_program, pi1, transitive_closure_program
from .harness import Table, register
from .materialize_perf import materialize_table


def _legacy_least_fixpoint(program: Program, db: Database) -> IDBMap:
    current = empty_idb(program)
    while True:
        nxt = theta_legacy(program, db, current)
        if idb_equal(nxt, current):
            return current
        current = nxt


def _legacy_inflationary(program: Program, db: Database) -> IDBMap:
    current = empty_idb(program)
    while True:
        nxt = idb_union([current, theta_legacy(program, db, current)])
        if idb_equal(nxt, current):
            return current
        current = nxt


def _timed(fn: Callable[[], IDBMap]) -> Tuple[IDBMap, float]:
    start = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - start


def inflationary_with_executor(
    program: Program, db: Database, executor
) -> IDBMap:
    """Inflationary iteration driving each compiled plan with ``executor``.

    Used to pit the batch executor against the PR-1 dict executor on
    *identical plans*, so the measured difference is purely the
    execution model (set-at-a-time + complement vs. dict-at-a-time).
    """
    plan = PLAN_STORE.program_plan(program, db)
    current = empty_idb(program)
    while True:
        interp = as_interpretation(program, db, current)
        derived = {p: set() for p in program.idb_predicates}
        for rule_plan in plan.plans:
            derived[rule_plan.head_pred] |= executor(rule_plan, interp)
        nxt = {
            p: current[p].union(Relation(p, program.arity(p), tuples))
            for p, tuples in derived.items()
        }
        if idb_equal(nxt, current):
            return current
        current = nxt


@register(
    "perf",
    "PERF: compiled rule plans vs. legacy per-round evaluation",
    "The planner (compile once per program+db, cache indexes on relations) "
    "computes exactly the valuations of the legacy evaluator, faster.",
)
def run_perf() -> List[Table]:
    n = 24
    path_db = graph_to_database(gg.path(n))
    # The distance program's unsafe rules complete variables over the whole
    # universe — work the planner cannot skip — so it runs on a smaller
    # instance to keep the experiment quick.
    small_db = graph_to_database(gg.path(8))

    cases = [
        (
            "naive/TC",
            lambda: naive_least_fixpoint(transitive_closure_program(), path_db).idb,
            lambda: _legacy_least_fixpoint(transitive_closure_program(), path_db),
        ),
        (
            "seminaive/TC",
            lambda: seminaive_least_fixpoint(
                transitive_closure_program(), path_db
            ).idb,
            lambda: _legacy_least_fixpoint(transitive_closure_program(), path_db),
        ),
        (
            "inflationary/pi_1",
            lambda: inflationary_semantics(pi1(), path_db).idb,
            lambda: _legacy_inflationary(pi1(), path_db),
        ),
        (
            "inflationary/distance (L_8)",
            lambda: inflationary_semantics(distance_program(), small_db).idb,
            lambda: _legacy_inflationary(distance_program(), small_db),
        ),
    ]

    table = Table(
        "compiled vs legacy on L_%d (unless noted)" % n,
        ["engine/program", "compiled s", "legacy s", "speedup", "equal", "ok"],
    )
    for name, compiled_fn, legacy_fn in cases:
        compiled, compiled_s = _timed(compiled_fn)
        legacy, legacy_s = _timed(legacy_fn)
        equal = idb_equal(compiled, legacy)
        speedup = legacy_s / compiled_s if compiled_s > 0 else float("inf")
        table.add(name, compiled_s, legacy_s, "%.1fx" % speedup, equal, equal)
    table.note(
        "timings are informational (machine-dependent); the ok column "
        "asserts result equality only"
    )

    # Batch executor vs the PR-1 dict executor on identical plans: the
    # completion-bound distance program is where complement-based
    # completion replaces the |A|^k enumerate-then-filter pipeline.
    batch_table = Table(
        "set-at-a-time batch executor vs PR-1 dict executor (same plans)",
        ["engine/program", "batch s", "dict s", "speedup", "equal", "ok"],
    )
    executor_cases = [
        ("inflationary/distance (L_8)", distance_program(), graph_to_database(gg.path(8))),
        ("inflationary/distance (L_12)", distance_program(), graph_to_database(gg.path(12))),
        ("inflationary/pi_1 (L_%d)" % n, pi1(), path_db),
    ]
    for name, program, case_db in executor_cases:
        batch, batch_s = _timed(
            lambda p=program, d=case_db: inflationary_with_executor(p, d, execute_plan)
        )
        dict_rows, dict_s = _timed(
            lambda p=program, d=case_db: inflationary_with_executor(
                p, d, execute_plan_rows_legacy
            )
        )
        equal = idb_equal(batch, dict_rows)
        speedup = dict_s / batch_s if batch_s > 0 else float("inf")
        batch_table.add(name, batch_s, dict_s, "%.1fx" % speedup, equal, equal)
    batch_table.note(
        "both columns execute the same compiled plans; only the execution "
        "model differs (BindingTable + anti-join/complement vs dict rows)"
    )

    # The serving path: materialized-view single-tuple update latency
    # against from-scratch stratified recomputation (PR-3 subsystem).
    return [table, batch_table, materialize_table()]
