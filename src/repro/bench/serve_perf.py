"""Load harness for the live view server: throughput and tail latency.

``python -m repro.bench serve`` boots the real serving stack — a
:class:`~repro.server.service.ViewServer` behind the JSON-lines
:class:`~repro.server.net.TcpFrontend` — in-process on an ephemeral
port and ramps concurrent clients against it.  Every client POSTs
single-edge deltas to a transitive-closure view; each row of the table
is one load step reporting requests/second, the p95 request latency
(as ``p95 s``, the cell the CI regression gate compares, and again in
milliseconds for reading) and how many commits the single-writer queue
actually ran — under concurrency that is *fewer* than the number of
requests, because queued deltas are folded through ``Delta.compose``
into shared maintenance passes.  The ``ok`` column asserts what
matters: after the storm, the served view equals a from-scratch
stratified evaluation of the final database, exactly.

``BENCH_PR6.json`` is the committed snapshot of
``python -m repro.bench perf serve --json`` that the gate
(``python -m repro.bench check``) judges fresh runs against.
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
import time
from typing import List, Optional, Tuple

from ..core.parser import parse_program
from ..core.semantics import stratified_semantics
from ..db.database import Database
from ..db.relation import Relation
from .harness import Table, register

_PROGRAM = """
    TC(X, Y) :- E(X, Y).
    TC(X, Y) :- E(X, Z), TC(Z, Y).
"""

_SEED_EDGES = [(0, 1), (1, 2)]

_STEPS = [
    # (row key, concurrent clients, requests per client, durable WAL?)
    ("1 client x 32 deltas", 1, 32, False),
    ("4 clients x 16 deltas", 4, 16, False),
    ("16 clients x 8 deltas", 16, 8, False),
    ("4 clients x 16 deltas + WAL", 4, 16, True),
]


def _chain(client: int, ops: int) -> List[Tuple[int, int]]:
    """Client ``client``'s private edge chain (disjoint across clients).

    Disjoint chains make the final database independent of how the
    writer interleaved and folded the concurrent deltas, so the
    reference evaluation is deterministic.
    """
    base = 10 + client * (ops + 1)
    return [(base + j, base + j + 1) for j in range(ops)]


async def _client_load(
    host: str, port: int, edges: List[Tuple[int, int]], latencies: List[float]
) -> None:
    from ..server.net import Client

    client = await Client.connect(host, port)
    try:
        for edge in edges:
            start = time.perf_counter()
            await client.delta("tc", inserts={"E": [list(edge)]})
            latencies.append(time.perf_counter() - start)
    finally:
        await client.close()


async def _run_step(
    clients: int, ops: int, state_dir: Optional[str]
) -> Tuple[float, List[float], int, bool]:
    """One load step: returns (elapsed, latencies, commits, exact)."""
    from ..server.net import Client, TcpFrontend
    from ..server.service import ViewServer

    service = ViewServer(state_dir=state_dir, tick=0.0)
    frontend = TcpFrontend(service)
    try:
        host, port = await frontend.start()
        admin = await Client.connect(host, port)
        await admin.register(
            "tc",
            _PROGRAM,
            db={
                "relations": {"E": [list(e) for e in _SEED_EDGES]},
                "arities": {"E": 2},
            },
            durable=state_dir is not None,
        )
        chains = [_chain(i, ops) for i in range(clients)]
        latencies: List[float] = []
        start = time.perf_counter()
        await asyncio.gather(
            *(_client_load(host, port, chain, latencies) for chain in chains)
        )
        elapsed = time.perf_counter() - start
        commits = (await admin.request("stats", view="tc"))["stats"]["commits"]

        # Exactness: the served view equals a from-scratch stratified
        # evaluation of the final database.
        final_edges = set(_SEED_EDGES)
        for chain in chains:
            final_edges.update(chain)
        served_e = {
            tuple(t) for t in (await admin.query("tc", "E"))["tuples"]
        }
        served_tc = {
            tuple(t) for t in (await admin.query("tc", "TC"))["tuples"]
        }
        universe = {v for e in final_edges for v in e}
        reference = stratified_semantics(
            parse_program(_PROGRAM),
            Database(universe, [Relation("E", 2, sorted(final_edges))]),
        )
        exact = served_e == final_edges and served_tc == set(
            reference.idb["TC"].tuples
        )
        await admin.close()
        return elapsed, latencies, commits, exact
    finally:
        await frontend.close()


async def _serve_table() -> Table:
    table = Table(
        "live view server under concurrent delta load (TC view, one edge "
        "per request)",
        [
            "load step",
            "requests",
            "throughput_rps",
            "p95 s",
            "p95_latency_ms",
            "commits",
            "ok",
        ],
    )
    for key, clients, ops, durable in _STEPS:
        state_dir = tempfile.mkdtemp(prefix="repro-serve-bench-") if durable else None
        try:
            elapsed, latencies, commits, exact = await _run_step(
                clients, ops, state_dir
            )
        finally:
            if state_dir is not None:
                shutil.rmtree(state_dir, ignore_errors=True)
        total = clients * ops
        latencies.sort()
        p95 = latencies[min(len(latencies) - 1, int(0.95 * len(latencies)))]
        table.add(
            key,
            total,
            total / elapsed if elapsed > 0 else float("inf"),
            p95,
            p95 * 1000.0,
            commits,
            exact and len(latencies) == total,
        )
    table.note(
        "each request is one TCP round trip ending in an acknowledged "
        "commit; commits < requests under concurrency because the writer "
        "folds queued deltas into shared maintenance passes"
    )
    table.note(
        "the + WAL step writes every batch ahead to the CSV delta log "
        "before acknowledging, so its latency includes durability"
    )
    return table


@register(
    "serve",
    "SERVE: the live view server under concurrent delta load",
    "The single-writer queue keeps the served view exactly equal to a "
    "from-scratch evaluation of the final database while concurrent "
    "clients stream deltas; folding queued deltas into shared "
    "maintenance passes bounds the per-request latency.",
)
def run_serve() -> List[Table]:
    return [asyncio.run(_serve_table())]
