"""The well-founded view update-latency scenario (shared measurement).

One measurement function serves two consumers: the ``perf`` experiment's
``wellfounded`` table (``python -m repro.bench perf``, snapshotted into
the committed baseline and gated by ``repro.bench check``) and the
opt-in ``benchmarks/bench_wellfounded_maintain.py``, which runs larger
sizes and asserts the headline claim — single-tuple update latency
beating a from-scratch alternating-fixpoint recomputation on win–move
over a long path.

The workload is the win–move game (``pi_1`` over reversed edges — the
paper's canonical *non-stratifiable* program) on the path ``L_n``, whose
alternating fixpoint needs ``~n/2`` outer rounds: every round decides
one more position walking back from the dead end, so a from-scratch
recomputation costs ``O(n^2)`` while the maintained state walks its
``~n`` live layers with per-layer work proportional to the delta.  Two
single-tuple updates:

* **probe** — insert and delete the self-loop ``(1, 1)`` at the node
  farthest from the dead end: a ground rule enters and leaves every
  layer's reduct without changing any layer's value, isolating the pure
  per-layer patching overhead (the serving path's common case: most
  updates do not move the fixpoint).
* **flip** — delete and re-insert the final edge ``(n-1, n)``: moving
  the dead end flips the win/lose parity of the *entire* path, forcing
  every layer to rewrite — maintenance's worst case, reported at the
  small size only and never asserted.

From-scratch times run ``well_founded_semantics`` (grounding included —
that is what "recompute" costs) on a freshly built database, so no cache
asymmetry favours the view's long-lived relations.
"""

from __future__ import annotations

import statistics
import time
from typing import Dict, List

from ..core.semantics import well_founded_semantics
from ..graphs import generators as gg
from ..graphs.encode import graph_to_database
from ..materialize import Delta, MaterializedView
from ..queries import win_move_program
from .harness import Table

HEADLINE_SPEEDUP = 5.0
"""The asserted floor: probe updates must beat recompute by this much at
the largest measured size (ISSUE 5 acceptance criterion)."""


def measure_wellfounded_scenario(
    n: int, rounds: int = 2, include_flip: bool = False
) -> Dict[str, float]:
    """Update-latency measurements for win–move on ``L_n``.

    Returns mean seconds for the probe (and optionally flip) single-tuple
    updates, the from-scratch well-founded recompute, the view build,
    and an ``equal`` flag asserting the maintained three-valued model
    matches a final from-scratch evaluation on all partitions.
    """
    program = win_move_program()
    start = time.perf_counter()
    view = MaterializedView(program, graph_to_database(gg.path(n)), semantics="wellfounded")
    build_s = time.perf_counter() - start

    def timed_updates(delta: Delta, undo: Delta) -> List[float]:
        times = []
        for _ in range(rounds):
            start = time.perf_counter()
            view.apply(delta)
            times.append(time.perf_counter() - start)
            start = time.perf_counter()
            view.apply(undo)
            times.append(time.perf_counter() - start)
        return times

    probe_s = statistics.mean(
        timed_updates(Delta.insert("E", (1, 1)), Delta.delete("E", (1, 1)))
    )
    flip_s = None
    if include_flip:
        tail = (n - 1, n)
        flip_s = statistics.mean(
            timed_updates(Delta.delete("E", tail), Delta.insert("E", tail))
        )

    scratch_times = []
    for _ in range(rounds):
        fresh = graph_to_database(gg.path(n))
        start = time.perf_counter()
        reference = well_founded_semantics(program, fresh)
        scratch_times.append(time.perf_counter() - start)
    scratch_s = statistics.mean(scratch_times)

    result = view.result
    return {
        "n": n,
        "build_s": build_s,
        "probe_s": probe_s,
        "flip_s": flip_s,
        "scratch_s": scratch_s,
        "equal": (
            result.true == reference.true
            and result.undefined == reference.undefined
        ),
    }


def wellfounded_table(sizes=(400, 2000)) -> Table:
    """The perf experiment's well-founded maintenance table.

    The probe row at the largest size carries the ISSUE 5 acceptance
    assertion in its ``ok`` cell: maintenance must beat recompute by at
    least :data:`HEADLINE_SPEEDUP` — the margin is an order of magnitude
    on every tested machine, so gating it is safe — and every row
    asserts three-valued equality with the from-scratch model.
    """
    table = Table(
        "well-founded view: single-tuple EDB update vs alternating-fixpoint recompute",
        ["view/update", "update s", "scratch s", "speedup", "equal", "ok"],
    )
    largest = max(sizes)
    for n in sizes:
        m = measure_wellfounded_scenario(n, include_flip=(n != largest))
        rows = [("probe", m["probe_s"])]
        if m["flip_s"] is not None:
            rows.append(("flip", m["flip_s"]))
        for kind, seconds in rows:
            speedup = m["scratch_s"] / seconds if seconds > 0 else float("inf")
            ok = m["equal"]
            if kind == "probe" and n == largest:
                ok = ok and speedup >= HEADLINE_SPEEDUP
            table.add(
                "win-move (L_%d) %s" % (n, kind),
                seconds,
                m["scratch_s"],
                "%.1fx" % speedup,
                m["equal"],
                ok,
            )
    table.note(
        "update s = mean latency of MaterializedView.apply on one EDB tuple "
        "(incremental alternating fixpoint: patched grounding + per-layer "
        "DRed); scratch s = well_founded_semantics on a fresh database, "
        "grounding included.  The L_%d probe row's ok cell asserts the "
        ">=%.0fx headline (ISSUE 5); the flip row is the parity-flipping "
        "worst case, reported only." % (largest, HEADLINE_SPEEDUP)
    )
    return table
