"""Boolean circuits and succinct graph representations (Theorem 4)."""

from .circuit import AND, IN, NOT, OR, Circuit, CircuitBuilder, Gate
from .succinct import SuccinctGraph

__all__ = [
    "AND",
    "Circuit",
    "CircuitBuilder",
    "Gate",
    "IN",
    "NOT",
    "OR",
    "SuccinctGraph",
]
