"""Builders for edge circuits of standard graph families.

These supply the SUCCINCT 3-COLORING workloads of experiment E6: circuits
presenting graphs whose explicit expansions we can still afford to check.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..graphs.digraph import Digraph
from .circuit import CircuitBuilder
from .succinct import BitNode, SuccinctGraph


def _address_inputs(builder: CircuitBuilder, n: int) -> Tuple[List[int], List[int]]:
    """Allocate the 2n input gates: first n for u, last n for v."""
    u = [builder.input() for _ in range(n)]
    v = [builder.input() for _ in range(n)]
    return u, v


def _equals_constant(builder: CircuitBuilder, wires: Sequence[int], bits: BitNode) -> int:
    """A gate that is 1 iff the wires spell the given bit pattern."""
    parts = []
    for wire, bit in zip(wires, bits):
        parts.append(wire if bit else builder.not_(wire))
    return builder.and_all(parts)


def explicit_graph_circuit(graph: Digraph, address_bits: int) -> SuccinctGraph:
    """A DNF edge circuit presenting an explicitly given graph.

    Nodes of ``graph`` must be ``address_bits``-bit tuples.  The circuit is
    the OR over edges of "u spells this source and v spells this target" —
    the generic (if inefficient) way to make any small graph succinct, used
    to cross-check the Theorem 4 reduction against explicit 3-coloring.
    """
    for node in graph.nodes:
        try:
            bits = tuple(node)
        except TypeError:
            raise ValueError(
                "node %r is not an %d-bit tuple" % (node, address_bits)
            ) from None
        if len(bits) != address_bits or not set(bits) <= {0, 1}:
            raise ValueError(
                "node %r is not an %d-bit tuple" % (node, address_bits)
            )
    builder = CircuitBuilder()
    u, v = _address_inputs(builder, address_bits)
    edge_gates = []
    for src, dst in sorted(graph.edges):
        src_gate = _equals_constant(builder, u, tuple(src))
        dst_gate = _equals_constant(builder, v, tuple(dst))
        edge_gates.append(builder.and_(src_gate, dst_gate))
    if edge_gates:
        builder.or_all(edge_gates)
    else:
        builder.constant_false()
    return SuccinctGraph(builder.build(), address_bits)


def complete_graph_circuit(address_bits: int) -> SuccinctGraph:
    """Edge circuit of the complete graph on ``{0,1}^n`` (no self-loops):
    an edge iff u != v."""
    builder = CircuitBuilder()
    u, v = _address_inputs(builder, address_bits)
    differs = []
    for a, b in zip(u, v):
        both = builder.and_(a, b)
        neither = builder.and_(builder.not_(a), builder.not_(b))
        same = builder.or_(both, neither)
        differs.append(builder.not_(same))
    builder.or_all(differs)
    return SuccinctGraph(builder.build(), address_bits)


def hypercube_circuit(address_bits: int) -> SuccinctGraph:
    """Edge circuit of the ``n``-cube: edge iff Hamming distance is 1.

    Hypercubes are bipartite, hence 2- (and 3-) colorable — a positive
    instance family for SUCCINCT 3-COLORING.
    """
    builder = CircuitBuilder()
    u, v = _address_inputs(builder, address_bits)
    diff_bits = []
    for a, b in zip(u, v):
        axb = builder.and_(a, builder.not_(b))
        bxa = builder.and_(b, builder.not_(a))
        diff_bits.append(builder.or_(axb, bxa))
    # Exactly one differing bit: OR over i of (diff_i and none other).
    exactly_one = []
    for i in range(address_bits):
        parts = [diff_bits[i]]
        for j in range(address_bits):
            if j != i:
                parts.append(builder.not_(diff_bits[j]))
        exactly_one.append(builder.and_all(parts))
    builder.or_all(exactly_one)
    return SuccinctGraph(builder.build(), address_bits)


def empty_graph_circuit(address_bits: int) -> SuccinctGraph:
    """Edge circuit of the graph with no edges (trivially 3-colorable)."""
    builder = CircuitBuilder()
    _address_inputs(builder, address_bits)
    builder.constant_false()
    return SuccinctGraph(builder.build(), address_bits)
