"""Boolean circuits exactly as defined in the paper (Theorem 4).

*"A Boolean circuit is a finite set of triples ((a_i, b_i, c_i): i = 1..k),
where a_i in {OR, AND, NOT, IN} is the kind of the gate, and b_i, c_i < i
are the inputs of the gate, unless the gate is an input gate (a_i = IN), in
which case b_i = c_i = 0.  For NOT gates, b_i = c_i.  ...  The value of the
circuit is the value of the last gate."*

Gates are numbered from 1; input gates feed from the circuit's input bits
in the order the IN gates appear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

IN = "IN"
AND = "AND"
OR = "OR"
NOT = "NOT"

_KINDS = (IN, AND, OR, NOT)


@dataclass(frozen=True)
class Gate:
    """One gate triple ``(kind, b, c)``; ``b = c = 0`` for inputs."""

    kind: str
    b: int
    c: int

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError("unknown gate kind %r" % self.kind)
        if self.kind == IN and (self.b != 0 or self.c != 0):
            raise ValueError("input gates must have b = c = 0")
        if self.kind == NOT and self.b != self.c:
            raise ValueError("NOT gates must have b = c")


class Circuit:
    """An immutable gate list with the paper's well-formedness conditions."""

    def __init__(self, gates: Iterable[Gate]) -> None:
        self.gates: Tuple[Gate, ...] = tuple(gates)
        if not self.gates:
            raise ValueError("a circuit needs at least one gate")
        for i, gate in enumerate(self.gates, start=1):
            if gate.kind != IN and not (1 <= gate.b < i and 1 <= gate.c < i):
                raise ValueError(
                    "gate %d (%s) feeds from %d, %d; inputs must be earlier gates"
                    % (i, gate.kind, gate.b, gate.c)
                )
        self.input_positions: Tuple[int, ...] = tuple(
            i for i, g in enumerate(self.gates, start=1) if g.kind == IN
        )

    @property
    def num_inputs(self) -> int:
        """Number of IN gates (the circuit reads this many bits)."""
        return len(self.input_positions)

    @property
    def num_gates(self) -> int:
        """Total gate count ``k``."""
        return len(self.gates)

    @property
    def output_gate(self) -> int:
        """The last gate's 1-based index — the circuit's value."""
        return len(self.gates)

    def evaluate(self, bits: Sequence[int]) -> bool:
        """The circuit's value on an input bit vector.

        ``bits`` supplies one value (0/1 or bool) per IN gate, in IN-gate
        order.
        """
        if len(bits) != self.num_inputs:
            raise ValueError(
                "expected %d input bits, got %d" % (self.num_inputs, len(bits))
            )
        values: List[bool] = []
        next_input = 0
        for gate in self.gates:
            if gate.kind == IN:
                values.append(bool(bits[next_input]))
                next_input += 1
            elif gate.kind == AND:
                values.append(values[gate.b - 1] and values[gate.c - 1])
            elif gate.kind == OR:
                values.append(values[gate.b - 1] or values[gate.c - 1])
            else:  # NOT
                values.append(not values[gate.b - 1])
        return values[-1]

    def __len__(self) -> int:
        return len(self.gates)

    def __repr__(self) -> str:
        return "Circuit(%d gates, %d inputs)" % (self.num_gates, self.num_inputs)


class CircuitBuilder:
    """Convenience builder maintaining the gate numbering invariants.

    Methods return 1-based gate indexes usable as later gate inputs.
    """

    def __init__(self) -> None:
        self._gates: List[Gate] = []

    def _add(self, gate: Gate) -> int:
        self._gates.append(gate)
        return len(self._gates)

    def input(self) -> int:
        """Add an IN gate."""
        return self._add(Gate(IN, 0, 0))

    def and_(self, b: int, c: int) -> int:
        """Add an AND gate over two earlier gates."""
        return self._add(Gate(AND, b, c))

    def or_(self, b: int, c: int) -> int:
        """Add an OR gate over two earlier gates."""
        return self._add(Gate(OR, b, c))

    def not_(self, b: int) -> int:
        """Add a NOT gate over an earlier gate."""
        return self._add(Gate(NOT, b, b))

    def and_all(self, gates: Sequence[int]) -> int:
        """Balanced AND of one or more gates."""
        if not gates:
            raise ValueError("and_all needs at least one gate")
        result = gates[0]
        for g in gates[1:]:
            result = self.and_(result, g)
        return result

    def or_all(self, gates: Sequence[int]) -> int:
        """Balanced OR of one or more gates."""
        if not gates:
            raise ValueError("or_all needs at least one gate")
        result = gates[0]
        for g in gates[1:]:
            result = self.or_(result, g)
        return result

    def constant_false(self) -> int:
        """A gate that always outputs 0 (x and not x over input 1)."""
        if not self._gates:
            raise ValueError("add at least one input before constants")
        first_in = next(
            i for i, g in enumerate(self._gates, start=1) if g.kind == IN
        )
        neg = self.not_(first_in)
        return self.and_(first_in, neg)

    def build(self) -> Circuit:
        """Finalise; the most recently added gate is the output."""
        return Circuit(self._gates)
