"""Succinct graph representations (Theorem 4's input format).

*"Imagine that the nodes of the graph are the elements of {0,1}^n, and,
instead of an explicitly given edge relation, there is a Boolean circuit
with 2n inputs and one output such that the value output by the circuit is
1 if and only if the inputs form two n-tuples that are connected by an
edge."*
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Tuple

from ..graphs.digraph import Digraph
from .circuit import Circuit

BitNode = Tuple[int, ...]


@dataclass(frozen=True)
class SuccinctGraph:
    """A graph on ``{0,1}**address_bits`` presented by an edge circuit."""

    circuit: Circuit
    address_bits: int

    def __post_init__(self) -> None:
        if self.circuit.num_inputs != 2 * self.address_bits:
            raise ValueError(
                "circuit reads %d bits; a graph on {0,1}^%d needs %d"
                % (self.circuit.num_inputs, self.address_bits, 2 * self.address_bits)
            )

    @property
    def num_nodes(self) -> int:
        """``2**address_bits`` — exponential in the representation size."""
        return 2 ** self.address_bits

    def has_edge(self, u: BitNode, v: BitNode) -> bool:
        """Edge test by one circuit evaluation."""
        if len(u) != self.address_bits or len(v) != self.address_bits:
            raise ValueError("nodes must be %d-bit tuples" % self.address_bits)
        return self.circuit.evaluate(tuple(u) + tuple(v))

    def expand(self) -> Digraph:
        """The explicit graph: ``2**(2n)`` circuit evaluations.

        This is the exponential blow-up the NEXP-hardness result rides on;
        only call it for small ``address_bits``.
        """
        nodes = [
            tuple(bits) for bits in product((0, 1), repeat=self.address_bits)
        ]
        edges = [
            (u, v) for u in nodes for v in nodes if self.has_edge(u, v)
        ]
        return Digraph(nodes, edges)
