"""Command-line interface: evaluate, analyse, classify, lint, update programs.

Usage::

    python -m repro run PROGRAM.dl --db DIR [--semantics inflationary]
    python -m repro analyze PROGRAM.dl --db DIR [--count-limit N]
    python -m repro classify PROGRAM.dl
    python -m repro lint PROGRAM.dl [--db DIR] [--json] [--strict]
    python -m repro update PROGRAM.dl --db DIR --delta DIR [--delta DIR2 ...]
        [--semantics stratified|inflationary|wellfounded] [--batch]
    python -m repro serve [PROGRAM.dl] [--db DIR] [--state DIR]
        [--host H] [--port P] [--semantics S] [--tick-ms MS]
        [--snapshot-every N] [--log-level LEVEL]
    python -m repro explain PROGRAM.dl --db DIR [--semantics auto|...]
        [--profile] [--trace-out FILE] [--slow-ms MS]

``--db DIR`` points at a directory of headerless ``<relation>.csv`` files
(one tuple per row); the schema is inferred from the program's EDB arities.
``update`` builds a materialized view over the database, applies the
deltas found in the ``--delta`` directories (``<relation>.insert.csv`` /
``<relation>.delete.csv``, validated against the EDB schema) and prints
the changesets — every EDB and IDB tuple that moved; ``--batch`` folds
all deltas into one transaction, ``--semantics wellfounded`` maintains
the three-valued model of non-stratifiable programs (changes to the
undefined partition print under ``pred@undef``).

``serve`` runs the long-lived view server (:mod:`repro.server`): a JSON-
lines TCP service where clients POST deltas, query maintained results and
subscribe to changeset streams.  With ``--state DIR`` every committed
batch is written ahead to a CSV delta log and the server restarts by
snapshot + WAL replay — starting ``serve`` again on a populated state
directory recovers without ``PROGRAM.dl``/``--db``.  Startup, recovery
and slow-op events go through stdlib ``logging`` (``--log-level``), and
engine metrics are enabled so the ``metrics`` verb exposes them.

``explain`` pretty-prints each rule's compiled plan (join order,
semi-join prologue, planning-time estimates) together with the shared
planner's observed statistics and a static-analysis summary block.
``--profile`` additionally runs the program under span tracing and
prints a phase-attributed time/row breakdown; ``--trace-out FILE``
writes the span forest as Chrome trace-event JSON (openable in
Perfetto / ``chrome://tracing``).

``lint`` runs the full static analyzer (:mod:`repro.analysis`): parse
and arity errors, range-restriction/safety, stratifiability with a
witness cycle through negation, semantics-divergence warnings on the
predicates where inflationary and well-founded models can differ, dead
rules, duplicate/subsumed rules, column type conflicts, and — with
``--db`` — database compatibility and unused relations.  Exit status is
1 exactly when error-level diagnostics exist; ``--strict`` promotes
warnings to errors; ``--json`` emits the schema-stable report document.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .analysis.classify import EngineSupport, classify
from .core.parser import parse_program
from .core.program import Program
from .core.satreduction import analyze_fixpoints
from .core.semantics import (
    inflationary_semantics,
    naive_least_fixpoint,
    seminaive_least_fixpoint,
    stratified_semantics,
    well_founded_semantics,
)
from .core.validation import check_database, safety_report
from .db import csvio
from .db.database import Database

_ENGINES = {
    "inflationary": inflationary_semantics,
    "naive": naive_least_fixpoint,
    "seminaive": seminaive_least_fixpoint,
    "stratified": stratified_semantics,
}


def _load_program(path: str, carrier: str = None) -> Program:
    return parse_program(Path(path).read_text(), carrier=carrier)


def _load_database(directory: str, program: Program) -> Database:
    schema = {pred: program.arity(pred) for pred in program.edb_predicates}
    db = csvio.load_database(directory, schema)
    check_database(program, db)
    return db


def _load_lint_database(directory: str, program: Program):
    """Best-effort database load for the analyzer.

    Unlike :func:`_load_database` this never fails on a missing or
    mismatched relation — those become V001/V002 diagnostics.  Every
    ``<name>.csv`` in the directory is loaded (so unreferenced
    relations surface as U001), with the arity inferred from the first
    data row when the program does not fix it.
    """
    import csv as _csv

    from .db.database import Database

    relations = []
    universe = set()
    for path in sorted(Path(directory).glob("*.csv")):
        name = path.stem
        with open(path, newline="") as f:
            first = next((row for row in _csv.reader(f) if row), None)
        if first is not None:
            arity = 0 if first == ["()"] else len(first)
        else:
            try:
                arity = program.arity(name)
            except KeyError:
                continue  # empty and unknown to the program: nothing to say
        rel = csvio.load_relation(path, name, arity)
        relations.append(rel)
        for t in rel:
            universe.update(t)
    return Database(universe, relations)


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the static analyzer; exit 1 iff the report gates red.

    ``--strict`` promotes warnings to errors for the exit status (the
    report itself is unchanged); ``--json`` prints the schema-stable
    document instead of the human rendering.
    """
    import json

    from .analysis import lint_source
    from .core.parser import ParseError
    from .core.program import ProgramError

    text = Path(args.program).read_text()
    db = None
    if args.db is not None:
        try:
            program = parse_program(text, carrier=args.carrier)
        except (ParseError, ProgramError):
            program = None  # lint_source reports the failure itself
        if program is not None:
            db = _load_lint_database(args.db, program)
    report = lint_source(text, db=db, carrier=args.carrier)
    if args.as_json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=False))
    else:
        print(report.format(args.program))
        if args.strict and report.warnings and not report.errors:
            print("(--strict: warnings promoted to errors)")
    return report.exit_code(strict=args.strict)


def _print_relations(idb) -> None:
    for pred in sorted(idb):
        rel = idb[pred]
        print("%s/%d (%d tuples):" % (pred, rel.arity, len(rel)))
        for t in sorted(rel, key=repr):
            print("  " + ", ".join(str(v) for v in t))


def cmd_run(args: argparse.Namespace) -> int:
    """Evaluate a program on a CSV database under a chosen semantics."""
    program = _load_program(args.program, carrier=args.carrier)
    db = _load_database(args.db, program)
    if args.semantics == "wellfounded":
        result = well_founded_semantics(program, db)
        print("well-founded model (total=%s):" % result.is_total)
        print("TRUE:")
        _print_relations(result.true_idb())
        if not result.is_total:
            print("UNDEFINED:")
            _print_relations(result.undefined_idb())
        return 0
    engine = _ENGINES[args.semantics]
    result = engine(program, db)
    print("engine=%s rounds=%d" % (result.engine, result.rounds))
    _print_relations(result.idb)
    return 0


def cmd_update(args: argparse.Namespace) -> int:
    """Apply CSV deltas to a materialized view and print the changesets.

    ``--delta`` may repeat; with ``--batch`` the deltas are applied as a
    single transaction (one maintenance pass, one undo-log entry),
    otherwise sequentially with one changeset each.  Under
    ``--semantics wellfounded`` the changeset reports the *true*
    partition under each predicate's own name and the *undefined*
    partition under ``pred@undef``.
    """
    from .materialize import MaterializedView

    program = _load_program(args.program, carrier=args.carrier)
    db = _load_database(args.db, program)
    schema = {pred: program.arity(pred) for pred in program.edb_predicates}
    deltas = [csvio.load_delta(directory, schema) for directory in args.delta]
    view = MaterializedView(program, db, semantics=args.semantics)
    if args.batch:
        changeset = view.apply_many(deltas)
        print(
            "engine=%s semantics=%s batch of %d delta(s)"
            % (view.result.engine, args.semantics, len(deltas))
        )
        print(changeset.format())
    else:
        for delta in deltas:
            changeset = view.apply(delta)
            print(
                "engine=%s semantics=%s delta=%r"
                % (view.result.engine, args.semantics, delta)
            )
            print(changeset.format())
    if args.out:
        csvio.dump_database(view.db, args.out)
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Print compiled rule plans; with ``--profile``, a phase breakdown.

    The plain form shows, per rule, the store-compiled
    :class:`~repro.core.planning.plan.RulePlan` (semi-join prologue,
    join order, completion steps) and its planning-time cardinality
    estimates, followed by the shared planner's observed statistics.
    ``--profile`` evaluates the program under metrics + span tracing
    and prints a per-phase time/row table attributing the evaluation
    wall time to fixpoint phases (grounding, semi-naive rounds,
    alternation steps, rule executions).
    """
    import json
    import time

    from .core.planning import PLAN_STORE
    from .core.semantics import is_stratifiable
    from .obs import (
        REGISTRY,
        TRACER,
        aggregate,
        disable_metrics,
        enable_metrics,
        export_chrome,
        span_total,
    )

    program = _load_program(args.program, carrier=args.carrier)
    db = _load_database(args.db, program)
    semantics = args.semantics
    if semantics == "auto":
        semantics = "stratified" if is_stratifiable(program) else "wellfounded"
    print(
        "program %s: %d rules, %d EDB / %d IDB predicates, semantics=%s"
        % (
            args.program,
            len(program.rules),
            len(program.edb_predicates),
            len(program.idb_predicates),
            semantics,
        )
    )
    print()
    for rule in program.rules:
        plan = PLAN_STORE.rule_plan(rule, db=db)
        print(plan.describe())
        if plan.est_cards:
            print(
                "  estimates: "
                + ", ".join(
                    "%s=%s" % (p, "?" if e == float("inf") else int(e))
                    for p, e in plan.est_cards
                )
            )
        print()

    from .analysis import lint_program

    report = lint_program(program, db)
    summary = report.summary()
    print(
        "lint: class=%s strata=%s, %d error(s), %d warning(s), %d info(s)"
        % (
            summary["class"],
            "n/a" if summary["strata"] is None else summary["strata"],
            summary["errors"],
            summary["warnings"],
            summary["infos"],
        )
    )
    for diagnostic in report.diagnostics:
        print("  " + diagnostic.format(args.program))
    print()

    wall = None
    if args.profile:
        enable_metrics()
        TRACER.start(slow_threshold=args.slow_ms / 1000.0 if args.slow_ms else None)
        try:
            workers = getattr(args, "workers", 0)
            if workers and semantics == "naive":
                print("note: --workers has no sharded naive engine; ignoring")
                workers = 0
            started = time.perf_counter()
            if semantics == "wellfounded":
                well_founded_semantics(program, db, parallel=workers)
            elif workers:
                _ENGINES[semantics](program, db, parallel=workers)
            else:
                _ENGINES[semantics](program, db)
            wall = time.perf_counter() - started
        finally:
            roots = TRACER.stop()
            disable_metrics()
        covered = span_total(roots)
        print(
            "profile: wall %.4fs, %.1f%% attributed to spans"
            % (wall, 100.0 * covered / wall if wall else 0.0)
        )
        print(
            "%-28s %7s %10s %10s %12s"
            % ("phase", "count", "total s", "self s", "rows")
        )
        for stat in aggregate(roots):
            print(
                "%-28s %7d %10.4f %10.4f %12d"
                % (stat.name, stat.count, stat.total, stat.self_time, stat.rows)
            )
        counters = [
            (f.name, f.value)
            for f in REGISTRY.families()
            if f.kind == "counter" and not f.labelnames and f.value
        ]
        if counters:
            print()
            print("counters:")
            for name, value in counters:
                print("  %-42s %d" % (name, int(value)))
        if args.trace_out:
            Path(args.trace_out).write_text(export_chrome(roots))
            print()
            print("chrome trace written to %s (open in Perfetto)" % args.trace_out)

    snapshot = PLAN_STORE.statistics.snapshot()
    print()
    print("observed planner statistics (shared store):")
    if not snapshot["cardinalities"] and not snapshot["avg_matches"]:
        print("  (none yet — run with --profile to collect)")
    for pred, size in snapshot["cardinalities"].items():
        print("  card  %-24s %d" % (pred, size))
    for key, avg in snapshot["avg_matches"].items():
        print("  join  %-24s %.3f matches/probe" % (key, avg))
    print("  re-plans: %d" % snapshot["replans"])
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the live view server until interrupted (or told to shut down).

    A fresh start needs ``PROGRAM.dl`` and ``--db`` to register the
    initial view; a restart on a populated ``--state`` directory
    recovers every view it holds by snapshot + WAL replay and ignores
    neither — recovered views win, the program/db pair only registers
    the named view when recovery did not already produce it.
    """
    import asyncio
    import logging

    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(asctime)s %(levelname)s %(name)s: %(message)s",
    )
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:
        return 0


async def _serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .obs import enable_metrics
    from .server.net import TcpFrontend
    from .server.service import ViewServer

    # Engine-side instruments flow into the process registry so the
    # ``metrics`` verb reports fixpoint work alongside the always-on
    # per-view serving series.
    enable_metrics()
    service = ViewServer(
        state_dir=args.state,
        tick=args.tick_ms / 1000.0,
        snapshot_every=args.snapshot_every,
        parallel=getattr(args, "workers", 0),
    )
    recovered = await service.start()
    for info in recovered:
        print(
            "recovered view %r at seq %d by snapshot + WAL replay (%s)"
            % (info.name, info.seq, info.semantics)
        )
    if args.name not in service.views():
        if args.program is None or args.db is None:
            print(
                "view %r is not in the state directory: a fresh start needs "
                "PROGRAM.dl and --db" % args.name
            )
            return 2
        program = _load_program(args.program, carrier=args.carrier)
        db = _load_database(args.db, program)
        info = service.register(
            args.name,
            Path(args.program).read_text(),
            db,
            semantics=args.semantics,
            carrier=args.carrier,
        )
        print(
            "registered view %r (%s; EDB %s; IDB %s)%s"
            % (
                info.name,
                info.semantics,
                ", ".join(sorted(info.edb)),
                ", ".join(sorted(info.idb)),
                "" if info.durable else " [in-memory: no --state given]",
            )
        )
    frontend = TcpFrontend(service)
    host, port = await frontend.start(args.host, args.port)
    print("serving on %s:%d (newline-delimited JSON; op: register/delta/"
          "query/subscribe/info/stats/lint/metrics/shutdown)" % (host, port))
    sys.stdout.flush()

    # SIGTERM is the normal supervisor kill; route it (and SIGINT) into
    # the same graceful path the `shutdown` verb takes, so the final
    # snapshot is cut no matter how the process is asked to stop.
    def _on_signal(signame: str) -> None:
        print("received %s; closing gracefully" % signame)
        sys.stdout.flush()
        frontend.request_stop()

    loop = asyncio.get_running_loop()
    installed = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, _on_signal, signum.name)
        except (NotImplementedError, ValueError, RuntimeError):
            continue  # platforms without loop signal support
        installed.append(signum)
    try:
        await frontend.wait_stopped()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        await frontend.close()
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Fixpoint analysis: existence, uniqueness, count, least fixpoint."""
    program = _load_program(args.program, carrier=args.carrier)
    db = _load_database(args.db, program)
    analysis = analyze_fixpoints(program, db, count_limit=args.count_limit)
    print("fixpoint exists : %s" % analysis.exists)
    print("unique          : %s" % analysis.unique)
    print(
        "count           : %s"
        % (">%d" % args.count_limit if analysis.count is None else analysis.count)
    )
    print("least exists    : %s" % analysis.least_exists)
    if analysis.least is not None:
        print("least fixpoint:")
        _print_relations(analysis.least)
    elif analysis.sample is not None:
        print("sample fixpoint:")
        _print_relations(analysis.sample)
    return 0


def cmd_classify(args: argparse.Namespace) -> int:
    """Report a program's class, strata, safety, and engine support."""
    program = _load_program(args.program)
    kind = classify(program)
    support = EngineSupport.for_program(program)
    print("class            : %s" % kind.value)
    print("IDB predicates   : %s" % ", ".join(sorted(program.idb_predicates)))
    print("EDB predicates   : %s" % ", ".join(sorted(program.edb_predicates)))
    print("safety           : %s" % safety_report(program))
    print("least fixpoint ok: %s" % support.least_fixpoint)
    print("stratified ok    : %s" % support.stratified)
    print("inflationary ok  : %s (always)" % support.inflationary)
    if support.stratified:
        from .core.semantics import stratify

        for i, layer in enumerate(stratify(program)):
            print("stratum %d        : %s" % (i, ", ".join(sorted(layer))))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DATALOG¬ engines and fixpoint analysis "
        "(Kolaitis & Papadimitriou, 'Why Not Negation by Fixpoint?')",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="evaluate a program on a CSV database")
    run.add_argument("program", help="path to a .dl program file")
    run.add_argument("--db", required=True, help="directory of <name>.csv files")
    run.add_argument(
        "--semantics",
        choices=sorted(_ENGINES) + ["wellfounded"],
        default="inflationary",
    )
    run.add_argument("--carrier", default=None, help="goal predicate")
    run.set_defaults(fn=cmd_run)

    update = sub.add_parser(
        "update", help="apply a CSV delta to a materialized view"
    )
    update.add_argument("program", help="path to a .dl program file")
    update.add_argument("--db", required=True, help="directory of <name>.csv files")
    update.add_argument(
        "--delta",
        required=True,
        action="append",
        help="directory of <name>.insert.csv / <name>.delete.csv files "
        "(repeatable; see --batch)",
    )
    update.add_argument(
        "--batch",
        action="store_true",
        help="apply all --delta directories as one transaction "
        "(a single maintenance pass over the composed delta)",
    )
    update.add_argument(
        "--semantics",
        choices=["stratified", "inflationary", "wellfounded"],
        default="stratified",
    )
    update.add_argument("--carrier", default=None, help="goal predicate")
    update.add_argument(
        "--out", default=None, help="write the post-delta database here"
    )
    update.set_defaults(fn=cmd_update)

    serve = sub.add_parser(
        "serve", help="run the live view server (JSON-lines TCP)"
    )
    serve.add_argument(
        "program",
        nargs="?",
        default=None,
        help="path to a .dl program file (optional when --state recovers)",
    )
    serve.add_argument(
        "--db", default=None, help="directory of <name>.csv files (fresh start)"
    )
    serve.add_argument(
        "--state",
        default=None,
        help="state directory for the write-ahead delta log + snapshots; "
        "restarting on it recovers by replay",
    )
    serve.add_argument("--name", default="default", help="view name")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7464)
    serve.add_argument(
        "--semantics",
        choices=["stratified", "inflationary", "wellfounded"],
        default="stratified",
    )
    serve.add_argument("--carrier", default=None, help="goal predicate")
    serve.add_argument(
        "--tick-ms",
        type=float,
        default=10.0,
        help="writer linger per batch: concurrent deltas arriving within "
        "one tick share a single maintenance pass",
    )
    serve.add_argument(
        "--snapshot-every",
        type=int,
        default=64,
        help="cut a snapshot (pruning the WAL behind it) every N commits",
    )
    serve.add_argument(
        "--log-level",
        default="info",
        choices=["debug", "info", "warning", "error"],
        help="stdlib logging level for startup/recovery/slow-op events",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard fixpoints and maintenance across N worker processes "
        "(0 = in-process, no pool)",
    )
    serve.set_defaults(fn=cmd_serve)

    explain = sub.add_parser(
        "explain",
        help="print compiled rule plans; --profile adds a phase breakdown",
    )
    explain.add_argument("program", help="path to a .dl program file")
    explain.add_argument("--db", required=True, help="directory of <name>.csv files")
    explain.add_argument(
        "--semantics",
        choices=["auto"] + sorted(_ENGINES) + ["wellfounded"],
        default="auto",
        help="engine to profile under; 'auto' picks stratified when the "
        "program is stratifiable, wellfounded otherwise",
    )
    explain.add_argument("--carrier", default=None, help="goal predicate")
    explain.add_argument(
        "--profile",
        action="store_true",
        help="evaluate under metrics + span tracing and print the "
        "phase-attributed time/row breakdown",
    )
    explain.add_argument(
        "--trace-out",
        default=None,
        help="write the profile's span forest as Chrome trace-event JSON",
    )
    explain.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        help="log spans slower than this many milliseconds via logging",
    )
    explain.add_argument(
        "--workers",
        type=int,
        default=0,
        help="profile the sharded executor with N worker processes "
        "(0 = in-process engine)",
    )
    explain.set_defaults(fn=cmd_explain)

    analyze = sub.add_parser("analyze", help="fixpoint existence/uniqueness/least")
    analyze.add_argument("program")
    analyze.add_argument("--db", required=True)
    analyze.add_argument("--count-limit", type=int, default=10_000)
    analyze.add_argument("--carrier", default=None)
    analyze.set_defaults(fn=cmd_analyze)

    cls = sub.add_parser("classify", help="program class / strata / safety")
    cls.add_argument("program")
    cls.set_defaults(fn=cmd_classify)

    lint = sub.add_parser(
        "lint", help="static analysis: spanned diagnostics with stable codes"
    )
    lint.add_argument("program", help="path to a .dl program file")
    lint.add_argument(
        "--db",
        default=None,
        help="directory of <name>.csv files; enables database-compatibility "
        "and unused-relation checks and seeds column-type inference",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the schema-stable JSON report document",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="promote warnings to errors for the exit status",
    )
    lint.add_argument("--carrier", default=None, help="goal predicate")
    lint.set_defaults(fn=cmd_lint)
    return parser


def main(argv=None) -> int:
    """Entry point used by ``python -m repro``."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
