"""Core formalism: DATALOG¬ programs, the operator Theta, and semantics."""

from .literals import Atom, Eq, Negation, Neq
from .operator import empty_idb, full_idb, is_fixpoint, theta
from .parser import parse_atom, parse_program, parse_rule
from .program import Program, ProgramError
from .rules import Rule, rule
from .terms import Constant, Variable, term

__all__ = [
    "Atom",
    "Constant",
    "Eq",
    "Negation",
    "Neq",
    "Program",
    "ProgramError",
    "Rule",
    "empty_idb",
    "full_idb",
    "is_fixpoint",
    "parse_atom",
    "parse_program",
    "parse_rule",
    "rule",
    "term",
    "theta",
    "Variable",
]
