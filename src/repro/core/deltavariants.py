"""Delta-rule construction: differentiating a rule w.r.t. one literal.

Incremental evaluation — view maintenance, and since PR 5 incremental
*grounding* — differentiates each rule with respect to one body-literal
position at a time.  For a rule ``H :- L_0, ..., L_{k-1}`` and a
position ``i``, the *delta variant* reads

* the post-change value of every literal before ``i``,
* the change set (of the appropriate sign) at ``i``, and
* the pre-change value of every literal after ``i``,

which is the telescoping decomposition of ``body(new) - body(old)``:
summed over ``i``, the variants enumerate exactly the derivations gained
(and, with the opposite sign, lost) by the change — each gained/lost
derivation is counted once, at the first position where its literals
differ between the two states.  Negated literals differentiate through
the complement: ``!P`` *gains* instances where ``P`` lost tuples and
loses instances where ``P`` gained them.

All variants are ordinary rules over alias predicate names
(``P@old``, ``P@new``, ``P@ins``, ``P@del`` — ``@`` cannot appear in a
parsed program, so aliases can never collide with user predicates), so
they compile through the ordinary planner and run on the batch executor;
the change-set aliases are declared *small* so plans join through the
delta first.

This module lives in ``core`` (rather than ``repro.materialize``, where
it originated) because the grounder's incremental ground-program
patching needs the same construction and ``core`` cannot import
``materialize`` without a cycle; :mod:`repro.materialize.variants`
re-exports everything for its callers.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

from .literals import Atom, Comparison, Negation
from .rules import Rule

OLD = "@old"
NEW = "@new"
INS = "@ins"
DEL = "@del"


def old_name(pred: str) -> str:
    """Alias of ``pred``'s pre-change value."""
    return pred + OLD


def new_name(pred: str) -> str:
    """Alias of ``pred``'s post-change value."""
    return pred + NEW


def ins_name(pred: str) -> str:
    """Alias of ``pred``'s effective insertions."""
    return pred + INS


def del_name(pred: str) -> str:
    """Alias of ``pred``'s effective deletions."""
    return pred + DEL


def _aliased(literal, suffix: str):
    """The literal reading its predicate under an alias suffix."""
    if isinstance(literal, Atom):
        return Atom(literal.pred + suffix, literal.args)
    if isinstance(literal, Negation):
        return Negation(Atom(literal.atom.pred + suffix, literal.atom.args))
    return literal  # comparisons carry no predicate


def delta_variant(rule: Rule, position: int, gained: bool) -> Rule:
    """The delta variant of ``rule`` differentiating ``position``.

    ``gained=True`` builds the variant enumerating derivations the
    change *adds* (position reads ``P@ins`` for a positive literal,
    ``P@del`` — positively — for a negated one); ``gained=False`` the
    derivations it *removes* (signs swapped).  Positions before
    ``position`` read ``@new`` values, positions after read ``@old``.
    """
    body: List = []
    for j, lit in enumerate(rule.body):
        if isinstance(lit, Comparison):
            body.append(lit)
            continue
        if j < position:
            body.append(_aliased(lit, NEW))
        elif j > position:
            body.append(_aliased(lit, OLD))
        else:
            if isinstance(lit, Atom):
                body.append(Atom(lit.pred + (INS if gained else DEL), lit.args))
            else:
                atom = lit.atom
                body.append(Atom(atom.pred + (DEL if gained else INS), atom.args))
    return Rule(rule.head, body)


def changeable_positions(rule: Rule, changeable: FrozenSet[str]) -> List[int]:
    """Body positions whose literal reads a predicate in ``changeable``."""
    out = []
    for i, lit in enumerate(rule.body):
        if isinstance(lit, Atom) and lit.pred in changeable:
            out.append(i)
        elif isinstance(lit, Negation) and lit.atom.pred in changeable:
            out.append(i)
    return out


class PlanCache:
    """A consumer-local memo of compiled delta-variant plans.

    Compilation still routes through the shared
    :data:`~repro.core.planning.PLAN_STORE` (so identical variants are
    shared across consumers and show up in its stats), but each consumer
    keeps its own references: maintenance plans must survive LRU
    eviction and the ``invalidate(db=...)`` calls triggered by the very
    deltas the consumer applies.  Variant plans are compiled without a
    database (aliases carry no statistics) so their keys — and hence
    this memo — stay valid across updates.
    """

    __slots__ = ("small", "_plans")

    def __init__(self, small: FrozenSet[str]) -> None:
        self.small = small
        self._plans: Dict[Rule, "RulePlan"] = {}

    def plan(self, rule: Rule) -> "RulePlan":
        from .planning import PLAN_STORE

        plan = self._plans.get(rule)
        if plan is None:
            plan = self._plans[rule] = PLAN_STORE.rule_plan(
                rule, db=None, small_preds=self.small
            )
        return plan
