"""Fixpoint notions from Section 2: fixpoints, comparison, least fixpoints.

An IDB valuation ``S`` (a ``{pred: Relation}`` map) is a fixpoint of
``(pi, D)`` when ``Theta(S) = S``.  Valuations are ordered coordinatewise:
``S <= S'`` iff ``S_i`` is a subset of ``S'_i`` for every IDB predicate.  A
fixpoint is *least* when it is below every other fixpoint.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..db.database import Database
from .operator import IDBMap, theta
from .program import Program


def idb_leq(left: IDBMap, right: IDBMap) -> bool:
    """Coordinatewise inclusion ``left <= right``.

    Both maps must be over the same predicates.
    """
    if set(left) != set(right):
        raise ValueError(
            "valuations over different predicates: %s vs %s"
            % (sorted(left), sorted(right))
        )
    return all(left[p].issubset(right[p]) for p in left)


def idb_equal(left: IDBMap, right: IDBMap) -> bool:
    """Coordinatewise equality of two IDB valuations."""
    return idb_leq(left, right) and idb_leq(right, left)


def idb_intersection(valuations: Iterable[IDBMap]) -> IDBMap:
    """Coordinatewise intersection of a non-empty family of valuations.

    This is the object at the heart of Theorem 3: *"(pi, D) has a least
    fixpoint if and only if the (coordinatewise) intersection of all
    fixpoints is a fixpoint."*
    """
    valuations = list(valuations)
    if not valuations:
        raise ValueError("intersection of an empty family of valuations")
    out = dict(valuations[0])
    for v in valuations[1:]:
        for p in out:
            out[p] = out[p].intersection(v[p])
    return out


def idb_union(valuations: Iterable[IDBMap]) -> IDBMap:
    """Coordinatewise union of a non-empty family of valuations."""
    valuations = list(valuations)
    if not valuations:
        raise ValueError("union of an empty family of valuations")
    out = dict(valuations[0])
    for v in valuations[1:]:
        for p in out:
            out[p] = out[p].union(v[p])
    return out


def incomparable(left: IDBMap, right: IDBMap) -> bool:
    """True when neither valuation is coordinatewise below the other."""
    return not idb_leq(left, right) and not idb_leq(right, left)


def is_fixpoint(program: Program, db: Database, idb: IDBMap) -> bool:
    """``Theta(idb) == idb``, the defining equation of a fixpoint."""
    return idb_equal(theta(program, db, idb), {p: r.with_name(p) for p, r in idb.items()})


def least_among(fixpoints: List[IDBMap]) -> Optional[IDBMap]:
    """Return the least element of a list of valuations, if one exists.

    Used to determine whether an exhaustively enumerated fixpoint family
    possesses a least member (it may not: the paper's even cycles carry two
    incomparable fixpoints).
    """
    for candidate in fixpoints:
        if all(idb_leq(candidate, other) for other in fixpoints):
            return candidate
    return None


def total_idb_size(idb: IDBMap) -> int:
    """Total number of tuples across an IDB valuation."""
    return sum(len(r) for r in idb.values())
