"""Grounding: instantiating a program over a database's universe.

A *ground rule* is a rule instance where every variable has been replaced by
a universe element, the EDB literals and comparisons have been checked (and
dropped), and only IDB literals remain:

    head  <-  p_1, ..., p_a, not n_1, ..., not n_b

with ``head``, ``p_i``, ``n_j`` ground IDB atoms.  The fixpoint condition
``Theta(S) = S`` then becomes, for every ground IDB atom ``h``,

    h in S  <=>  some ground rule for h has all p_i in S and no n_j in S,

which is exactly the Boolean system compiled to CNF by
:mod:`repro.core.satreduction`, and the input to the well-founded and
brute-force-enumeration engines.

Grounding binds variables through positive EDB atoms first (joins) and
completes the remaining variables over the universe, pruning with EDB
negations and comparisons as soon as their variables are bound.  Since the
planner refactor this is done by compiling the *EDB projection* of each
rule (its positive EDB atoms plus EDB-only filters, under a pseudo-head
carrying every rule variable) with :mod:`repro.core.planning` and
enumerating the plan's bindings — IDB literals stay symbolic, and the
cached relation indexes are shared with the fixpoint engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..db.database import Database
from ..db.relation import Relation
from .literals import Atom, Eq, Negation, Neq
from .planning import PLAN_STORE, solve_plan
from .program import Program
from .rules import Rule

GroundAtom = Tuple[str, Tuple[Any, ...]]
"""A ground IDB atom, keyed as ``(predicate, value_tuple)``."""


@dataclass(frozen=True)
class GroundRule:
    """One ground instance: ``head <- pos..., not neg...`` over IDB atoms."""

    head: GroundAtom
    pos: Tuple[GroundAtom, ...]
    neg: Tuple[GroundAtom, ...]

    def fires(
        self,
        true_atoms: Set[GroundAtom],
        negation_reference: Optional[Set[GroundAtom]] = None,
    ) -> bool:
        """Whether the body holds under ``true_atoms``.

        Positive literals are checked against ``true_atoms``.  Negative
        literals ``not n`` hold when ``n`` is absent from
        ``negation_reference`` (default: ``true_atoms`` itself).  Passing a
        separate reference is what the alternating-fixpoint (well-founded)
        computation needs.
        """
        if not all(p in true_atoms for p in self.pos):
            return False
        reference = true_atoms if negation_reference is None else negation_reference
        return all(n not in reference for n in self.neg)

    def __str__(self) -> str:
        def fmt(a: GroundAtom) -> str:
            return "%s(%s)" % (a[0], ", ".join(map(str, a[1])))

        body = [fmt(p) for p in self.pos] + ["!%s" % fmt(n) for n in self.neg]
        if not body:
            return "%s." % fmt(self.head)
        return "%s :- %s." % (fmt(self.head), ", ".join(body))


class GroundProgram:
    """The full ground instantiation of ``(program, db)``.

    Attributes
    ----------
    rules:
        All ground rules (IDB literals only).
    by_head:
        Ground rules grouped by head atom.
    derivable:
        Atoms heading at least one ground rule.  Any fixpoint is a subset
        of this set: ``Theta`` never produces an underivable atom.
    """

    def __init__(self, program: Program, db: Database, rules: Iterable[GroundRule]) -> None:
        self.program = program
        self.db = db
        self.rules: Tuple[GroundRule, ...] = tuple(rules)
        by_head: Dict[GroundAtom, List[GroundRule]] = {}
        for r in self.rules:
            by_head.setdefault(r.head, []).append(r)
        self.by_head: Dict[GroundAtom, List[GroundRule]] = by_head
        self.derivable: FrozenSet[GroundAtom] = frozenset(by_head)

    def __len__(self) -> int:
        return len(self.rules)

    def atom_space_size(self) -> int:
        """Size of the full IDB atom space ``sum_i |A|^{n_i}``."""
        n = len(self.db.universe)
        return sum(n ** self.program.arity(p) for p in self.program.idb_predicates)

    def is_fixpoint(self, atoms: Set[GroundAtom]) -> bool:
        """Check ``Theta(S) = S`` using the ground system.

        ``atoms`` must contain ground IDB atoms only.
        """
        derived = {
            head
            for head, rules in self.by_head.items()
            if any(r.fires(atoms) for r in rules)
        }
        return derived == set(atoms)

    def to_idb_map(self, atoms: Set[GroundAtom]) -> Dict[str, Relation]:
        """Convert a ground-atom set to a ``{pred: Relation}`` valuation."""
        grouped: Dict[str, Set[Tuple]] = {p: set() for p in self.program.idb_predicates}
        for pred, values in atoms:
            grouped[pred].add(values)
        return {
            p: Relation(p, self.program.arity(p), tuples)
            for p, tuples in grouped.items()
        }

    def from_idb_map(self, idb: Dict[str, Relation]) -> Set[GroundAtom]:
        """Convert a ``{pred: Relation}`` valuation to a ground-atom set."""
        return {
            (pred, tuple(values))
            for pred, rel in idb.items()
            for values in rel
        }


@lru_cache(maxsize=4096)
def _edb_projection(rule: Rule, idb: FrozenSet[str]) -> Rule:
    """The EDB projection of ``rule``, as a pseudo-rule.

    It keeps the positive EDB atoms and EDB-only filters, under a
    synthetic head listing *every* rule variable so the plan's
    active-domain completion covers variables that occur only in IDB
    literals (which stay symbolic).  The plan itself is fetched from the
    shared plan store under a (rule, database) key, so repeated
    groundings of the same input — the well-founded engine, the SAT
    reduction, enumeration — compile once while join ordering still sees
    the database's cardinalities.
    """
    edb_body = [
        t
        for t in rule.body
        if (isinstance(t, Atom) and t.pred not in idb)
        or isinstance(t, (Eq, Neq))
        or (isinstance(t, Negation) and t.atom.pred not in idb)
    ]
    all_vars = sorted(rule.variables(), key=lambda v: v.name)
    return Rule(Atom("__grounding__", tuple(all_vars)), edb_body)


def ground_rule_instances(
    rule: Rule, program: Program, interp: Database
) -> List[GroundRule]:
    """All ground instances of one rule over the database's universe.

    EDB literals and comparisons are solved away during instantiation;
    the returned instances carry only IDB literals.
    """
    idb = program.idb_predicates
    idb_positives = [a for a in rule.positive_atoms() if a.pred in idb]
    idb_negatives = [
        t for t in rule.body if isinstance(t, Negation) and t.atom.pred in idb
    ]

    plan = PLAN_STORE.rule_plan(_edb_projection(rule, idb), db=interp)
    # Observations feed the same store the projection compiles through,
    # so repeated groundings benefit from recorded join selectivities.
    subs = solve_plan(plan, interp, stats=PLAN_STORE.statistics)

    out: List[GroundRule] = []
    for sub in subs:
        head = (rule.head.pred, rule.head.ground_tuple(sub))
        pos = tuple((a.pred, a.ground_tuple(sub)) for a in idb_positives)
        neg = tuple((n.atom.pred, n.atom.ground_tuple(sub)) for n in idb_negatives)
        out.append(GroundRule(head, pos, neg))
    return out


def ground_program(program: Program, db: Database) -> GroundProgram:
    """Ground every rule of ``program`` over ``db``.

    Duplicate ground instances (same head and body) are collapsed.
    """
    interp = db
    seen: Set[GroundRule] = set()
    ordered: List[GroundRule] = []
    for rule in program.rules:
        for g in ground_rule_instances(rule, program, interp):
            if g not in seen:
                seen.add(g)
                ordered.append(g)
    return GroundProgram(program, db, ordered)
