"""Grounding: instantiating a program over a database's universe.

A *ground rule* is a rule instance where every variable has been replaced by
a universe element, the EDB literals and comparisons have been checked (and
dropped), and only IDB literals remain:

    head  <-  p_1, ..., p_a, not n_1, ..., not n_b

with ``head``, ``p_i``, ``n_j`` ground IDB atoms.  The fixpoint condition
``Theta(S) = S`` then becomes, for every ground IDB atom ``h``,

    h in S  <=>  some ground rule for h has all p_i in S and no n_j in S,

which is exactly the Boolean system compiled to CNF by
:mod:`repro.core.satreduction`, and the input to the well-founded and
brute-force-enumeration engines.

Grounding binds variables through positive EDB atoms first (joins) and
completes the remaining variables over the universe, pruning with EDB
negations and comparisons as soon as their variables are bound.  Since the
planner refactor this is done by compiling the *EDB projection* of each
rule (its positive EDB atoms plus EDB-only filters, under a pseudo-head
carrying every rule variable) with :mod:`repro.core.planning` and
enumerating the plan's bindings — IDB literals stay symbolic, and the
cached relation indexes are shared with the fixpoint engines.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from ..db.database import Database
from ..db.relation import Relation
from .deltavariants import (
    PlanCache,
    del_name,
    delta_variant,
    ins_name,
    new_name,
    old_name,
)
from ..obs import RECORDER, TRACER
from .literals import Atom, Eq, Negation, Neq
from .planning import PLAN_STORE, solve_plan
from .program import Program
from .rules import Rule

GroundAtom = Tuple[str, Tuple[Any, ...]]
"""A ground IDB atom, keyed as ``(predicate, value_tuple)``."""


@dataclass(frozen=True)
class GroundRule:
    """One ground instance: ``head <- pos..., not neg...`` over IDB atoms."""

    head: GroundAtom
    pos: Tuple[GroundAtom, ...]
    neg: Tuple[GroundAtom, ...]

    def fires(
        self,
        true_atoms: Set[GroundAtom],
        negation_reference: Optional[Set[GroundAtom]] = None,
    ) -> bool:
        """Whether the body holds under ``true_atoms``.

        Positive literals are checked against ``true_atoms``.  Negative
        literals ``not n`` hold when ``n`` is absent from
        ``negation_reference`` (default: ``true_atoms`` itself).  Passing a
        separate reference is what the alternating-fixpoint (well-founded)
        computation needs.
        """
        if not all(p in true_atoms for p in self.pos):
            return False
        reference = true_atoms if negation_reference is None else negation_reference
        return all(n not in reference for n in self.neg)

    def __str__(self) -> str:
        def fmt(a: GroundAtom) -> str:
            return "%s(%s)" % (a[0], ", ".join(map(str, a[1])))

        body = [fmt(p) for p in self.pos] + ["!%s" % fmt(n) for n in self.neg]
        if not body:
            return "%s." % fmt(self.head)
        return "%s :- %s." % (fmt(self.head), ", ".join(body))


class GroundProgram:
    """The full ground instantiation of ``(program, db)``.

    Attributes
    ----------
    rules:
        All ground rules (IDB literals only).
    by_head:
        Ground rules grouped by head atom.
    derivable:
        Atoms heading at least one ground rule.  Any fixpoint is a subset
        of this set: ``Theta`` never produces an underivable atom.
    """

    def __init__(self, program: Program, db: Database, rules: Iterable[GroundRule]) -> None:
        self.program = program
        self.db = db
        self.rules: Tuple[GroundRule, ...] = tuple(rules)
        by_head: Dict[GroundAtom, List[GroundRule]] = {}
        for r in self.rules:
            by_head.setdefault(r.head, []).append(r)
        self.by_head: Dict[GroundAtom, List[GroundRule]] = by_head
        self.derivable: FrozenSet[GroundAtom] = frozenset(by_head)

    def __len__(self) -> int:
        return len(self.rules)

    def atom_space_size(self) -> int:
        """Size of the full IDB atom space ``sum_i |A|^{n_i}``."""
        n = len(self.db.universe)
        return sum(n ** self.program.arity(p) for p in self.program.idb_predicates)

    def is_fixpoint(self, atoms: Set[GroundAtom]) -> bool:
        """Check ``Theta(S) = S`` using the ground system.

        ``atoms`` must contain ground IDB atoms only.
        """
        derived = {
            head
            for head, rules in self.by_head.items()
            if any(r.fires(atoms) for r in rules)
        }
        return derived == set(atoms)

    def to_idb_map(self, atoms: Set[GroundAtom]) -> Dict[str, Relation]:
        """Convert a ground-atom set to a ``{pred: Relation}`` valuation."""
        grouped: Dict[str, Set[Tuple]] = {p: set() for p in self.program.idb_predicates}
        for pred, values in atoms:
            grouped[pred].add(values)
        return {
            p: Relation(p, self.program.arity(p), tuples)
            for p, tuples in grouped.items()
        }

    def from_idb_map(self, idb: Dict[str, Relation]) -> Set[GroundAtom]:
        """Convert a ``{pred: Relation}`` valuation to a ground-atom set."""
        return {
            (pred, tuple(values))
            for pred, rel in idb.items()
            for values in rel
        }


@lru_cache(maxsize=4096)
def _edb_projection(rule: Rule, idb: FrozenSet[str]) -> Rule:
    """The EDB projection of ``rule``, as a pseudo-rule.

    It keeps the positive EDB atoms and EDB-only filters, under a
    synthetic head listing *every* rule variable so the plan's
    active-domain completion covers variables that occur only in IDB
    literals (which stay symbolic).  The plan itself is fetched from the
    shared plan store under a (rule, database) key, so repeated
    groundings of the same input — the well-founded engine, the SAT
    reduction, enumeration — compile once while join ordering still sees
    the database's cardinalities.
    """
    edb_body = [
        t
        for t in rule.body
        if (isinstance(t, Atom) and t.pred not in idb)
        or isinstance(t, (Eq, Neq))
        or (isinstance(t, Negation) and t.atom.pred not in idb)
    ]
    all_vars = sorted(rule.variables(), key=lambda v: v.name)
    return Rule(Atom("__grounding__", tuple(all_vars)), edb_body)


def _idb_literals(rule: Rule, idb: FrozenSet[str]):
    """The rule's IDB literals: ``(positive atoms, negated literals)``."""
    idb_positives = [a for a in rule.positive_atoms() if a.pred in idb]
    idb_negatives = [
        t for t in rule.body if isinstance(t, Negation) and t.atom.pred in idb
    ]
    return idb_positives, idb_negatives


def _instances(rule, idb_positives, idb_negatives, subs) -> List[GroundRule]:
    """Ground instances of ``rule`` under each total binding in ``subs``."""
    out: List[GroundRule] = []
    for sub in subs:
        head = (rule.head.pred, rule.head.ground_tuple(sub))
        pos = tuple((a.pred, a.ground_tuple(sub)) for a in idb_positives)
        neg = tuple((n.atom.pred, n.atom.ground_tuple(sub)) for n in idb_negatives)
        out.append(GroundRule(head, pos, neg))
    return out


def ground_rule_instances(
    rule: Rule, program: Program, interp: Database
) -> List[GroundRule]:
    """All ground instances of one rule over the database's universe.

    EDB literals and comparisons are solved away during instantiation;
    the returned instances carry only IDB literals.  The list may repeat
    a ground rule: distinct bindings of variables occurring only in EDB
    literals collapse to the same IDB-only instance.
    :func:`ground_program` deduplicates;
    :class:`LiveGroundProgram` *counts* the multiplicity, which is what
    makes its patching under EDB deltas exact.
    """
    idb = program.idb_predicates
    idb_positives, idb_negatives = _idb_literals(rule, idb)

    plan = PLAN_STORE.rule_plan(_edb_projection(rule, idb), db=interp)
    # Observations feed the same store the projection compiles through,
    # so repeated groundings benefit from recorded join selectivities.
    subs = solve_plan(plan, interp, stats=PLAN_STORE.statistics)
    return _instances(rule, idb_positives, idb_negatives, subs)


def ground_program(program: Program, db: Database) -> GroundProgram:
    """Ground every rule of ``program`` over ``db``.

    Duplicate ground instances (same head and body) are collapsed.
    """
    started = time.perf_counter()
    with TRACER.span("ground") as sp:
        interp = db
        seen: Set[GroundRule] = set()
        ordered: List[GroundRule] = []
        for rule in program.rules:
            for g in ground_rule_instances(rule, program, interp):
                if g not in seen:
                    seen.add(g)
                    ordered.append(g)
        if sp:
            sp["rows_out"] = len(ordered)
    if RECORDER.enabled:
        RECORDER.observe(
            "repro_engine_ground_seconds", time.perf_counter() - started
        )
    return GroundProgram(program, db, ordered)


class GroundingPatchError(ValueError):
    """The ground program cannot be patched; re-ground from scratch.

    Raised when an update enlarges the universe: every completion
    variable of every EDB projection quantifies over the universe, so
    growth multiplies binding spaces behind the backs of the maintained
    instance counts (the same reason the counting maintenance of
    :mod:`repro.materialize.counting` falls back).
    """


class LiveGroundProgram:
    """A ground program kept live under EDB deltas.

    Grounds ``(program, db)`` once, keeping for every ground rule the
    number of EDB-projection bindings that produce it, then *patches*
    the instantiation per update instead of re-grounding: the telescoping
    delta variants of :mod:`repro.core.deltavariants` — applied to each
    rule's EDB projection under persistent ``@old``/``@new`` alias
    relations — enumerate exactly the bindings the delta gained and
    lost, and a ground rule enters (leaves) the instantiation when its
    binding count rises from (returns to) zero.  Work per update is
    proportional to the delta's binding footprint: every variant joins
    through the small ``@ins``/``@del`` change sets first.

    The alias relations :meth:`~repro.db.relation.Relation.evolve`
    across updates, so their cached indexes are patched, never rebuilt —
    the same machinery :class:`repro.materialize.view.MaterializedView`
    uses for its maintenance aliases.  Plans compiled against the
    *superseded* database value are evicted from the shared store by
    :meth:`~repro.db.database.Database.apply_delta`'s lineage purge;
    the variant plans this class runs are compiled database-free (keyed
    by rule + alias names only), so they survive every update.
    """

    __slots__ = ("program", "db", "_counts", "_aliases", "_plans", "_rule_info")

    def __init__(self, program: Program, db: Database) -> None:
        self.program = program
        self.db = db
        counts: Counter = Counter()
        for rule in program.rules:
            counts.update(ground_rule_instances(rule, program, db))
        self._counts: Dict[GroundRule, int] = counts
        small = set()
        for name in db.relation_names():
            small.add(ins_name(name))
            small.add(del_name(name))
        self._plans = PlanCache(frozenset(small))
        self._aliases: Dict[str, Relation] = {}
        for name in db.relation_names():
            rel = db[name]
            self._aliases[old_name(name)] = rel.with_name(old_name(name))
            self._aliases[new_name(name)] = rel.with_name(new_name(name))
        # Everything derivable from the static program is derived once:
        # per rule, its IDB-literal split and — per EDB predicate the
        # projection reads — the (gained, lost) delta-variant pair of
        # every position reading it.  ``apply`` is a pure lookup; only
        # the plan executions are genuinely per-update work.
        idb = program.idb_predicates
        self._rule_info = []
        for rule in program.rules:
            proj = _edb_projection(rule, idb)
            variants_by_pred: Dict[str, List[Tuple[Rule, Rule]]] = {}
            for position, literal in enumerate(proj.body):
                if isinstance(literal, Atom):
                    pred = literal.pred
                elif isinstance(literal, Negation):
                    pred = literal.atom.pred
                else:
                    continue
                variants_by_pred.setdefault(pred, []).append(
                    (
                        delta_variant(proj, position, gained=True),
                        delta_variant(proj, position, gained=False),
                    )
                )
            self._rule_info.append(
                (rule, *_idb_literals(rule, idb), variants_by_pred)
            )

    @property
    def rules(self) -> FrozenSet[GroundRule]:
        """The current ground rules (positive binding count)."""
        return frozenset(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def apply(
        self,
        new_db: Database,
        changes: Mapping[str, Tuple[FrozenSet[Tuple], FrozenSet[Tuple]]],
    ) -> Tuple[FrozenSet[GroundRule], FrozenSet[GroundRule]]:
        """Patch the instantiation under an *effective* EDB delta.

        ``changes`` maps each changed relation to its effective
        ``(inserted, deleted)`` tuple sets against the pre-change
        database; ``new_db`` is the post-change database (same
        universe).  Returns the ``(added, removed)`` ground-rule sets.

        Raises
        ------
        GroundingPatchError
            When ``new_db``'s universe differs from the grounding
            universe — callers must rebuild from scratch then.
        """
        if new_db.universe != self.db.universe:
            raise GroundingPatchError(
                "universe changed (%d -> %d elements); the ground program "
                "must be rebuilt" % (len(self.db.universe), len(new_db.universe))
            )
        changed = frozenset(n for n, (ins, dels) in changes.items() if ins or dels)
        if not changed:
            self.db = new_db
            return frozenset(), frozenset()

        with TRACER.span("ground.patch") as sp:
            aliases = self._aliases
            change_rels: List[Relation] = []
            for name in changed:
                ins, dels = changes[name]
                arity = self.db[name].arity
                aliases[new_name(name)] = aliases[new_name(name)].evolve(ins, dels)
                change_rels.append(Relation(ins_name(name), arity, ins))
                change_rels.append(Relation(del_name(name), arity, dels))
            interp = Database(
                new_db.universe, list(aliases.values()) + change_rels, check=False
            )

            diff: Counter = Counter()
            for rule, idb_positives, idb_negatives, variants_by_pred in self._rule_info:
                for pred in changed:
                    for gained, lost in variants_by_pred.get(pred, ()):
                        for sign, variant in ((+1, gained), (-1, lost)):
                            # stats=None: alias/change-set sizes describe
                            # deltas, not relations — they must not feed the
                            # planner.
                            subs = solve_plan(
                                self._plans.plan(variant), interp, stats=None
                            )
                            for g in _instances(
                                rule, idb_positives, idb_negatives, subs
                            ):
                                diff[g] += sign

            added: Set[GroundRule] = set()
            removed: Set[GroundRule] = set()
            counts = self._counts
            for g, change in diff.items():
                if not change:
                    continue
                old = counts.get(g, 0)
                new = old + change
                if new < 0:
                    raise AssertionError(
                        "ground-instance count of %s fell below zero (%d)" % (g, new)
                    )
                if new == 0:
                    counts.pop(g, None)
                    if old:
                        removed.add(g)
                else:
                    counts[g] = new
                    if not old:
                        added.add(g)

            # The next update's pre-change state is this update's post-change
            # state: catch the @old aliases up by the same deltas.
            for name in changed:
                ins, dels = changes[name]
                aliases[old_name(name)] = aliases[old_name(name)].evolve(ins, dels)
            self.db = new_db
            if sp:
                sp["changed"] = len(changed)
                sp["rows_out"] = len(added) + len(removed)
        if RECORDER.enabled:
            RECORDER.inc("repro_ground_patches_total")
        return frozenset(added), frozenset(removed)
