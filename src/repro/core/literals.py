"""Literals: the building blocks of rule bodies.

Following Section 2 of the paper, a body literal is one of

* an atomic formula ``Q(x_1, ..., x_n)``           — :class:`Atom`
* a negated atomic formula ``not Q(x_1, ..., x_n)`` — :class:`Negation`
* an equality ``x_i = x_j``                         — :class:`Eq`
* an inequality ``x_i != x_j``                      — :class:`Neq`

Heads are always (positive) atoms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, Optional, Tuple, Union

from .terms import Constant, Term, Variable, term


@dataclass(frozen=True)
class Span:
    """A source position ``(line, column)``, both 1-based.

    Parsed rules and atoms carry their span so analysis diagnostics can
    point at real program text; programmatically built syntax has none.
    """

    line: int
    column: int

    def __str__(self) -> str:
        return "%d:%d" % (self.line, self.column)


@dataclass(frozen=True)
class Atom:
    """An atomic formula ``pred(args)``.

    ``span`` is provenance only — it never participates in equality or
    hashing, so a parsed atom and the same atom built in code are one
    value.
    """

    pred: str
    args: Tuple[Term, ...]
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def __init__(self, pred: str, args, span: Optional[Span] = None) -> None:
        object.__setattr__(self, "pred", pred)
        object.__setattr__(self, "args", tuple(term(a) for a in args))
        object.__setattr__(self, "span", span)

    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.args)

    def variables(self) -> FrozenSet[Variable]:
        """The set of variables among the arguments."""
        return frozenset(a for a in self.args if isinstance(a, Variable))

    def negate(self) -> "Negation":
        """The negated literal ``not self``."""
        return Negation(self)

    def substitute(self, binding) -> "Atom":
        """Apply a ``{Variable: value}`` binding, producing constants."""
        return Atom(
            self.pred,
            tuple(
                Constant(binding[a]) if isinstance(a, Variable) and a in binding else a
                for a in self.args
            ),
        )

    def ground_tuple(self, binding) -> Tuple[Any, ...]:
        """The value tuple of this atom under a total binding.

        Raises ``KeyError`` if some variable is unbound.
        """
        return tuple(
            binding[a] if isinstance(a, Variable) else a.value for a in self.args
        )

    def is_ground(self) -> bool:
        """True when all arguments are constants."""
        return all(isinstance(a, Constant) for a in self.args)

    def __str__(self) -> str:
        return "%s(%s)" % (self.pred, ", ".join(str(a) for a in self.args))


@dataclass(frozen=True)
class Negation:
    """A negated atomic formula ``not atom``."""

    atom: Atom

    def variables(self) -> FrozenSet[Variable]:
        """Variables of the underlying atom."""
        return self.atom.variables()

    def __str__(self) -> str:
        return "!%s" % self.atom


@dataclass(frozen=True)
class Eq:
    """An equality literal ``left = right``."""

    left: Term
    right: Term

    def __init__(self, left, right) -> None:
        object.__setattr__(self, "left", term(left))
        object.__setattr__(self, "right", term(right))

    def variables(self) -> FrozenSet[Variable]:
        """Variables among the two sides."""
        return frozenset(t for t in (self.left, self.right) if isinstance(t, Variable))

    def holds(self, lv: Any, rv: Any) -> bool:
        """Evaluate on two values."""
        return lv == rv

    def __str__(self) -> str:
        return "%s = %s" % (self.left, self.right)


@dataclass(frozen=True)
class Neq:
    """An inequality literal ``left != right``."""

    left: Term
    right: Term

    def __init__(self, left, right) -> None:
        object.__setattr__(self, "left", term(left))
        object.__setattr__(self, "right", term(right))

    def variables(self) -> FrozenSet[Variable]:
        """Variables among the two sides."""
        return frozenset(t for t in (self.left, self.right) if isinstance(t, Variable))

    def holds(self, lv: Any, rv: Any) -> bool:
        """Evaluate on two values."""
        return lv != rv

    def __str__(self) -> str:
        return "%s != %s" % (self.left, self.right)


Literal = Union[Atom, Negation, Eq, Neq]

Comparison = (Eq, Neq)
"""Tuple of comparison literal classes, for isinstance checks."""


def literal_variables(lit: Literal) -> FrozenSet[Variable]:
    """Variables of any literal kind."""
    return lit.variables()
