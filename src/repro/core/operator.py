"""The immediate consequence operator Theta of Section 2.

For a program pi with nondatabase relations ``S_1, ..., S_m`` and a database
``D`` with universe ``A``, the operator maps a sequence of IDB relation
values to the sequence

    Theta(S)_i = { a in A^{n_i} : D, S |= theta_1(a) or ... or theta_k(a) }

where ``theta_j`` is the existential formula of the ``j``-th rule for
``S_i`` (body variables not in the head are existentially quantified over
``A``).  Note that Theta *replaces* relation values — it is not cumulative —
so ``S`` is a fixpoint exactly when ``Theta(S) = S``.

Variables range over the whole universe (active-domain semantics), which is
what makes the paper's unsafe rules such as ``T(z) :- !Q(u), !T(w)``
meaningful.  Evaluation binds variables through positive literals first
(index-backed joins), interleaves comparison/negation filters as soon as
their variables are bound, and completes any remaining variables over the
universe one variable at a time so that filters prune early.

Since the planner refactor, rule evaluation is split in two:
:mod:`repro.core.planning` compiles each rule once into a
:class:`~repro.core.planning.RulePlan` (fixed join order, key columns,
filter schedule, batch program) which is then executed every round by
the set-at-a-time batch executor — negation as anti-join, completion
through negated atoms as a complement join — with indexes cached on the
immutable relations.  Compiled plans come from the process-wide
:data:`repro.core.planning.PLAN_STORE`, shared with every engine and the
grounder.  ``evaluate_rule``/``theta`` below compile transparently;
``evaluate_rule_legacy``/``theta_legacy`` keep the original
re-plan-every-call path as the tested-equivalent baseline.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..db.database import Database
from ..db.index import HashIndex
from ..db.relation import Relation
from .literals import Atom, Eq, Literal, Negation, Neq
from .planning import PLAN_STORE, ProgramPlan, execute_plan
from .program import Program
from .rules import Rule
from .terms import Constant, Variable

Binding = Dict[Variable, Any]
IDBMap = Dict[str, Relation]


def empty_idb(program: Program) -> IDBMap:
    """The all-empty IDB valuation (the iteration's starting point)."""
    return {
        p: Relation.empty(p, program.arity(p)) for p in program.idb_predicates
    }


def full_idb(program: Program, db: Database) -> IDBMap:
    """The all-full IDB valuation ``S_i = A^{n_i}``."""
    return {
        p: Relation.full(p, program.arity(p), db.universe)
        for p in program.idb_predicates
    }


def as_interpretation(program: Program, db: Database, idb: Optional[IDBMap] = None) -> Database:
    """Combine EDB database and an IDB valuation into one structure.

    Missing IDB relations default to empty.  IDB values already present in
    ``db`` are kept unless overridden by ``idb``.
    """
    merged: Dict[str, Relation] = {}
    for pred in program.idb_predicates:
        if idb is not None and pred in idb:
            merged[pred] = idb[pred].with_name(pred)
        elif pred in db:
            merged[pred] = db[pred]
        else:
            merged[pred] = Relation.empty(pred, program.arity(pred))
    return db.with_relations(merged.values())


def idb_of(program: Program, interp: Database) -> IDBMap:
    """Extract the IDB valuation out of an interpretation."""
    return {p: interp[p] for p in program.idb_predicates}


# ----------------------------------------------------------------------
# Rule evaluation
# ----------------------------------------------------------------------


def _relation_for(interp: Database, pred: str, arity: int) -> Relation:
    rel = interp.get(pred)
    if rel is None:
        return Relation.empty(pred, arity)
    return rel


def _match_tuple(atom: Atom, t: Tuple, sub: Binding) -> Optional[Binding]:
    """Try to extend ``sub`` so that ``atom`` matches tuple ``t``.

    Handles repeated variables within the atom (``E(X, X)``) and constants
    in argument positions.  Returns the extended binding, or ``None`` when
    the tuple is incompatible with ``sub``.
    """
    merged = dict(sub)
    for arg, value in zip(atom.args, t):
        if isinstance(arg, Constant):
            if arg.value != value:
                return None
        elif arg in merged:
            if merged[arg] != value:
                return None
        else:
            merged[arg] = value
    return merged


def _filter_ready(
    subs: List[Binding],
    filters: List[Literal],
    bound: Set[Variable],
    interp: Database,
    arities: Dict[str, int],
) -> Tuple[List[Binding], List[Literal]]:
    """Apply every filter whose variables are all bound; return the rest."""
    ready = [f for f in filters if f.variables() <= bound]
    rest = [f for f in filters if f.variables() - bound]
    for f in ready:
        subs = [s for s in subs if _filter_holds(f, s, interp, arities)]
        if not subs:
            break
    return subs, rest


def _term_value(t, sub: Binding) -> Any:
    return t.value if isinstance(t, Constant) else sub[t]


def _filter_holds(lit: Literal, sub: Binding, interp: Database, arities: Dict[str, int]) -> bool:
    if isinstance(lit, Negation):
        atom = lit.atom
        rel = _relation_for(interp, atom.pred, arities.get(atom.pred, atom.arity))
        return atom.ground_tuple(sub) not in rel
    if isinstance(lit, (Eq, Neq)):
        return lit.holds(_term_value(lit.left, sub), _term_value(lit.right, sub))
    raise TypeError("not a filter literal: %r" % (lit,))


def evaluate_rule(rule: Rule, interp: Database, arities: Optional[Dict[str, int]] = None) -> Set[Tuple]:
    """One-step consequences of a single rule on an interpretation.

    Returns the set of ground head tuples derivable from ``interp`` (which
    must contain values for every predicate the body mentions; missing
    relations are treated as empty).

    This is a thin compile-and-run wrapper over
    :mod:`repro.core.planning`: the rule is compiled to a
    :class:`~repro.core.planning.RulePlan` once (through the shared
    :data:`~repro.core.planning.PLAN_STORE`) and executed set-at-a-time
    by the batch executor with relation-cached indexes.  ``arities`` is
    kept for API compatibility; plans read arities off the atoms
    themselves.  The pre-planner evaluator survives as
    :func:`evaluate_rule_legacy` and is property-tested equivalent.
    """
    return execute_plan(
        PLAN_STORE.rule_plan(rule), interp, stats=PLAN_STORE.statistics
    )


def evaluate_rule_legacy(rule: Rule, interp: Database, arities: Optional[Dict[str, int]] = None) -> Set[Tuple]:
    """The original per-round evaluator: re-plans and re-indexes each call.

    Kept as the reference implementation for the planner's property tests
    and as the baseline of ``benchmarks/bench_planner.py``.
    """
    arities = arities or {}
    universe = tuple(sorted(interp.universe, key=repr))

    positives = list(rule.positive_atoms())
    filters: List[Literal] = [
        t for t in rule.body if isinstance(t, (Negation, Eq, Neq))
    ]
    bound: Set[Variable] = set()
    subs: List[Binding] = [{}]

    # Phase 0: variable-free filters (zero-ary negations, constant
    # comparisons) gate the rule before any atom is matched.
    subs, filters = _filter_ready(subs, filters, bound, interp, arities)

    # Phase 1: bind through positive atoms, most-connected first.
    remaining = positives[:]
    while remaining and subs:
        remaining.sort(
            key=lambda a: (
                -len(a.variables() & bound),
                len(_relation_for(interp, a.pred, arities.get(a.pred, a.arity))),
            )
        )
        atom = remaining.pop(0)
        rel = _relation_for(interp, atom.pred, arities.get(atom.pred, atom.arity))
        key_positions = [
            i
            for i, arg in enumerate(atom.args)
            if isinstance(arg, Constant) or arg in bound
        ]
        index = HashIndex(rel, key_positions)
        new_subs: List[Binding] = []
        for sub in subs:
            key = tuple(
                atom.args[i].value
                if isinstance(atom.args[i], Constant)
                else sub[atom.args[i]]
                for i in key_positions
            )
            for t in index.lookup(key):
                extended = _match_tuple(atom, t, sub)
                if extended is not None:
                    new_subs.append(extended)
        subs = new_subs
        bound |= atom.variables()
        subs, filters = _filter_ready(subs, filters, bound, interp, arities)

    # Phase 2: active-domain completion for the remaining variables,
    # one variable at a time so filters prune as early as possible.
    unbound = sorted(rule.variables() - bound, key=lambda v: v.name)
    while unbound and subs:
        # Prefer the variable that readies the most filters.
        def readiness(v: Variable) -> int:
            would_bind = bound | {v}
            return sum(1 for f in filters if f.variables() <= would_bind)

        unbound.sort(key=lambda v: (-readiness(v), v.name))
        var = unbound.pop(0)
        extended: List[Binding] = []
        for s in subs:
            for value in universe:
                ns = dict(s)
                ns[var] = value
                extended.append(ns)
        subs = extended
        bound.add(var)
        subs, filters = _filter_ready(subs, filters, bound, interp, arities)

    if not subs:
        return set()
    assert not filters, "filters left with unbound variables: %r" % filters
    return {rule.head.ground_tuple(sub) for sub in subs}


# ----------------------------------------------------------------------
# The operator Theta
# ----------------------------------------------------------------------


def theta(
    program: Program,
    db: Database,
    idb: Optional[IDBMap] = None,
    plan: Optional[ProgramPlan] = None,
) -> IDBMap:
    """Apply the consequence operator once: ``Theta(idb)``.

    ``db`` supplies the EDB relations (and, alternatively, current IDB
    values); ``idb`` overrides IDB values when given.  The result maps every
    IDB predicate to its *new* value — the paper's non-cumulative operator.

    Engines that iterate Theta fetch the program's plan once from the
    shared :data:`~repro.core.planning.PLAN_STORE` and pass the ``plan``;
    without one, the store is consulted per call, so even ad-hoc callers
    avoid re-planning.
    """
    interp = as_interpretation(program, db, idb)
    if plan is None:
        plan = PLAN_STORE.program_plan(program)
    derived = plan.consequences(interp)
    return {
        p: Relation(p, program.arity(p), tuples) for p, tuples in derived.items()
    }


def theta_legacy(program: Program, db: Database, idb: Optional[IDBMap] = None) -> IDBMap:
    """``theta`` via the pre-planner evaluator (reference/baseline path)."""
    interp = as_interpretation(program, db, idb)
    arities = program.arities
    derived: Dict[str, Set[Tuple]] = {p: set() for p in program.idb_predicates}
    for rule in program.rules:
        derived[rule.head.pred] |= evaluate_rule_legacy(rule, interp, arities)
    return {
        p: Relation(p, program.arity(p), tuples) for p, tuples in derived.items()
    }


def is_fixpoint(program: Program, db: Database, idb: Optional[IDBMap] = None) -> bool:
    """Check ``Theta(S) = S`` for the IDB valuation in ``idb``/``db``."""
    current = idb if idb is not None else idb_of(program, as_interpretation(program, db))
    return theta(program, db, current) == {
        p: r.with_name(p) for p, r in current.items()
    }
