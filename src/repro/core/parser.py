"""Textual syntax for DATALOG¬ programs.

Grammar (comments start with ``%`` or ``#`` and run to end of line)::

    program  := rule*
    rule     := atom ( ":-" literals )? "."
    literals := literal ("," literal)*
    literal  := "!" atom | "not" atom | atom | term "=" term | term "!=" term
    atom     := IDENT "(" term ("," term)* ")" | IDENT "(" ")"
    term     := VARIABLE | CONSTANT

Identifiers starting with an upper-case letter or ``_`` are variables;
lower-case identifiers, integers, and single-quoted strings are constants.

Example::

    % the paper's program pi_1
    T(X) :- E(Y, X), !T(Y).
"""

from __future__ import annotations

import re
from typing import List, Optional

from .literals import Atom, Eq, Literal, Negation, Neq, Span
from .program import Program
from .rules import Rule
from .terms import Constant, Term, Variable


class ParseError(ValueError):
    """Raised on malformed program text, with line/column context."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__("%s (line %d, column %d)" % (message, line, column))
        self.line = line
        self.column = column


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>[%\#][^\n]*)
  | (?P<ARROW>:-)
  | (?P<NEQ>!=)
  | (?P<NOT>not\b)
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<INT>-?\d+)
  | (?P<STRING>'(?:[^'\\]|\\.)*')
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
  | (?P<DOT>\.)
  | (?P<BANG>!)
  | (?P<EQ>=)
""",
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: str, text: str, line: int, column: int) -> None:
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return "_Token(%s, %r)" % (self.kind, self.text)


def _tokenize(text: str) -> List[_Token]:
    tokens = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError(
                "unexpected character %r" % text[pos], line, pos - line_start + 1
            )
        kind = m.lastgroup
        value = m.group()
        if kind not in ("WS", "COMMENT"):
            tokens.append(_Token(kind, value, line, m.start() - line_start + 1))
        newlines = value.count("\n")
        if newlines:
            line += newlines
            line_start = m.start() + value.rfind("\n") + 1
        pos = m.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str) -> None:
        self._tokens = _tokenize(text)
        self._pos = 0

    def _peek(self) -> Optional[_Token]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> _Token:
        tok = self._peek()
        if tok is None:
            last = self._tokens[-1] if self._tokens else _Token("EOF", "", 1, 1)
            raise ParseError("unexpected end of input", last.line, last.column)
        self._pos += 1
        return tok

    def _expect(self, kind: str) -> _Token:
        tok = self._next()
        if tok.kind != kind:
            raise ParseError(
                "expected %s, found %r" % (kind, tok.text), tok.line, tok.column
            )
        return tok

    # ----------------------------------------------------------------

    def parse_program(self) -> List[Rule]:
        rules = []
        while self._peek() is not None:
            rules.append(self.parse_rule())
        return rules

    def parse_rule(self) -> Rule:
        start = self._peek()
        span = Span(start.line, start.column) if start is not None else None
        head = self.parse_atom()
        tok = self._peek()
        body: List[Literal] = []
        if tok is not None and tok.kind == "ARROW":
            self._next()
            # Allow an empty body after ":-" (fact-schema form).
            if self._peek() is not None and self._peek().kind != "DOT":
                body.append(self.parse_literal())
                while self._peek() is not None and self._peek().kind == "COMMA":
                    self._next()
                    body.append(self.parse_literal())
        self._expect("DOT")
        return Rule(head, body, span=span)

    def parse_literal(self) -> Literal:
        tok = self._peek()
        if tok is None:
            raise ParseError("expected a literal", 0, 0)
        if tok.kind in ("BANG", "NOT"):
            self._next()
            return Negation(self.parse_atom())
        # Could be an atom or a comparison; decide by lookahead.
        if tok.kind == "IDENT" and self._lookahead_is_atom():
            return self.parse_atom()
        left = self.parse_term()
        op = self._next()
        if op.kind == "EQ":
            return Eq(left, self.parse_term())
        if op.kind == "NEQ":
            return Neq(left, self.parse_term())
        raise ParseError(
            "expected '=' or '!=' after term, found %r" % op.text, op.line, op.column
        )

    def _lookahead_is_atom(self) -> bool:
        nxt = self._pos + 1
        return nxt < len(self._tokens) and self._tokens[nxt].kind == "LPAREN"

    def parse_atom(self) -> Atom:
        name = self._expect("IDENT")
        self._expect("LPAREN")
        args: List[Term] = []
        if self._peek() is not None and self._peek().kind != "RPAREN":
            args.append(self.parse_term())
            while self._peek() is not None and self._peek().kind == "COMMA":
                self._next()
                args.append(self.parse_term())
        self._expect("RPAREN")
        return Atom(name.text, args, span=Span(name.line, name.column))

    def parse_term(self) -> Term:
        tok = self._next()
        if tok.kind == "IDENT":
            if tok.text[0].isupper() or tok.text[0] == "_":
                return Variable(tok.text)
            return Constant(tok.text)
        if tok.kind == "INT":
            return Constant(int(tok.text))
        if tok.kind == "STRING":
            raw = tok.text[1:-1]
            return Constant(raw.replace("\\'", "'").replace("\\\\", "\\"))
        if tok.kind == "NOT":
            # "not" used as a plain lower-case constant/identifier.
            return Constant(tok.text)
        raise ParseError("expected a term, found %r" % tok.text, tok.line, tok.column)


def parse_program(text: str, carrier: Optional[str] = None) -> Program:
    """Parse program text into a :class:`Program`."""
    return Program(_Parser(text).parse_program(), carrier=carrier)


def parse_rules(text: str) -> List[Rule]:
    """Parse program text into a bare rule list.

    Unlike :func:`parse_program` this performs no program-level
    validation (arity consistency, nonemptiness) — the static analyzer
    uses it to turn those failures into spanned diagnostics instead of
    exceptions.
    """
    return _Parser(text).parse_program()


def parse_rule(text: str) -> Rule:
    """Parse a single rule (must consume all input)."""
    parser = _Parser(text)
    rule = parser.parse_rule()
    if parser._peek() is not None:
        tok = parser._peek()
        raise ParseError("trailing input after rule", tok.line, tok.column)
    return rule


def parse_atom(text: str) -> Atom:
    """Parse a single atom (must consume all input)."""
    parser = _Parser(text)
    atom = parser.parse_atom()
    if parser._peek() is not None:
        tok = parser._peek()
        raise ParseError("trailing input after atom", tok.line, tok.column)
    return atom
