"""Rule compilation and set-at-a-time execution: plan once, batch every round.

The legacy evaluator (:func:`repro.core.operator.evaluate_rule_legacy`)
re-planned the join order and rebuilt a fresh hash index per body atom on
*every* fixpoint round; the PR-1 planner compiled once but still executed
tuple-at-a-time, copying one binding dict per extension and completing
unsafe variables by enumerating ``|A|^k`` candidates and filtering.  This
package now splits the work three ways:

* :func:`compile_rule` / :func:`compile_program` run once per
  (program, database) and produce immutable :class:`RulePlan` /
  :class:`ProgramPlan` objects carrying *both* lowerings of the rule —
  the dict row program and the batch program (anti-join negation,
  complement-scheduled completion, hoisted sorted universe);
* :mod:`~repro.core.planning.batch` executes the batch program over a
  :class:`BindingTable` (fixed variable schema + tuple rows): index-backed
  batch joins, negation as **anti-join**, and completion through negated
  atoms as a join against a lazily-materialised **complement relation**
  (:meth:`repro.db.relation.Relation.complement_on`) instead of
  enumerate-then-filter;
* :class:`PlanStore` / :data:`PLAN_STORE` cache compiled plans under
  (program, db) keys so all engines — and the grounder feeding the
  well-founded/SAT pipelines — share one compilation per input instead
  of compiling privately.

Two adaptive layers close the loop between execution and planning:

* :mod:`~repro.core.planning.statistics` — the batch executor records
  observed relation cardinalities and join selectivities into the
  :class:`Statistics` carried by the store; the compiler consults them
  (and accepts exact observed IDB sizes) instead of the static
  "assume large" guess;
* :mod:`~repro.core.planning.adaptive` — :class:`AdaptiveProgramPlan` /
  :class:`AdaptiveRulePlans` refresh per fixpoint round and re-plan any
  rule whose observed inputs diverged beyond :data:`REPLAN_FACTOR`,
  caching the variants under coarse cardinality buckets so growth
  stages are compiled once, ever;

and each plan carries a Yannakakis **semi-join reduction** schedule
(:class:`SemiJoinStep`): before rows materialise, scanned relations are
reduced to the tuples that can participate in some join, off cached
index key sets.

The PR-1 dict executor survives as :func:`solve_plan_rows_legacy` /
:func:`execute_plan_rows_legacy` for the three-way equivalence property
suite and the benchmarks' baseline.
"""

from .adaptive import AdaptiveProgramPlan, AdaptiveRulePlans
from .batch import BindingTable, execute_plan, solve_plan, solve_plan_table
from .compiler import ProgramPlan, compile_program, compile_rule, compile_rules
from .executor import execute_plan_rows_legacy, solve_plan_rows_legacy
from .plan import (
    AntiJoin,
    AtomStep,
    BatchJoin,
    CmpFilter,
    CmpOp,
    ComplementJoin,
    DomainStep,
    ExtendDomain,
    NegFilter,
    RulePlan,
    SemiJoinStep,
)
from .statistics import (
    DEFAULT_STATISTICS,
    MIN_REPLAN_SIZE,
    REPLAN_FACTOR,
    Statistics,
    cardinality_bucket,
    diverged,
)
from .store import PLAN_STORE, PlanStore

__all__ = [
    "AdaptiveProgramPlan",
    "AdaptiveRulePlans",
    "AntiJoin",
    "AtomStep",
    "BatchJoin",
    "BindingTable",
    "CmpFilter",
    "CmpOp",
    "ComplementJoin",
    "DEFAULT_STATISTICS",
    "DomainStep",
    "MIN_REPLAN_SIZE",
    "ExtendDomain",
    "NegFilter",
    "PLAN_STORE",
    "PlanStore",
    "ProgramPlan",
    "REPLAN_FACTOR",
    "RulePlan",
    "SemiJoinStep",
    "Statistics",
    "cardinality_bucket",
    "compile_program",
    "compile_rule",
    "compile_rules",
    "diverged",
    "execute_plan",
    "execute_plan_rows_legacy",
    "solve_plan",
    "solve_plan_rows_legacy",
    "solve_plan_table",
]
