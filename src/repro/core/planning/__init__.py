"""Rule compilation: plan once, execute every round.

The legacy evaluator (:func:`repro.core.operator.evaluate_rule_legacy`)
re-planned the join order and rebuilt a fresh hash index per body atom on
*every* fixpoint round, making each round pay O(|relation|) in index
construction alone.  This package splits that work:

* :func:`compile_rule` / :func:`compile_program` run once per
  (program, database) and produce immutable :class:`RulePlan` /
  :class:`ProgramPlan` objects — fixed join order, precomputed key
  columns, lowered filters, and a static active-domain completion
  schedule;
* :func:`execute_plan` / :meth:`ProgramPlan.consequences` interpret a
  plan against an interpretation, fetching indexes through
  :meth:`repro.db.relation.Relation.index_on`, which caches each index
  on the (immutable) relation so unchanged relations are never
  re-indexed across rounds.

All fixpoint engines (naive, semi-naive, incremental, inflationary,
stratified, well-founded grounding) evaluate through plans; the public
``evaluate_rule``/``theta`` API compiles transparently and is unchanged.
"""

from .compiler import ProgramPlan, compile_program, compile_rule, compile_rules
from .executor import execute_plan, solve_plan
from .plan import AtomStep, CmpFilter, DomainStep, NegFilter, RulePlan

__all__ = [
    "AtomStep",
    "CmpFilter",
    "DomainStep",
    "NegFilter",
    "ProgramPlan",
    "RulePlan",
    "compile_program",
    "compile_rule",
    "compile_rules",
    "execute_plan",
    "solve_plan",
]
