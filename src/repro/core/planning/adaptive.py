"""Adaptive re-planning: refresh compiled plans against observed sizes.

A plan compiled before the first fixpoint round estimates every IDB
relation with the same "unknown, assume large" placeholder; a few rounds
in, the real sizes are sitting right there in the interpretation.  The
wrappers here close that gap mid-fixpoint:

* :class:`AdaptiveRulePlans` holds a rule list's current plans and, once
  per round (:meth:`~AdaptiveRulePlans.refresh`), compares each plan's
  planning-time estimates (:attr:`~repro.core.planning.plan.RulePlan.est_cards`)
  with the cardinalities observed in the interpretation.  When some
  input diverged by more than the configured factor
  (:func:`~repro.core.planning.statistics.diverged`), the rule is
  re-planned through the store with the observed sizes — so
  ``_join_order`` stops guessing — under a key extended with *coarse
  cardinality buckets* (:func:`~repro.core.planning.statistics.cardinality_bucket`).
  Bucketed keys are what make re-planning cheap in steady state: the
  re-planned variants coexist in the store with the statistics-free
  originals and with each other, so revisiting a growth stage (another
  engine, another run, the next stratum) hits the cache instead of
  compiling.

* :class:`AdaptiveProgramPlan` is the whole-program face, duck-typed to
  :class:`~repro.core.planning.compiler.ProgramPlan` (``consequences``)
  so ``theta``-driven engines adopt it without changes to their loops.

The refresh itself costs one ``len()`` per adaptive predicate per rule
per round — nothing against the joins it re-orders.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from ...db.database import Database
from ...obs import RECORDER, TRACER
from ..program import Program
from ..rules import Rule
from .batch import execute_plan
from .plan import RulePlan
from .statistics import REPLAN_FACTOR, diverged


class AdaptiveRulePlans:
    """A rule list's plans, kept fresh against observed cardinalities.

    Constructed through
    :meth:`~repro.core.planning.store.PlanStore.adaptive_rule_plans`;
    the wrapper is cheap and per-run (the compiled plans underneath are
    the store-cached, shared objects).  ``replans`` counts how many
    times a stale plan was actually replaced — the bench harness
    reports it.

    ``known_sizes`` carries cardinalities the caller holds as *facts*
    rather than estimates — the stratified engine passes the final sizes
    of every already-evaluated lower stratum.  Known predicates are
    compiled in from the start (so the first plan is built from evidence
    instead of the "unknown, assume large" placeholder) and exempted
    from divergence checks: a frozen lower stratum cannot go stale, so
    re-discovering its size mid-fixpoint would be a wasted recompile.
    """

    __slots__ = (
        "store",
        "db",
        "small_preds",
        "factor",
        "known_sizes",
        "plans",
        "replans",
        "_size_preds",
        "_size_sig",
    )

    def __init__(
        self,
        store,
        rules: Iterable[Rule],
        db: Optional[Database] = None,
        small_preds: FrozenSet[str] = frozenset(),
        factor: float = REPLAN_FACTOR,
        known_sizes: Optional[Mapping[str, int]] = None,
    ) -> None:
        self.store = store
        self.db = db
        self.small_preds = small_preds
        self.factor = factor
        self.known_sizes: Dict[str, int] = dict(known_sizes or {})
        self.plans: List[RulePlan] = []
        for rule in rules:
            # Bake in only the sizes of predicates this rule reads, so
            # the bucketed store key stays canonical — a rule untouched
            # by the known predicates compiles to the plain shared plan.
            relevant = self._relevant_known(rule)
            if relevant:
                self.plans.append(
                    store.rule_plan_adaptive(
                        rule,
                        db=db,
                        small_preds=small_preds,
                        observed=relevant,
                        factor=factor,
                    )
                )
            else:
                self.plans.append(
                    store.rule_plan(rule, db=db, small_preds=small_preds)
                )
        self.replans = 0
        self._size_preds: Optional[Tuple[str, ...]] = None
        self._size_sig: Optional[Tuple[int, ...]] = None

    def _relevant_known(self, rule: Rule) -> Dict[str, int]:
        """The known sizes worth baking into ``rule``'s plan key.

        Restricted to predicates the rule reads *and* the database
        cannot size: a db-present predicate is already exact at compile
        time (``estimate`` consults the db first and such predicates
        never enter ``est_cards``), so pinning it again would only
        compile a content-identical plan under a second bucketed key.
        """
        if not self.known_sizes:
            return {}
        body = rule.body_predicates()
        db = self.db
        return {
            p: s
            for p, s in self.known_sizes.items()
            if p in body and (db is None or db.get(p) is None)
        }

    def refresh(self, interp: Database) -> List[RulePlan]:
        """The current plans, re-planning any whose estimates went stale."""
        plans = self.plans
        factor = self.factor
        known = self.known_sizes
        # Divergence is a pure function of the watched predicates'
        # current sizes, so when none of them changed since the last
        # refresh the whole per-plan sweep is a no-op — one size
        # signature check covers it (fixpoint loops converge most
        # predicates rounds before the last, so this is the common case).
        preds = self._size_preds
        if preds is None:
            seen: List[str] = []
            for plan in plans:
                for pred, _ in plan.est_cards:
                    if pred not in known and pred not in seen:
                        seen.append(pred)
            preds = self._size_preds = tuple(seen)
        get = interp.get
        sizes = {
            p: (len(r) if (r := get(p)) is not None else 0) for p in preds
        }
        sig = tuple(sizes[p] for p in preds)
        if sig == self._size_sig:
            return plans
        replans_before = self.replans
        for i, plan in enumerate(plans):
            est_cards = plan.est_cards
            if not est_cards:
                continue
            observed: Optional[Dict[str, int]] = None
            for pred, estimate in est_cards:
                if pred in known:
                    continue  # a fact, not a discovery — never stale
                size = sizes.get(pred)
                if size is None:
                    rel = get(pred)
                    size = len(rel) if rel is not None else 0
                if diverged(estimate, size, factor):
                    observed = {
                        p: (len(r) if (r := interp.get(p)) is not None else 0)
                        for p, _ in est_cards
                    }
                    # Pin the known facts, filtered to this rule's body so
                    # the bucketed store key stays canonical (matches the
                    # key the initial compile used).
                    observed.update(self._relevant_known(plan.rule))
                    break
            if observed is not None:
                plans[i] = self.store.rule_plan_adaptive(
                    plan.rule,
                    db=self.db,
                    small_preds=self.small_preds,
                    observed=observed,
                    factor=factor,
                )
                self.replans += 1
                self.store.statistics.replans += 1
                if RECORDER.enabled:
                    RECORDER.inc("repro_engine_replans_total")
                if TRACER.enabled:
                    TRACER.event("replan", pred=plan.head_pred)
        if self.replans == replans_before:
            self._size_sig = sig
        else:
            # New plans may watch different predicates; rebuild the
            # signature basis next round rather than trusting this one.
            self._size_preds = None
            self._size_sig = None
        return plans


class AdaptiveProgramPlan:
    """A whole program's plans with per-round adaptive refresh.

    Duck-typed to :class:`~repro.core.planning.compiler.ProgramPlan`:
    ``theta`` calls :meth:`consequences` per round, which refreshes the
    rule plans against the round's interpretation before executing them.
    """

    __slots__ = ("program", "_adaptive")

    def __init__(
        self,
        store,
        program: Program,
        db: Optional[Database] = None,
        factor: float = REPLAN_FACTOR,
    ) -> None:
        self.program = program
        self._adaptive = AdaptiveRulePlans(
            store, program.rules, db=db, factor=factor
        )

    @property
    def plans(self) -> Tuple[RulePlan, ...]:
        return tuple(self._adaptive.plans)

    @property
    def replans(self) -> int:
        """How many stale plans the refreshes have replaced so far."""
        return self._adaptive.replans

    def consequences(self, interp: Database) -> Dict[str, Set[Tuple]]:
        """One-step consequences of every rule, grouped by head predicate."""
        stats = self._adaptive.store.statistics
        derived: Dict[str, Set[Tuple]] = {
            p: set() for p in self.program.idb_predicates
        }
        for plan in self._adaptive.refresh(interp):
            derived[plan.head_pred] |= execute_plan(plan, interp, stats=stats)
        return derived

    def consequences_codes(self, interp: Database):
        """Codes-native one-step consequences, or ``None`` when unsupported.

        The interned twin of :meth:`consequences`: per head predicate, a
        sorted unique int64 vector of head codes under ``interp``'s
        symbol table (:func:`~repro.core.planning.colexec
        .execute_plan_codes` per refreshed rule plan, merged per head).
        A codes-to-codes fixpoint loop compares these vectors directly
        and builds the next round's relations with
        :meth:`~repro.db.relation.Relation._from_codes`, so no tuple is
        ever decoded or re-encoded between rounds.  Returns ``None``
        when any rule plan cannot be lowered (caller falls back to
        :meth:`consequences`); the same statistics flow to the store's
        feedback loop either way.
        """
        from . import colexec

        stats = self._adaptive.store.statistics
        derived: Dict[str, object] = {}
        for plan in self._adaptive.refresh(interp):
            out = colexec.execute_plan_codes(plan, interp, stats=stats)
            if out is None:
                return None
            head = out[1]
            prev = derived.get(plan.head_pred)
            derived[plan.head_pred] = (
                head if prev is None else colexec.merge_codes(prev, head)
            )
        for p in self.program.idb_predicates:
            if p not in derived:
                derived[p] = colexec.empty_codes_array()
        return derived

    def __len__(self) -> int:
        return len(self._adaptive.plans)

    def __repr__(self) -> str:
        return "AdaptiveProgramPlan(%d rules, %d replans)" % (
            len(self._adaptive.plans),
            self._adaptive.replans,
        )
