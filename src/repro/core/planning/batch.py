"""Set-at-a-time execution of compiled rule plans.

This is the per-round hot path of every fixpoint engine.  Where the
PR-1 executor (:func:`~repro.core.planning.executor.solve_plan_rows_legacy`)
threaded a ``List[Dict[Variable, Any]]`` through the plan — one dict
copy per extension — the batch executor threads a
:class:`BindingTable`: a fixed variable schema plus plain value tuples,
so every operation is a relational pass over the whole frontier:

* :class:`~repro.core.planning.plan.BatchJoin` probes the relation's
  cached index (:meth:`repro.db.relation.Relation.index_on`) and appends
  columns with tuple concatenation;
* :class:`~repro.core.planning.plan.AntiJoin` filters the row set
  against the relation's tuple set in one pass — negation as an
  anti-join rather than a per-binding membership test;
* :class:`~repro.core.planning.plan.ComplementJoin` completes variables
  *through* a negated atom by joining against the (lazily materialised,
  relation-cached) complement — or, for existence-only variables, by a
  complement non-emptiness check that appends nothing at all — instead
  of enumerating ``|A|^k`` candidates and filtering;
* :class:`~repro.core.planning.plan.ExtendDomain` is the residual
  active-domain cross product for variables no negation can complete.

``solve_plan`` keeps the PR-1 binding-dict output contract for the
grounder: it runs the batch program and converts the final table to
dicts once, at the end.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple

from ...db.algebra import universe_product
from ...db.database import Database
from ..terms import Variable
from .plan import (
    AntiJoin,
    BatchJoin,
    CmpOp,
    ComplementJoin,
    ExtendDomain,
    RulePlan,
)

Binding = Dict[Variable, Any]
Row = Tuple[Any, ...]


class BindingTable:
    """A fixed variable schema plus a set of value rows.

    The batch executor's frontier: ``schema[i]`` names the variable bound
    by column ``i`` of every row.  Rows are plain tuples — extension is
    tuple concatenation, filtering is a list comprehension — and stay
    duplicate-free because every operation extends distinct rows with
    distinct suffixes or only removes rows.
    """

    __slots__ = ("schema", "rows")

    def __init__(self, schema: Tuple[Variable, ...], rows: List[Row]) -> None:
        self.schema = schema
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def to_bindings(self) -> List[Binding]:
        """The rows as ``{Variable: value}`` dicts (schema order)."""
        schema = self.schema
        return [dict(zip(schema, row)) for row in self.rows]

    def __repr__(self) -> str:
        return "BindingTable(%s, %d rows)" % (
            "/".join(v.name for v in self.schema),
            len(self.rows),
        )


def solve_plan_table(plan: RulePlan, interp: Database) -> BindingTable:
    """Run the plan's batch program; the table binds ``plan.schema``.

    Existence-only completion variables (bound by an ``exists_only``
    complement check) carry no column — the table is the projection of
    the satisfying assignments onto the variables something downstream
    actually reads (head, filters), which is all ``execute_plan`` and the
    grounder ever consume.
    """
    rows: List[Row] = [()]
    domain = None
    for op in plan.ops:
        if not rows:
            break
        t = type(op)
        if t is BatchJoin:
            rel = interp.get(op.pred)
            if rel is None or not rel:
                rows = []
                break
            lookup = rel.index_on(op.key_columns).lookup
            key_spec = op.key
            out_positions = op.out_positions
            dup_checks = op.dup_checks
            out: List[Row] = []
            append = out.append
            if all(is_const for is_const, _ in key_spec):
                # Constant (or empty) key: one probe serves every row.
                matches = lookup(tuple(payload for _, payload in key_spec))
                matches = _dedup_check(matches, dup_checks)
                if out_positions == tuple(range(op.arity)):
                    # A fresh atom binding every position in order (delta
                    # atoms, typically) appends matched tuples wholesale.
                    for row in rows:
                        for m in matches:
                            append(row + m)
                else:
                    for row in rows:
                        for m in matches:
                            append(row + tuple(m[p] for p in out_positions))
            elif dup_checks:
                for row in rows:
                    key = tuple(
                        payload if is_const else row[payload]
                        for is_const, payload in key_spec
                    )
                    for m in lookup(key):
                        ok = True
                        for a, b in dup_checks:
                            if m[a] != m[b]:
                                ok = False
                                break
                        if ok:
                            append(row + tuple(m[p] for p in out_positions))
            else:
                for row in rows:
                    key = tuple(
                        payload if is_const else row[payload]
                        for is_const, payload in key_spec
                    )
                    for m in lookup(key):
                        append(row + tuple(m[p] for p in out_positions))
            rows = out
        elif t is AntiJoin:
            rel = interp.get(op.pred)
            if rel is None or not rel:
                continue  # nothing to exclude: the negation holds everywhere
            tuples = rel.tuples
            getters = op.getters
            rows = [
                row
                for row in rows
                if tuple(
                    payload if is_const else row[payload]
                    for is_const, payload in getters
                )
                not in tuples
            ]
        elif t is CmpOp:
            lc, lp = op.left
            rc, rp = op.right
            if op.equal:
                rows = [
                    row
                    for row in rows
                    if (lp if lc else row[lp]) == (rp if rc else row[rp])
                ]
            else:
                rows = [
                    row
                    for row in rows
                    if (lp if lc else row[lp]) != (rp if rc else row[rp])
                ]
        elif t is ComplementJoin:
            rows = _complement_join(op, rows, interp, plan)
        elif t is ExtendDomain:
            if domain is None:
                domain = plan.completion_domain(interp)
            rows = [row + (v,) for row in rows for v in domain]
        else:  # pragma: no cover - compiler emits only the types above
            raise TypeError("unknown batch op: %r" % (op,))
    return BindingTable(plan.schema, rows)


def _dedup_check(matches, dup_checks):
    if not dup_checks:
        return matches
    out = []
    for m in matches:
        if all(m[a] == m[b] for a, b in dup_checks):
            out.append(m)
    return out


def _covers_universe(tuples, universe: frozenset, k: int) -> bool:
    """Whether ``tuples`` contains all of ``universe**k``.

    Exact even when ``tuples`` holds values outside the universe (rules
    can derive head constants the database never mentions): the cheap
    cardinality test only ever *rejects* coverage, and the rare
    len >= |A|^k case falls back to a subset check against the cached
    product.
    """
    total = len(universe) ** k
    if len(tuples) < total:
        return False
    return universe_product(universe, k) <= tuples


def _complement_join(
    op: ComplementJoin, rows: List[Row], interp: Database, plan: RulePlan
) -> List[Row]:
    k = len(op.free_positions)
    n = len(interp.universe)
    rel = interp.get(op.pred)
    if rel is None or not rel:
        # Absent/empty relation: the negation holds for every assignment,
        # so this is a plain universe completion (or a universe check).
        if op.exists_only:
            return rows if n > 0 else []
        full = universe_product(interp.universe, k)
        return [row + values for row in rows for values in full]

    if not op.bound_columns:
        if op.exists_only:
            # Only non-emptiness matters — no materialisation at all.
            return rows if not _covers_universe(rel.tuples, interp.universe, op.arity) else []
        # Pure case: every atom position is a fresh completion variable,
        # so the allowed assignments are exactly the complement relation —
        # materialised lazily, once per relation value per universe.
        values = rel.complement_on(interp.universe).tuples
        return [row + v for row in rows for v in values]

    # Keyed case: group rows by the bound part of the atom and extend each
    # group with A^k minus the matched projections — one probe per
    # *distinct key*, not per row.  The non-existence-check path goes
    # through the relation-cached KeyedComplement, so allowed-sets
    # survive across rounds and are *patched* (via eager cache
    # inheritance on the evolving relations) when
    # the relation gains or loses tuples, instead of being recomputed.
    bound_key = op.bound_key
    exists_only = op.exists_only
    out: List[Row] = []
    append = out.append
    if exists_only:
        index = rel.index_on(op.bound_columns)
        free_positions = op.free_positions
        cache: Dict[Tuple, Any] = {}
        for row in rows:
            key = tuple(
                payload if is_const else row[payload]
                for is_const, payload in bound_key
            )
            allowed = cache.get(key)
            if allowed is None:
                excluded = index.project(key, free_positions)
                allowed = cache[key] = not _covers_universe(
                    excluded, interp.universe, k
                )
            if allowed:
                append(row)
        return out
    keyed = rel.keyed_complement_on(
        interp.universe, op.bound_columns, op.free_positions
    )
    get_allowed = keyed.get
    for row in rows:
        key = tuple(
            payload if is_const else row[payload]
            for is_const, payload in bound_key
        )
        for values in get_allowed(key):
            append(row + values)
    return out


def solve_plan(plan: RulePlan, interp: Database) -> List[Binding]:
    """The plan's satisfying bindings as dicts over ``plan.schema``.

    This keeps the PR-1 ``solve_plan`` output contract the grounder
    consumes; the bindings are produced by the batch executor and
    converted once at the end.  Variables completed by an existence-only
    complement check are not included (nothing downstream reads them);
    plans whose head mentions every variable — the grounder's pseudo-head
    construction — always get total bindings.
    """
    return solve_plan_table(plan, interp).to_bindings()


def execute_plan(plan: RulePlan, interp: Database) -> Set[Tuple]:
    """The set of ground head tuples the plan derives from ``interp``."""
    table = solve_plan_table(plan, interp)
    if not table.rows:
        return set()
    head = plan.head_cols
    return {
        tuple(payload if is_const else row[payload] for is_const, payload in head)
        for row in table.rows
    }
