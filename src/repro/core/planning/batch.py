"""Set-at-a-time execution of compiled rule plans.

This is the per-round hot path of every fixpoint engine.  Where the
PR-1 executor (:func:`~repro.core.planning.executor.solve_plan_rows_legacy`)
threaded a ``List[Dict[Variable, Any]]`` through the plan — one dict
copy per extension — the batch executor threads a
:class:`BindingTable`: a fixed variable schema plus plain value tuples,
so every operation is a relational pass over the whole frontier:

* :class:`~repro.core.planning.plan.BatchJoin` probes the relation's
  cached index (:meth:`repro.db.relation.Relation.index_on`) and appends
  columns with tuple concatenation;
* :class:`~repro.core.planning.plan.AntiJoin` filters the row set
  against the relation's tuple set in one pass — negation as an
  anti-join rather than a per-binding membership test;
* :class:`~repro.core.planning.plan.ComplementJoin` completes variables
  *through* a negated atom by joining against the (lazily materialised,
  relation-cached) complement — or, for existence-only variables, by a
  complement non-emptiness check that appends nothing at all — instead
  of enumerating ``|A|^k`` candidates and filtering;
* :class:`~repro.core.planning.plan.ExtendDomain` is the residual
  active-domain cross product for variables no negation can complete.

``solve_plan`` keeps the PR-1 binding-dict output contract for the
grounder: it runs the batch program and converts the final table to
dicts once, at the end.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ...db.algebra import universe_product
from ...db.database import Database
from ...obs import RECORDER, TRACER
from ..terms import Variable
from . import colexec
from .plan import (
    AntiJoin,
    BatchJoin,
    CmpOp,
    ComplementJoin,
    ExtendDomain,
    RulePlan,
)
from .statistics import DEFAULT_STATISTICS, Statistics

Binding = Dict[Variable, Any]
Row = Tuple[Any, ...]

_DEFAULT_SINK = object()
"""Sentinel distinguishing "use the default statistics" from an explicit
``stats=None`` (record nothing — the materialize executors pass that)."""

_MIN_REDUCE_SIZE = 32
"""Semi-join floor: relations smaller than this are cheaper to join
outright than to reduce — the pass skips them (the reduction is an
optimisation; results are identical either way)."""


class BindingTable:
    """A fixed variable schema plus a set of value rows.

    The batch executor's frontier: ``schema[i]`` names the variable bound
    by column ``i`` of every row.  Rows are plain tuples — extension is
    tuple concatenation, filtering is a list comprehension — and stay
    duplicate-free because every operation extends distinct rows with
    distinct suffixes or only removes rows.
    """

    __slots__ = ("schema", "rows")

    def __init__(self, schema: Tuple[Variable, ...], rows: List[Row]) -> None:
        self.schema = schema
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def to_bindings(self) -> List[Binding]:
        """The rows as ``{Variable: value}`` dicts (schema order)."""
        schema = self.schema
        return [dict(zip(schema, row)) for row in self.rows]

    def __repr__(self) -> str:
        return "BindingTable(%s, %d rows)" % (
            "/".join(v.name for v in self.schema),
            len(self.rows),
        )


def _semijoin_reduce(
    plan: RulePlan, interp: Database
) -> Optional[Dict[int, Set[Row]]]:
    """Run the plan's Yannakakis prologue; reduced tuple sets by join index.

    Returns ``None`` when some joined relation is absent or empty (the
    join pipeline derives nothing; the executor's own early exit
    handles it), otherwise a map from join-step index to the reduced
    tuple set — only for steps the reduction actually shrank.  The
    sweeps work off cached structures: a source's key set is its
    relation's cached index bucket keys (:meth:`Relation.index_on`),
    and a target is only rescanned when its key set is not already
    covered — so a pass over already-reduced inputs (the common
    steady-state of a converged fixpoint round) costs per *distinct
    key*, not per tuple.
    """
    steps = plan.steps
    rels = [interp.get(step.pred) for step in steps]
    if any(rel is None or not rel for rel in rels):
        return None
    reduced: Dict[int, Set[Row]] = {}
    for sj in plan.semijoin_steps:
        target = reduced.get(sj.target)
        target_size = len(target) if target is not None else len(rels[sj.target])
        if target_size < _MIN_REDUCE_SIZE:
            continue  # cheaper to join outright than to reduce
        source = reduced.get(sj.source)
        if source is not None:
            source_keys: Any = {
                tuple(t[c] for c in sj.source_columns) for t in source
            }
        else:
            source_keys = rels[sj.source].index_on(sj.source_columns).keys()
        if target is not None:
            kept = {
                t
                for t in target
                if tuple(t[c] for c in sj.target_columns) in source_keys
            }
            if len(kept) != len(target):
                reduced[sj.target] = kept
                if not kept:
                    break
        else:
            index = rels[sj.target].index_on(sj.target_columns)
            if all(key in source_keys for key in index.keys()):
                continue  # fully covered: the semi-join would drop nothing
            kept = set()
            for key in index.keys():
                if key in source_keys:
                    kept.update(index.lookup(key))
            reduced[sj.target] = kept
            if not kept:
                break
    return reduced


def solve_plan_table(
    plan: RulePlan,
    interp: Database,
    stats: Optional[Statistics] = _DEFAULT_SINK,  # type: ignore[assignment]
    semijoin: bool = True,
) -> BindingTable:
    """Run the plan's batch program; the table binds ``plan.schema``.

    Existence-only completion variables (bound by an ``exists_only``
    complement check) carry no column — the table is the projection of
    the satisfying assignments onto the variables something downstream
    actually reads (head, filters), which is all ``execute_plan`` and the
    grounder ever consume.

    ``stats`` is the observation sink of the adaptive planner: every
    batch join records the joined relation's cardinality and its
    probe/match totals there (default: the process-wide
    :data:`~repro.core.planning.statistics.DEFAULT_STATISTICS`; pass
    ``None`` to record nothing — maintenance executors do, so delta
    evaluation cannot poison the feedback).  ``semijoin=False`` skips
    the plan's Yannakakis reduction prologue; results are identical
    either way (property-tested), only the work differs.
    """
    if stats is _DEFAULT_SINK:
        stats = DEFAULT_STATISTICS
    reduced: Optional[Dict[int, Set[Row]]] = None
    if semijoin and plan.semijoin_steps:
        reduced = _semijoin_reduce(plan, interp)
        if reduced:
            for join_idx, kept in reduced.items():
                if not kept:
                    return BindingTable(plan.schema, [])
    rows: List[Row] = [()]
    domain = None
    join_idx = -1
    for op in plan.ops:
        if not rows:
            break
        t = type(op)
        if t is BatchJoin:
            join_idx += 1
            rel = interp.get(op.pred)
            if rel is None or not rel:
                rows = []
                break
            if stats is not None:
                stats.record_cardinality(op.pred, len(rel))
            kept = reduced.get(join_idx) if reduced else None
            if kept is not None:
                buckets: Dict[Tuple, List[Row]] = {}
                key_columns = op.key_columns
                for tup in kept:
                    buckets.setdefault(
                        tuple(tup[c] for c in key_columns), []
                    ).append(tup)
                lookup = lambda key, _b=buckets: _b.get(key, [])  # noqa: E731
            else:
                lookup = rel.index_on(op.key_columns).lookup
            key_spec = op.key
            out_positions = op.out_positions
            dup_checks = op.dup_checks
            probes = len(rows)
            all_const = all(is_const for is_const, _ in key_spec)
            out: List[Row] = []
            append = out.append
            if all_const:
                # Constant (or empty) key: one probe serves every row.
                matches = lookup(tuple(payload for _, payload in key_spec))
                matches = _dedup_check(matches, dup_checks)
                if out_positions == tuple(range(op.arity)):
                    # A fresh atom binding every position in order (delta
                    # atoms, typically) appends matched tuples wholesale.
                    for row in rows:
                        for m in matches:
                            append(row + m)
                else:
                    for row in rows:
                        for m in matches:
                            append(row + tuple(m[p] for p in out_positions))
            elif dup_checks:
                for row in rows:
                    key = tuple(
                        payload if is_const else row[payload]
                        for is_const, payload in key_spec
                    )
                    for m in lookup(key):
                        ok = True
                        for a, b in dup_checks:
                            if m[a] != m[b]:
                                ok = False
                                break
                        if ok:
                            append(row + tuple(m[p] for p in out_positions))
            else:
                for row in rows:
                    key = tuple(
                        payload if is_const else row[payload]
                        for is_const, payload in key_spec
                    )
                    for m in lookup(key):
                        append(row + tuple(m[p] for p in out_positions))
            rows = out
            if stats is not None and key_spec and not all_const:
                stats.record_join(op.pred, op.key_columns, probes, len(out))
        elif t is AntiJoin:
            rel = interp.get(op.pred)
            if rel is None or not rel:
                continue  # nothing to exclude: the negation holds everywhere
            tuples = rel.tuples
            getters = op.getters
            rows = [
                row
                for row in rows
                if tuple(
                    payload if is_const else row[payload]
                    for is_const, payload in getters
                )
                not in tuples
            ]
        elif t is CmpOp:
            lc, lp = op.left
            rc, rp = op.right
            if op.equal:
                rows = [
                    row
                    for row in rows
                    if (lp if lc else row[lp]) == (rp if rc else row[rp])
                ]
            else:
                rows = [
                    row
                    for row in rows
                    if (lp if lc else row[lp]) != (rp if rc else row[rp])
                ]
        elif t is ComplementJoin:
            rows = _complement_join(op, rows, interp, plan)
        elif t is ExtendDomain:
            if domain is None:
                domain = plan.completion_domain(interp)
            rows = [row + (v,) for row in rows for v in domain]
        else:  # pragma: no cover - compiler emits only the types above
            raise TypeError("unknown batch op: %r" % (op,))
    return BindingTable(plan.schema, rows)


def _dedup_check(matches, dup_checks):
    if not dup_checks:
        return matches
    out = []
    for m in matches:
        if all(m[a] == m[b] for a, b in dup_checks):
            out.append(m)
    return out


def _covers_universe(tuples, universe: frozenset, k: int) -> bool:
    """Whether ``tuples`` contains all of ``universe**k``.

    Exact even when ``tuples`` holds values outside the universe (rules
    can derive head constants the database never mentions): the cheap
    cardinality test only ever *rejects* coverage, and the rare
    len >= |A|^k case falls back to a subset check against the cached
    product.
    """
    total = len(universe) ** k
    if len(tuples) < total:
        return False
    return universe_product(universe, k) <= tuples


def _complement_join(
    op: ComplementJoin, rows: List[Row], interp: Database, plan: RulePlan
) -> List[Row]:
    k = len(op.free_positions)
    n = len(interp.universe)
    rel = interp.get(op.pred)
    if rel is None or not rel:
        # Absent/empty relation: the negation holds for every assignment,
        # so this is a plain universe completion (or a universe check).
        if op.exists_only:
            return rows if n > 0 else []
        full = universe_product(interp.universe, k)
        return [row + values for row in rows for values in full]

    if not op.bound_columns:
        if op.exists_only:
            # Only non-emptiness matters — no materialisation at all.
            return rows if not _covers_universe(rel.tuples, interp.universe, op.arity) else []
        # Pure case: every atom position is a fresh completion variable,
        # so the allowed assignments are exactly the complement relation —
        # materialised lazily, once per relation value per universe.
        values = rel.complement_on(interp.universe).tuples
        return [row + v for row in rows for v in values]

    # Keyed case: group rows by the bound part of the atom and extend each
    # group with A^k minus the matched projections — one probe per
    # *distinct key*, not per row.  The non-existence-check path goes
    # through the relation-cached KeyedComplement, so allowed-sets
    # survive across rounds and are *patched* (via eager cache
    # inheritance on the evolving relations) when
    # the relation gains or loses tuples, instead of being recomputed.
    bound_key = op.bound_key
    exists_only = op.exists_only
    out: List[Row] = []
    append = out.append
    if exists_only:
        index = rel.index_on(op.bound_columns)
        free_positions = op.free_positions
        cache: Dict[Tuple, Any] = {}
        for row in rows:
            key = tuple(
                payload if is_const else row[payload]
                for is_const, payload in bound_key
            )
            allowed = cache.get(key)
            if allowed is None:
                excluded = index.project(key, free_positions)
                allowed = cache[key] = not _covers_universe(
                    excluded, interp.universe, k
                )
            if allowed:
                append(row)
        return out
    keyed = rel.keyed_complement_on(
        interp.universe, op.bound_columns, op.free_positions
    )
    get_allowed = keyed.get
    for row in rows:
        key = tuple(
            payload if is_const else row[payload]
            for is_const, payload in bound_key
        )
        for values in get_allowed(key):
            append(row + values)
    return out


def solve_plan(
    plan: RulePlan,
    interp: Database,
    stats: Optional[Statistics] = _DEFAULT_SINK,  # type: ignore[assignment]
    semijoin: bool = True,
) -> List[Binding]:
    """The plan's satisfying bindings as dicts over ``plan.schema``.

    This keeps the PR-1 ``solve_plan`` output contract the grounder
    consumes; the bindings are produced by the batch executor and
    converted once at the end.  Variables completed by an existence-only
    complement check are not included (nothing downstream reads them);
    plans whose head mentions every variable — the grounder's pseudo-head
    construction — always get total bindings.
    """
    return solve_plan_table(plan, interp, stats=stats, semijoin=semijoin).to_bindings()


def execute_plan(
    plan: RulePlan,
    interp: Database,
    stats: Optional[Statistics] = _DEFAULT_SINK,  # type: ignore[assignment]
    semijoin: bool = True,
) -> Set[Tuple]:
    """The set of ground head tuples the plan derives from ``interp``.

    When the interned columnar kernel can lower the plan (numpy backend,
    codes fit 64 bits, sizeable inputs — see
    :func:`~repro.core.planning.colexec.wants_plan`), the whole pipeline
    runs as vector arithmetic over the interpretation's symbol table and
    only the final head codes are externed back to tuples (memoised, so
    steady-state fixpoint rounds rebuild nothing).  Otherwise — and for
    any plan the columnar path declines mid-flight — the row executor
    below produces the identical set.

    When either observability singleton is live the call is routed
    through :func:`_execute_plan_observed`, which wraps it in a ``rule``
    span and counts rule/kernel/row executions; the disabled path below
    stays free of recorder calls.
    """
    if RECORDER.enabled or TRACER.enabled:
        return _execute_plan_observed(plan, interp, stats=stats, semijoin=semijoin)
    return _execute_plan_fast(plan, interp, stats=stats, semijoin=semijoin)


def _execute_plan_fast(
    plan: RulePlan,
    interp: Database,
    stats: Optional[Statistics] = _DEFAULT_SINK,  # type: ignore[assignment]
    semijoin: bool = True,
    _observed: Optional[list] = None,
) -> Set[Tuple]:
    if colexec.wants_plan(plan, interp):
        if stats is _DEFAULT_SINK:
            stats = DEFAULT_STATISTICS
        result = colexec.execute_plan_codes(
            plan, interp, stats=stats, semijoin=semijoin
        )
        if result is not None:
            if _observed is not None:
                _observed.append("kernel")
            sym, head_codes = result
            arity = len(plan.head_cols)
            extern = sym.extern_code
            return {extern(c, arity) for c in head_codes.tolist()}
    if _observed is not None:
        _observed.append("row")
    table = solve_plan_table(plan, interp, stats=stats, semijoin=semijoin)
    if not table.rows:
        return set()
    head = plan.head_cols
    return {
        tuple(payload if is_const else row[payload] for is_const, payload in head)
        for row in table.rows
    }


def _execute_plan_observed(
    plan: RulePlan,
    interp: Database,
    stats: Optional[Statistics] = _DEFAULT_SINK,  # type: ignore[assignment]
    semijoin: bool = True,
) -> Set[Tuple]:
    """The observed twin of :func:`execute_plan`'s fast path."""
    backend: list = []
    with TRACER.span("rule") as sp:
        out = _execute_plan_fast(
            plan, interp, stats=stats, semijoin=semijoin, _observed=backend
        )
        if sp:
            sp["pred"] = plan.head_pred
            sp["rows_out"] = len(out)
            sp["backend"] = backend[0] if backend else "row"
    if RECORDER.enabled:
        RECORDER.inc("repro_engine_rule_executions_total")
        if backend and backend[0] == "kernel":
            RECORDER.inc("repro_engine_kernel_executions_total")
        else:
            RECORDER.inc("repro_engine_row_executions_total")
    return out
