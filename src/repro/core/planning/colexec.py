"""Columnar plan execution: the kernel-backed lowering of the batch ops.

This is the interned fast path of :func:`~repro.core.planning.batch
.execute_plan`.  Where the row executor threads a
:class:`~repro.core.planning.batch.BindingTable` of Python value tuples
through the plan, this executor threads a :class:`ColumnTable` — one
int64 id vector per bound schema column, under the interpretation's
:class:`~repro.db.kernel.SymbolTable` — and every op is vector
arithmetic over the relations' cached code vectors
(:meth:`~repro.db.relation.Relation.codes_on`):

* :class:`~repro.core.planning.plan.BatchJoin` probes a cached
  :class:`~repro.db.kernel.SortedRun` with two binary searches per
  probe vector and expands matches by position arithmetic — no per-row
  Python loop, no hashing;
* :class:`~repro.core.planning.plan.AntiJoin` packs each frontier row's
  atom fields into one row code and drops rows whose code occurs in the
  relation's sorted vector — negation as one membership sweep;
* :class:`~repro.core.planning.plan.ComplementJoin` completes variables
  by range arithmetic over the interned universe
  (:func:`~repro.db.kernel.universe_product_codes` minus the relation's
  codes), grouped per distinct bound key;
* the Yannakakis prologue reduces relations by sorted-key membership
  before any frontier column is built;
* the head projection packs head fields into one code per row and
  dedups with a single sort — the derived set *stays interned*:
  :func:`execute_plan_codes` returns the sorted unique head-code
  vector, and only :func:`~repro.core.planning.batch.execute_plan`
  (or nobody, in a codes-to-codes fixpoint loop) externs it back to
  tuples.

The executor is numpy-only by design — under the pure-``array`` backend
the row executor's per-tuple work is already the cheaper shape — and
returns ``None`` for any plan or interpretation it cannot lower
faithfully (zero-ary atoms, codes wider than 63 bits, a non-numpy
backend); callers fall back to the row path, whose results are
identical (property-tested three ways in ``tests/test_planner.py``).
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - kernel degrades to array backend
    np = None

from ...db import kernel
from ...db.database import Database
from ...db.kernel import (
    RelationCodes,
    SortedRun,
    universe_ids,
    universe_product_codes,
)
from ...obs import RECORDER
from .plan import (
    AntiJoin,
    BatchJoin,
    CmpOp,
    ComplementJoin,
    ExtendDomain,
    RulePlan,
)

_MIN_REDUCE_SIZE = 256
"""Columnar semi-join floor — deliberately higher than the row
executor's 32.  A sorted-run probe never materialises non-matching
rows, so reducing a small scanned relation spends a membership sweep
(plus a fresh code subset and its column decode) to save expansion work
the probe would have skipped anyway; only targets big enough that the
scan itself is the cost are worth shrinking.  Results are identical
either way — the reduction is a pure optimisation."""

_MODE = os.environ.get("REPRO_COLEXEC", "auto").strip().lower()
"""``auto`` (size-heuristic), ``always`` (force where supported — the
equivalence suites use it), or ``never`` (row path only)."""

_AUTO_MIN_REL = 64
"""Under ``auto``, plans with neither completion work nor a joined
relation at least this big stay on the row path — vector dispatch
overhead beats the win on tiny inputs."""


def set_mode(mode: str) -> str:
    """Force the executor mode (tests); returns the previous mode."""
    global _MODE
    if mode not in ("auto", "always", "never"):
        raise ValueError("unknown colexec mode %r" % mode)
    previous = _MODE
    _MODE = mode
    return previous


def mode() -> str:
    return _MODE


class ColumnTable:
    """The columnar frontier: one int64 id vector per bound variable.

    The interned twin of :class:`~repro.core.planning.batch.BindingTable`
    — ``schema`` is positional (column ``i`` binds the plan schema's
    ``i``-th variable); ``cols[i]`` holds the dense ids of that
    variable's values, all vectors of length ``nrows``.
    """

    __slots__ = ("cols", "nrows")

    def __init__(self, cols: List[Any], nrows: int) -> None:
        self.cols = cols
        self.nrows = nrows


# ----------------------------------------------------------------------
# Per-plan compiled state
# ----------------------------------------------------------------------

def _plan_state(plan: RulePlan):
    """(supported, max_width, constants, needs_universe) — static per plan.

    ``max_width`` is the widest code any op or the head must pack
    (checked against the symbol table's field width per call);
    ``constants`` is every constant the plan mentions, interned up
    front — together with the universe when any op completes over it —
    so encoding work inside the op loop is the only thing that can
    widen the field width mid-execution (and that is guarded by a
    generation check).

    Cached directly on the plan instance (``RulePlan`` is a frozen
    dataclass without slots): lookup is one ``__dict__`` read, where a
    hash-keyed side table would re-hash the plan's nested op tuples on
    every execution.
    """
    state = plan.__dict__.get("_colexec_state")
    if state is not None:
        return state
    widths = [len(plan.head_cols)]
    consts: List[Any] = [v for is_const, v in plan.head_cols if is_const]
    # Zero-ary heads are boolean derivations; the row path handles them.
    supported = bool(plan.head_cols)
    needs_universe = False
    for op in plan.ops:
        t = type(op)
        if t is BatchJoin:
            if op.arity == 0:
                supported = False
            widths.append(op.arity)
            consts.extend(v for is_const, v in op.key if is_const)
        elif t is AntiJoin:
            if op.arity == 0:
                supported = False
            widths.append(op.arity)
            consts.extend(v for is_const, v in op.getters if is_const)
        elif t is CmpOp:
            widths.append(1)
            for is_const, payload in (op.left, op.right):
                if is_const:
                    consts.append(payload)
        elif t is ComplementJoin:
            if op.arity == 0:
                supported = False
            widths.append(op.arity)
            consts.extend(v for is_const, v in op.bound_key if is_const)
            needs_universe = True
        elif t is ExtendDomain:
            widths.append(1)
            needs_universe = True
        else:  # pragma: no cover - compiler emits only the types above
            supported = False
    # Copy-scan detection: a single keyless scan whose head re-packs the
    # atom's columns verbatim (the ubiquitous base-case rule ``P(X,Y) :-
    # E(X,Y)``) derives exactly the relation's own row codes — already
    # sorted unique, no fold, no dedup.
    copy_scan = False
    if supported and len(plan.ops) == 1:
        op = plan.ops[0]
        if (
            type(op) is BatchJoin
            and not op.key_columns
            and not op.dup_checks
            and op.out_positions == tuple(range(op.arity))
            and plan.head_cols == tuple((False, i) for i in range(op.arity))
        ):
            copy_scan = True
    # Join steps consumed by a keyless scan (vs a sorted-run probe).
    # The columnar reducer only shrinks these: a probe never touches
    # rows outside the probed keys anyway, so reducing a probed relation
    # would spend a membership sweep to save nothing.
    scan_joins = frozenset(
        i
        for i, op in enumerate(o for o in plan.ops if type(o) is BatchJoin)
        if not op.key_columns
    )
    state = (
        supported,
        max(widths),
        tuple(consts),
        needs_universe,
        copy_scan,
        scan_joins,
    )
    object.__setattr__(plan, "_colexec_state", state)
    return state


def wants_plan(plan: RulePlan, interp: Database) -> bool:
    """Whether the columnar path should run this plan on this input.

    ``always`` forces it wherever supported; ``auto`` takes plans with
    completion work (complement joins / domain extension — where range
    arithmetic wins regardless of size) or at least one joined relation
    big enough that vectorisation beats dispatch overhead.
    """
    if _MODE == "never" or np is None or kernel.backend() != "numpy":
        return False
    supported = _plan_state(plan)[0]
    if not supported:
        return False
    if _MODE == "always":
        return True
    for op in plan.ops:
        t = type(op)
        if t is ComplementJoin or t is ExtendDomain:
            return True
        if t is BatchJoin:
            rel = interp.get(op.pred)
            if rel is not None and len(rel) >= _AUTO_MIN_REL:
                return True
    return False


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def empty_codes_array():
    """The empty head-code vector (what an underivable head yields)."""
    return np.empty(0, dtype=np.int64)


_ARANGE = None


def _arange(n: int):
    """A read-only ``0..n-1`` view over one cached, growing buffer.

    Join expansion needs an iota vector on every probe; reslicing one
    shared buffer replaces two allocations per join.  Callers never
    write through the view.
    """
    global _ARANGE
    if _ARANGE is None or len(_ARANGE) < n:
        size = 1024
        if _ARANGE is not None:
            size = max(n, 2 * len(_ARANGE))
        elif n > size:
            size = n
        _ARANGE = np.arange(size, dtype=np.int64)
    return _ARANGE[:n]


def merge_codes(a, b):
    """Union of two sorted unique code vectors, sorted unique.

    Returns ``a`` itself when ``b`` added nothing (union size equals
    ``len(a)`` implies ``b ⊆ a`` for sorted unique inputs), so fixpoint
    loops can detect convergence by identity.
    """
    if len(a) == 0:
        return b
    if len(b) == 0:
        return a
    out = kernel.sorted_unique(np.concatenate((a, b)))
    return a if len(out) == len(a) else out


def relation_from_codes(name: str, arity: int, sym, codes):
    """A code-backed :class:`~repro.db.relation.Relation` over ``codes``.

    The adopting constructor defers tuple decoding entirely: a fixpoint
    loop that feeds these relations back into the next round's
    interpretation keeps the whole IDB interned round to round.
    """
    from ...db.relation import Relation

    return Relation._from_codes(name, arity, RelationCodes(sym, arity, codes))


def _key_fold(entries, cols, nrows: int, shift: int, sym):
    """Pack getter entries into one code per frontier row (vectorised).

    Single-column keys return the frontier column itself (callers only
    read the result); wider keys start from a copy of the first field
    instead of a zero vector, saving one shift/or pass.
    """
    is_const, payload = entries[0]
    if len(entries) == 1:
        if is_const:
            return np.full(nrows, sym.intern(payload), dtype=np.int64)
        return cols[payload]
    if is_const:
        probe = np.full(nrows, sym.intern(payload), dtype=np.int64)
    else:
        probe = cols[payload].copy()
    for is_const, payload in entries[1:]:
        probe <<= shift
        probe |= sym.intern(payload) if is_const else cols[payload]
    return probe


def _expand(cols, rowidx):
    return [c[rowidx] for c in cols]


def _rel_codes(rel, sym, gen: int) -> Optional[RelationCodes]:
    """The relation's codes, or ``None`` if unusable for this execution.

    Encoding a relation whose values were never interned can widen the
    table's field width; every packed code built earlier in the same
    execution (probe keys, reduced subsets, product caches) would then
    disagree with the fresh encoding, so a generation change bails the
    whole plan out to the row path instead.
    """
    rc = rel.codes_on(sym)
    if (
        rc is None
        or sym.generation != gen
        or not isinstance(rc.codes, np.ndarray)
    ):
        return None
    return rc


def _subset_run(rc: RelationCodes, codes, key_columns) -> SortedRun:
    """A sorted run over a row subset of ``rc`` (reduced/dup-filtered)."""
    sub = RelationCodes(rc.symbols, rc.arity, codes)
    return sub.sorted_run(key_columns)


def _semijoin_reduce_codes(
    plan: RulePlan, interp: Database, sym, gen: int, scan_joins=None
):
    """The Yannakakis prologue on code vectors.

    Mirrors the row executor's ``_semijoin_reduce``: returns ``(map,
    rcs)`` where the map sends join-step index to the reduced code
    vector, only for steps the reduction actually shrank (it contains
    an empty vector when some step reduced to nothing — callers
    early-exit), and ``rcs`` is every join step's already-fetched
    :class:`RelationCodes` (the op loop reuses them instead of
    re-resolving each relation).  Returns the string ``"bail"`` when
    some relation cannot encode (caller falls to the row path) and
    ``None`` when some joined relation is absent or empty (the join
    derives nothing; the op loop's early exit handles it).
    """
    steps = plan.steps
    rcs: List[RelationCodes] = []
    for step in steps:
        rel = interp.get(step.pred)
        if rel is None or not rel:
            return None
        rc = _rel_codes(rel, sym, gen)
        if rc is None:
            return "bail"
        rcs.append(rc)
    reduced: Dict[int, Any] = {}
    for sj in plan.semijoin_steps:
        if scan_joins is not None and sj.target not in scan_joins:
            continue
        target = reduced.get(sj.target)
        target_codes = target if target is not None else rcs[sj.target].codes
        if len(target_codes) < _MIN_REDUCE_SIZE:
            continue
        source = reduced.get(sj.source)
        if source is not None:
            src_keys = kernel.dedup_sorted(
                _subset_run(rcs[sj.source], source, sj.source_columns).sorted_keys
            )
        else:
            src_keys = rcs[sj.source].sorted_run(sj.source_columns).distinct_keys()
        if target is None:
            # Unreduced target: its RelationCodes caches the column
            # views, so the key fold reuses them across rounds.
            tkeys = rcs[sj.target].key_codes(sj.target_columns)
        else:
            tsub = RelationCodes(sym, rcs[sj.target].arity, target_codes)
            tkeys = tsub.key_codes(sj.target_columns)
        mask = kernel._sorted_isin(tkeys, src_keys)
        if mask.all():
            continue  # fully covered: the semi-join would drop nothing
        kept = target_codes[mask]
        reduced[sj.target] = kept
        if len(kept) == 0:
            break
    return reduced, rcs


def execute_plan_codes(
    plan: RulePlan,
    interp: Database,
    stats=None,
    semijoin: bool = True,
):
    """Run the plan columnar; counts lowered/declined when observed.

    Thin metrics facade over :func:`_execute_plan_codes` — see there for
    the contract.  Kept separate so the recorder guard stays out of the
    (long) lowering body.
    """
    out = _execute_plan_codes(plan, interp, stats=stats, semijoin=semijoin)
    if RECORDER.enabled:
        RECORDER.inc(
            "repro_kernel_lowered_total"
            if out is not None
            else "repro_kernel_declined_total"
        )
    return out


def _execute_plan_codes(
    plan: RulePlan,
    interp: Database,
    stats=None,
    semijoin: bool = True,
):
    """Run the plan columnar; ``(symbols, head_codes)`` or ``None``.

    ``head_codes`` is the sorted unique int64 vector of derived head
    tuples packed under ``symbols`` (the interpretation's table) — the
    interned twin of ``execute_plan``'s tuple set.  ``None`` means the
    plan or input cannot be lowered (caller falls back to the row
    executor); the empty derivation is an empty *vector*, not ``None``.

    ``stats`` is an already-resolved
    :class:`~repro.core.planning.statistics.Statistics` or ``None`` —
    the same cardinalities and join selectivities the row executor
    records flow from here, so adaptive re-planning sees one feedback
    stream regardless of path.
    """
    supported, max_width, consts, needs_universe, copy_scan, scan_joins = _plan_state(
        plan
    )
    if not supported or np is None or kernel.backend() != "numpy":
        return None
    sym = interp.symbols()
    for v in consts:
        sym.intern(v)
    universe = interp.universe
    if needs_universe:
        universe_ids(sym, universe)
    if not sym.fits(max_width):
        return None
    gen = sym.generation
    b = sym.shift
    empty = np.empty(0, dtype=np.int64)

    if copy_scan:
        op = plan.ops[0]
        rel = interp.get(op.pred)
        if rel is None or not rel:
            return sym, empty
        rc = _rel_codes(rel, sym, gen)
        if rc is None:
            return None
        if stats is not None:
            stats.record_cardinality(op.pred, len(rel))
        return sym, rc.codes

    # Deferred stats: recorded only if the whole lowering succeeds, so a
    # mid-plan bail to the row path cannot double-count observations.
    pending: List[Tuple] = []

    reduced: Optional[Dict[int, Any]] = None
    step_rcs = None
    if semijoin and plan.semijoin_steps:
        out = _semijoin_reduce_codes(plan, interp, sym, gen, scan_joins)
        if out == "bail":
            return None
        if out is not None:
            reduced, step_rcs = out
            for kept in reduced.values():
                if len(kept) == 0:
                    _flush_stats(stats, pending)
                    return sym, empty

    cols: List[Any] = []
    nrows = 1
    join_idx = -1
    for op in plan.ops:
        if nrows == 0:
            break
        t = type(op)
        if t is BatchJoin:
            join_idx += 1
            if step_rcs is not None:
                # The reducer already resolved every join step's codes.
                rc = step_rcs[join_idx]
                pending.append(("card", op.pred, len(rc)))
            else:
                rel = interp.get(op.pred)
                if rel is None or not rel:
                    nrows = 0
                    break
                pending.append(("card", op.pred, len(rel)))
                rc = _rel_codes(rel, sym, gen)
                if rc is None:
                    return None
            kept = reduced.get(join_idx) if reduced else None
            if op.dup_checks:
                if kept is None:
                    kept = rc.codes[_dup_mask(rc, rc.codes, op.dup_checks)]
                else:
                    kept = kept[_dup_mask(rc, kept, op.dup_checks)]
            src = rc if kept is None else RelationCodes(sym, rc.arity, kept)
            probes = nrows
            if op.key_columns:
                run = src.sorted_run(op.key_columns)
                probe = _key_fold(op.key, cols, nrows, b, sym)
                sk = run.sorted_keys
                lefts = sk.searchsorted(probe, side="left")
                rights = sk.searchsorted(probe, side="right")
                counts = rights - lefts
                cum = counts.cumsum()
                total = int(cum[-1])
                if total == 0:
                    nrows = 0
                    break
                rowidx = _arange(nrows).repeat(counts)
                # Match index of expanded row t is ``lefts[r] + (t -
                # start[r])`` for its source row r; folding the two
                # per-row terms before the repeat leaves one repeat and
                # one shared iota instead of three repeats.
                match = run.order[
                    (lefts + counts - cum).repeat(counts) + _arange(total)
                ]
            else:
                # No key: cross every row with every (kept) tuple.
                m = len(src)
                if m == 0:
                    nrows = 0
                    break
                if not cols:
                    # Leading scan: the frontier IS the relation —
                    # borrow its cached column views, no copies.
                    src_cols = src.columns()
                    cols = [src_cols[p] for p in op.out_positions]
                    nrows = m
                    continue
                total = nrows * m
                rowidx = _arange(nrows).repeat(m)
                match = np.tile(_arange(m), nrows)
            src_cols = src.columns()
            cols = _expand(cols, rowidx)
            for p in op.out_positions:
                cols.append(src_cols[p][match])
            nrows = total
            if op.key_columns and not all(is_const for is_const, _ in op.key):
                pending.append(("join", op.pred, op.key_columns, probes, total))
        elif t is AntiJoin:
            rel = interp.get(op.pred)
            if rel is None or not rel:
                continue
            rc = _rel_codes(rel, sym, gen)
            if rc is None:
                return None
            row_codes = _key_fold(op.getters, cols, nrows, b, sym)
            keep = ~kernel._sorted_isin(row_codes, rc.codes)
            cols = [c[keep] for c in cols]
            nrows = int(keep.sum())
        elif t is CmpOp:
            lc, lp = op.left
            rc_, rp = op.right
            left = sym.intern(lp) if lc else cols[lp]
            right = sym.intern(rp) if rc_ else cols[rp]
            if lc and rc_:
                if (left == right) != op.equal:
                    nrows = 0
                continue
            keep = (left == right) if op.equal else (left != right)
            cols = [c[keep] for c in cols]
            nrows = int(keep.sum())
        elif t is ExtendDomain:
            ids = universe_ids(sym, universe)
            m = len(ids)
            if m == 0:
                nrows = 0
                break
            rowidx = _arange(nrows).repeat(m)
            cols = _expand(cols, rowidx)
            cols.append(np.tile(ids, nrows))
            nrows *= m
        elif t is ComplementJoin:
            out = _complement_join_codes(op, cols, nrows, interp, sym, gen)
            if out is None:
                return None
            cols, nrows = out
        else:  # pragma: no cover - compiler emits only the types above
            return None
    if nrows == 0:
        _flush_stats(stats, pending)
        return sym, empty
    head = _key_fold(plan.head_cols, cols, nrows, b, sym)
    _flush_stats(stats, pending)
    return sym, kernel.sorted_unique(head)


def _flush_stats(stats, pending) -> None:
    if stats is None or not pending:
        return
    for entry in pending:
        if entry[0] == "card":
            stats.record_cardinality(entry[1], entry[2])
        else:
            stats.record_join(entry[1], entry[2], entry[3], entry[4])


def _dup_mask(rc: RelationCodes, codes, dup_checks):
    """Repeated-variable agreement mask over an explicit code subset."""
    sub = RelationCodes(rc.symbols, rc.arity, codes)
    sub_cols = sub.columns()
    mask = None
    for a, c2 in dup_checks:
        m = sub_cols[a] == sub_cols[c2]
        mask = m if mask is None else (mask & m)
    return mask


def _complement_join_codes(
    op: ComplementJoin, cols, nrows: int, interp: Database, sym, gen: int
):
    """Lower one complement join; ``(cols, nrows)`` or ``None`` (bail).

    Completion is range arithmetic: the allowed assignments per bound
    key are the universe product's code range minus the key's matched
    projections, computed on sorted vectors — ``|A|^k`` tuples are never
    materialised (the existence-only case touches no value columns at
    all).
    """
    k = len(op.free_positions)
    universe = interp.universe
    n = len(universe)
    b = sym.shift
    rel = interp.get(op.pred)

    if rel is None or not rel:
        if op.exists_only:
            return (cols, nrows) if n > 0 else (cols, 0)
        full = universe_product_codes(sym, universe, k)
        return _cross_free(cols, nrows, full, k, b)

    rc = _rel_codes(rel, sym, gen)
    if rc is None:
        return None

    if not op.bound_columns:
        product = universe_product_codes(sym, universe, op.arity if op.exists_only else k)
        if op.exists_only:
            covered = len(rc) >= len(product) and bool(
                kernel._sorted_isin(product, rc.codes).all()
            )
            return (cols, nrows) if not covered else (cols, 0)
        allowed = product[~kernel._sorted_isin(product, rc.codes)]
        return _cross_free(cols, nrows, allowed, k, b)

    # Keyed case: group relation rows by bound key, frontier rows by
    # probe key, and work per *distinct* key — the vector twin of the
    # row path's one-probe-per-distinct-key contract.
    if nrows == 0:
        return cols, 0
    product = universe_product_codes(sym, universe, k)
    total = len(product)
    bk = _key_fold(op.bound_key, cols, nrows, b, sym)
    combined = rc.key_codes(tuple(op.bound_columns) + tuple(op.free_positions))
    uniq = kernel.sorted_unique(combined)
    free_mask = (np.int64(1) << np.int64(b * k)) - np.int64(1)
    ukeys = uniq >> np.int64(b * k)
    ufree = uniq & free_mask
    # ``uniq`` is sorted, so its high (key) bits are non-decreasing:
    # distinct keys and their run extents fall out of one boundary scan.
    bnd = np.empty(len(ukeys), dtype=bool)
    bnd[0] = True
    np.not_equal(ukeys[1:], ukeys[:-1], out=bnd[1:])
    dstart = np.flatnonzero(bnd)
    dk = ukeys[dstart]
    dcount = np.diff(np.append(dstart, len(ukeys)))

    # Group frontier rows by probe key with a single stable sort; the
    # sort order doubles as the per-group row index (rows of group j
    # occupy one contiguous slice), so no second argsort is needed.
    order = np.argsort(bk, kind="stable")
    sb = bk[order]
    flag = np.empty(nrows, dtype=bool)
    flag[0] = True
    np.not_equal(sb[1:], sb[:-1], out=flag[1:])
    pdk = sb[flag]
    pinv = np.empty(nrows, dtype=np.int64)
    pinv[order] = np.cumsum(flag) - 1
    grp_counts = np.diff(np.append(np.flatnonzero(flag), nrows))
    slot = np.searchsorted(dk, pdk)

    if op.exists_only:
        keep = np.ones(nrows, dtype=bool)
        for j in range(len(pdk)):
            if slot[j] < len(dk) and dk[slot[j]] == pdk[j]:
                s, c = dstart[slot[j]], dcount[slot[j]]
                covered = c >= total and bool(
                    kernel._sorted_isin(product, ufree[s : s + c]).all()
                )
            else:
                covered = total == 0
            if covered:
                keep[pinv == j] = False
        cols = [c[keep] for c in cols]
        return cols, int(keep.sum())

    blocks_rows = []
    blocks_free = []
    pos = 0
    for j in range(len(pdk)):
        c = int(grp_counts[j])
        rows_j = order[pos : pos + c]
        pos += c
        if slot[j] < len(dk) and dk[slot[j]] == pdk[j]:
            s, cnt = dstart[slot[j]], dcount[slot[j]]
            excl = ufree[s : s + cnt]
            allowed = product[~kernel._sorted_isin(product, excl)]
        else:
            allowed = product
        m = len(allowed)
        if m == 0 or c == 0:
            continue
        blocks_rows.append(np.repeat(rows_j, m))
        blocks_free.append(np.tile(allowed, c))
    if not blocks_rows:
        return cols, 0
    rowidx = np.concatenate(blocks_rows)
    free_codes = np.concatenate(blocks_free)
    cols = _expand(cols, rowidx)
    _append_decoded(cols, free_codes, k, b)
    return cols, len(rowidx)


def _cross_free(cols, nrows: int, allowed, k: int, shift: int):
    """Cross every frontier row with every allowed free-value code."""
    m = len(allowed)
    if m == 0 or nrows == 0:
        return cols, 0
    rowidx = _arange(nrows).repeat(m)
    cols = _expand(cols, rowidx)
    tiled = np.tile(allowed, nrows)
    _append_decoded(cols, tiled, k, shift)
    return cols, nrows * m


def _append_decoded(cols, codes, k: int, shift: int) -> None:
    """Unpack mixed k-field codes into k id columns, appended in order."""
    mask = (np.int64(1) << np.int64(shift)) - np.int64(1)
    for j in range(k):
        cols.append((codes >> np.int64(shift * (k - 1 - j))) & mask)
