"""Compile rules into :class:`~repro.core.planning.plan.RulePlan` objects.

Compilation happens once per (program, database) pair — or once per rule
when no database statistics are available — instead of once per rule
*per fixpoint round* as the legacy evaluator effectively did.  The join
order is chosen greedily:

1. prefer atoms sharing the most variables with the already-bound set
   (index keys get longer, lookups more selective);
2. break ties by estimated relation size — the actual EDB size when a
   database is supplied, 0 for predicates the caller declares *small*
   (semi-naive delta relations), and "large" for unknown IDB relations;
3. break remaining ties by the atom's position in the rule body, so
   compilation is deterministic.

Each rule is lowered twice over the same join order: once to the
tuple-at-a-time row program (dict bindings, kept for the legacy executor
and the grounder's compatibility path) and once to the set-at-a-time
batch program, where negations over bound variables become
:class:`~repro.core.planning.plan.AntiJoin` operations and negations
over completion variables are scheduled as
:class:`~repro.core.planning.plan.ComplementJoin` operations — the
complement representation of the paper's unsafe rules, replacing the
``|A|^k`` enumerate-then-filter completion.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ...db.database import Database
from ..literals import Atom, Eq, Literal, Negation, Neq
from ..program import Program
from ..rules import Rule
from ..terms import Constant, Variable
from .batch import execute_plan
from .plan import (
    AntiJoin,
    AtomStep,
    BatchJoin,
    BatchOp,
    CmpFilter,
    CmpOp,
    ColGetter,
    ComplementJoin,
    DomainStep,
    ExtendDomain,
    Filter,
    Getter,
    NegFilter,
    RulePlan,
    SemiJoinStep,
)
from .statistics import Statistics

_LARGE = float("inf")
"""Size estimate for relations we know nothing about (unseen IDB)."""


def _getter(term) -> Getter:
    if isinstance(term, Constant):
        return (True, term.value)
    return (False, term)


def _lower_filter(lit: Literal) -> Filter:
    if isinstance(lit, Negation):
        atom = lit.atom
        return NegFilter(
            pred=atom.pred,
            arity=atom.arity,
            getters=tuple(_getter(a) for a in atom.args),
        )
    if isinstance(lit, (Eq, Neq)):
        return CmpFilter(
            equal=isinstance(lit, Eq),
            left=_getter(lit.left),
            right=_getter(lit.right),
        )
    raise TypeError("not a filter literal: %r" % (lit,))


def _take_ready(
    filters: List[Literal], bound: Set[Variable]
) -> Tuple[Tuple[Filter, ...], List[Literal]]:
    ready = tuple(_lower_filter(f) for f in filters if f.variables() <= bound)
    rest = [f for f in filters if f.variables() - bound]
    return ready, rest


def _join_order(
    rule: Rule, estimate, stats: Optional[Statistics] = None
) -> List[Atom]:
    """The greedy join order over the positive body atoms.

    The size tie-breaker is a *cost*, not a raw cardinality: for an atom
    that would be probed through a key (constants or already-bound
    variables), the recorded join selectivity — mean matches per probe
    for that (relation, key-columns) pair — replaces the relation size
    when available, so a selective index probe into a big relation no
    longer loses to a full scan of a smaller one.
    """
    bound: Set[Variable] = set()
    order: List[Atom] = []
    remaining = list(enumerate(rule.positive_atoms()))

    def cost(atom: Atom) -> float:
        if stats is not None:
            key_columns = tuple(
                i
                for i, arg in enumerate(atom.args)
                if isinstance(arg, Constant) or arg in bound
            )
            if key_columns:
                avg = stats.avg_matches(atom.pred, key_columns)
                if avg is not None:
                    return avg
        return estimate(atom.pred)

    while remaining:
        remaining.sort(
            key=lambda pair: (
                -len(pair[1].variables() & bound),
                cost(pair[1]),
                pair[0],
            )
        )
        _, atom = remaining.pop(0)
        order.append(atom)
        bound |= atom.variables()
    return order


def _lower_semijoin(
    order: Sequence[Atom], steps: Sequence[AtomStep]
) -> Tuple[SemiJoinStep, ...]:
    """The Yannakakis reduction schedule over the join order.

    For every ordered pair of atoms sharing at least one variable, the
    forward sweep reduces the later atom by the earlier one and the
    backward sweep (in reverse pair order) the earlier by the later —
    the classic two-pass reducer, exact on acyclic (alpha-acyclic) join
    shapes and a sound, effective approximation on cyclic ones.  Pairs
    in different connected components of the variable graph share no
    variables and get no step, so cross products pass through intact.

    A step is dropped when the target's matched columns all sit inside
    the target join's own index key (``AtomStep.key_columns``): the
    executor probes those columns with already-bound values, so tuples
    the semi-join would drop are never visited anyway — the reduction
    would be pure overhead.  What survives is exactly where Yannakakis
    pays: the scan-side first atom, and reductions *against later atoms*
    whose pruning the keyed probes cannot anticipate.
    """
    if len(order) < 2:
        return ()
    var_pos: List[Dict[Variable, int]] = []
    for atom in order:
        first: Dict[Variable, int] = {}
        for i, arg in enumerate(atom.args):
            if isinstance(arg, Variable) and arg not in first:
                first[arg] = i
        var_pos.append(first)
    pairs: List[Tuple[int, int, Tuple[int, ...], Tuple[int, ...]]] = []
    for j in range(len(order)):
        for i in range(j):
            shared = sorted(
                set(var_pos[i]) & set(var_pos[j]), key=lambda v: v.name
            )
            if shared:
                pairs.append(
                    (
                        i,
                        j,
                        tuple(var_pos[i][v] for v in shared),
                        tuple(var_pos[j][v] for v in shared),
                    )
                )
    def useful(target: int, target_columns: Tuple[int, ...]) -> bool:
        return not set(target_columns) <= set(steps[target].key_columns)

    forward = [
        SemiJoinStep(target=j, target_columns=cj, source=i, source_columns=ci)
        for i, j, ci, cj in pairs
        if useful(j, cj)
    ]
    backward = [
        SemiJoinStep(target=i, target_columns=ci, source=j, source_columns=cj)
        for i, j, ci, cj in reversed(pairs)
        if useful(i, ci)
    ]
    return tuple(forward + backward)


# ----------------------------------------------------------------------
# Row-program lowering (dict executor; the PR-1 pipeline)
# ----------------------------------------------------------------------


def _lower_rows(rule: Rule, order: Sequence[Atom]):
    filters: List[Literal] = [
        t for t in rule.body if isinstance(t, (Negation, Eq, Neq))
    ]
    bound: Set[Variable] = set()
    pre_filters, filters = _take_ready(filters, bound)

    steps: List[AtomStep] = []
    for atom in order:
        key_columns = tuple(
            i
            for i, arg in enumerate(atom.args)
            if isinstance(arg, Constant) or arg in bound
        )
        key = tuple(_getter(atom.args[i]) for i in key_columns)
        new_positions: Dict[Variable, List[int]] = {}
        for i, arg in enumerate(atom.args):
            if i in key_columns:
                continue
            new_positions.setdefault(arg, []).append(i)
        new_vars = tuple(
            (var, positions[0], tuple(positions[1:]))
            for var, positions in new_positions.items()
        )
        bound |= atom.variables()
        ready, filters = _take_ready(filters, bound)
        steps.append(
            AtomStep(
                pred=atom.pred,
                arity=atom.arity,
                key_columns=key_columns,
                key=key,
                new_vars=new_vars,
                filters=ready,
            )
        )

    completions: List[DomainStep] = []
    unbound = sorted(rule.variables() - bound, key=lambda v: v.name)
    while unbound:
        def readiness(v: Variable) -> int:
            would_bind = bound | {v}
            return sum(1 for f in filters if f.variables() <= would_bind)

        unbound.sort(key=lambda v: (-readiness(v), v.name))
        var = unbound.pop(0)
        bound.add(var)
        ready, filters = _take_ready(filters, bound)
        completions.append(DomainStep(var=var, filters=ready))

    assert not filters, "unschedulable filters (vars outside rule): %r" % filters
    return pre_filters, tuple(steps), tuple(completions)


# ----------------------------------------------------------------------
# Batch-program lowering (set-at-a-time executor)
# ----------------------------------------------------------------------


def _lower_batch(rule: Rule, steps: Sequence[AtomStep]):
    col: Dict[Variable, int] = {}
    schema: List[Variable] = []
    ops: List[BatchOp] = []
    bound: Set[Variable] = set()
    pending: List[Literal] = [
        t for t in rule.body if isinstance(t, (Negation, Eq, Neq))
    ]
    head_vars = rule.head.variables()

    def col_getter(term) -> ColGetter:
        if isinstance(term, Constant):
            return (True, term.value)
        return (False, col[term])

    def lower(lit: Literal) -> BatchOp:
        if isinstance(lit, Negation):
            atom = lit.atom
            return AntiJoin(
                pred=atom.pred,
                arity=atom.arity,
                getters=tuple(col_getter(a) for a in atom.args),
            )
        return CmpOp(
            equal=isinstance(lit, Eq),
            left=col_getter(lit.left),
            right=col_getter(lit.right),
        )

    def attach_ready() -> None:
        ready = [f for f in pending if f.variables() <= bound]
        pending[:] = [f for f in pending if f.variables() - bound]
        for f in ready:
            ops.append(lower(f))

    attach_ready()  # filters with no variables run before any join

    for step in steps:
        out_positions: List[int] = []
        dup_checks: List[Tuple[int, int]] = []
        for var, first, duplicates in step.new_vars:
            col[var] = len(schema)
            schema.append(var)
            out_positions.append(first)
            for d in duplicates:
                dup_checks.append((d, first))
        ops.append(
            BatchJoin(
                pred=step.pred,
                arity=step.arity,
                key_columns=step.key_columns,
                key=tuple(
                    (True, payload) if is_const else (False, col[payload])
                    for is_const, payload in step.key
                ),
                out_positions=tuple(out_positions),
                dup_checks=tuple(dup_checks),
            )
        )
        for var, _, _ in step.new_vars:
            bound.add(var)
        attach_ready()

    # Completion: negated atoms whose unbound variables are completion
    # variables (each occurring exactly once) are scheduled complement-first.
    unbound: Set[Variable] = set(rule.variables()) - bound

    def complement_fresh(f: Literal) -> Optional[FrozenSet[Variable]]:
        """The fresh variables of ``f`` if it is complement-eligible."""
        if not isinstance(f, Negation):
            return None
        fresh = f.variables() - bound
        if not fresh:
            return None
        for v in fresh:
            if sum(1 for a in f.atom.args if a == v) != 1:
                return None  # repeated fresh variable: fall back to extend
        return fresh

    def emit_complement(f: Negation, fresh: FrozenSet[Variable], exists_only: bool) -> None:
        atom = f.atom
        bound_columns = tuple(
            i
            for i, a in enumerate(atom.args)
            if isinstance(a, Constant) or (a in bound and a not in fresh)
        )
        bound_key = tuple(col_getter(atom.args[i]) for i in bound_columns)
        free_positions = tuple(
            i for i in range(atom.arity) if i not in bound_columns
        )
        free_vars = tuple(atom.args[i] for i in free_positions)
        if not exists_only:
            for v in free_vars:
                col[v] = len(schema)
                schema.append(v)
        ops.append(
            ComplementJoin(
                pred=atom.pred,
                arity=atom.arity,
                bound_columns=bound_columns,
                bound_key=bound_key,
                free_positions=free_positions,
                vars=free_vars,
                exists_only=exists_only,
            )
        )
        pending.remove(f)
        bound.update(fresh)
        unbound.difference_update(fresh)
        attach_ready()

    # Pass 1: existence-only complement checks first — they can only
    # shrink the row set, so they run before any row multiplication.
    changed = True
    while changed:
        changed = False
        for f in list(pending):
            fresh = complement_fresh(f)
            if fresh is None:
                continue
            if any(v in head_vars for v in fresh):
                continue
            if any(
                v in g.variables() for v in fresh for g in pending if g is not f
            ):
                continue
            emit_complement(f, fresh, exists_only=True)
            changed = True

    # Pass 2: remaining completion variables — complement joins where
    # eligible, universe extension otherwise.
    while unbound:
        pick = None
        for f in pending:
            fresh = complement_fresh(f)
            if fresh is not None:
                pick = (f, fresh)
                break
        if pick is not None:
            emit_complement(pick[0], pick[1], exists_only=False)
            continue

        def readiness(v: Variable) -> int:
            would_bind = bound | {v}
            return sum(1 for f in pending if f.variables() <= would_bind)

        var = min(unbound, key=lambda v: (-readiness(v), v.name))
        col[var] = len(schema)
        schema.append(var)
        ops.append(ExtendDomain(var=var))
        bound.add(var)
        unbound.discard(var)
        attach_ready()

    assert not pending, "unschedulable filters (vars outside rule): %r" % pending
    head_cols = tuple(col_getter(a) for a in rule.head.args)
    return tuple(schema), tuple(ops), head_cols


def compile_rule(
    rule: Rule,
    db: Optional[Database] = None,
    small_preds: FrozenSet[str] = frozenset(),
    stats: Optional[Statistics] = None,
    idb_sizes: Optional[Mapping[str, int]] = None,
) -> RulePlan:
    """Compile one rule into an executable plan.

    Parameters
    ----------
    rule:
        The rule to compile.
    db:
        Optional database supplying EDB cardinalities for join ordering.
        Plans are correct without it; ordering just falls back to the
        connectivity heuristic alone.  When given, the database's sorted
        universe is hoisted into the plan so executors never re-sort it.
    small_preds:
        Predicates the caller knows to be small (semi-naive deltas); the
        planner joins through them first.
    stats:
        Optional :class:`~repro.core.planning.statistics.Statistics`
        supplying observed cardinalities (for predicates the database
        cannot size) and join selectivities (refining the order's cost
        tie-breaker).  Plans are correct without it — every estimate is
        ordering advice only.
    idb_sizes:
        Cardinalities *observed mid-fixpoint* for predicates outside the
        database — what the adaptive wrappers pass when re-planning a
        stale rule.  Takes precedence over ``stats`` cardinalities (it
        describes this very evaluation, not historical runs).
    """

    def estimate(pred: str) -> float:
        if pred in small_preds:
            return 0.0
        if db is not None:
            rel = db.get(pred)
            if rel is not None:
                return float(len(rel))
        if idb_sizes is not None and pred in idb_sizes:
            return float(idb_sizes[pred])
        if stats is not None:
            card = stats.cardinality(pred)
            if card is not None:
                return float(card)
        return _LARGE

    order = _join_order(rule, estimate, stats=stats)
    pre_filters, steps, completions = _lower_rows(rule, order)
    schema, ops, head_cols = _lower_batch(rule, steps)
    est_cards: Dict[str, float] = {}
    if len(order) >= 2:
        # A single-atom body has no ordering decision for estimates to
        # improve, so such plans never go "stale" — est_cards stays
        # empty and the adaptive refresh skips them entirely.
        for atom in order:
            pred = atom.pred
            if pred in small_preds or pred in est_cards:
                continue
            if db is not None and db.get(pred) is not None:
                continue  # database-sized: constant for the db value's lifetime
            est_cards[pred] = estimate(pred)
    return RulePlan(
        rule=rule,
        head_pred=rule.head.pred,
        head=tuple(_getter(a) for a in rule.head.args),
        pre_filters=pre_filters,
        steps=steps,
        completions=completions,
        schema=schema,
        ops=ops,
        head_cols=head_cols,
        domain=db.sorted_universe() if db is not None else None,
        domain_universe=db.universe if db is not None else None,
        semijoin_steps=_lower_semijoin(order, steps),
        est_cards=tuple(sorted(est_cards.items())),
    )


class ProgramPlan:
    """All of a program's rules compiled, plus a one-round driver.

    ``statistics`` is the sink execution observations are recorded into
    — the statistics of the store that compiled this plan, so private
    stores really do observe only their own executions (``None`` when
    compiled outside any store: nothing is recorded).
    """

    __slots__ = ("program", "plans", "statistics")

    def __init__(
        self,
        program: Program,
        plans: Sequence[RulePlan],
        statistics: Optional[Statistics] = None,
    ) -> None:
        self.program = program
        self.plans: Tuple[RulePlan, ...] = tuple(plans)
        self.statistics = statistics

    def consequences(self, interp: Database) -> Dict[str, Set[Tuple]]:
        """One-step consequences of every rule, grouped by head predicate."""
        derived: Dict[str, Set[Tuple]] = {
            p: set() for p in self.program.idb_predicates
        }
        for plan in self.plans:
            derived[plan.head_pred] |= execute_plan(
                plan, interp, stats=self.statistics
            )
        return derived

    def __len__(self) -> int:
        return len(self.plans)

    def __repr__(self) -> str:
        return "ProgramPlan(%d rules, %d joins)" % (
            len(self.plans),
            sum(len(p.steps) for p in self.plans),
        )


def compile_program(
    program: Program,
    db: Optional[Database] = None,
    stats: Optional[Statistics] = None,
) -> ProgramPlan:
    """Compile every rule of ``program``, optionally using ``db`` statistics."""
    return ProgramPlan(
        program,
        [compile_rule(r, db=db, stats=stats) for r in program.rules],
        statistics=stats,
    )


def compile_rules(
    rules: Iterable[Rule],
    db: Optional[Database] = None,
    small_preds: FrozenSet[str] = frozenset(),
    stats: Optional[Statistics] = None,
) -> List[RulePlan]:
    """Compile a bare rule list (delta variants and other derived rules)."""
    return [
        compile_rule(r, db=db, small_preds=small_preds, stats=stats)
        for r in rules
    ]
