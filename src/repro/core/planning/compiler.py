"""Compile rules into :class:`~repro.core.planning.plan.RulePlan` objects.

Compilation happens once per (program, database) pair — or once per rule
when no database statistics are available — instead of once per rule
*per fixpoint round* as the legacy evaluator effectively did.  The join
order is chosen greedily:

1. prefer atoms sharing the most variables with the already-bound set
   (index keys get longer, lookups more selective);
2. break ties by estimated relation size — the actual EDB size when a
   database is supplied, 0 for predicates the caller declares *small*
   (semi-naive delta relations), and "large" for unknown IDB relations;
3. break remaining ties by the atom's position in the rule body, so
   compilation is deterministic.

Filters are attached to the earliest step at which their variables are
bound; completion variables are ordered to ready as many filters as
possible, mirroring the legacy evaluator's dynamic heuristic.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ...db.database import Database
from ..literals import Atom, Eq, Literal, Negation, Neq
from ..program import Program
from ..rules import Rule
from ..terms import Constant, Variable
from .executor import execute_plan
from .plan import AtomStep, CmpFilter, DomainStep, Filter, Getter, NegFilter, RulePlan

_LARGE = float("inf")
"""Size estimate for relations we know nothing about (unseen IDB)."""


def _getter(term) -> Getter:
    if isinstance(term, Constant):
        return (True, term.value)
    return (False, term)


def _lower_filter(lit: Literal) -> Filter:
    if isinstance(lit, Negation):
        atom = lit.atom
        return NegFilter(
            pred=atom.pred,
            arity=atom.arity,
            getters=tuple(_getter(a) for a in atom.args),
        )
    if isinstance(lit, (Eq, Neq)):
        return CmpFilter(
            equal=isinstance(lit, Eq),
            left=_getter(lit.left),
            right=_getter(lit.right),
        )
    raise TypeError("not a filter literal: %r" % (lit,))


def _take_ready(
    filters: List[Literal], bound: Set[Variable]
) -> Tuple[Tuple[Filter, ...], List[Literal]]:
    ready = tuple(_lower_filter(f) for f in filters if f.variables() <= bound)
    rest = [f for f in filters if f.variables() - bound]
    return ready, rest


def compile_rule(
    rule: Rule,
    db: Optional[Database] = None,
    small_preds: FrozenSet[str] = frozenset(),
) -> RulePlan:
    """Compile one rule into an executable plan.

    Parameters
    ----------
    rule:
        The rule to compile.
    db:
        Optional database supplying EDB cardinalities for join ordering.
        Plans are correct without it; ordering just falls back to the
        connectivity heuristic alone.
    small_preds:
        Predicates the caller knows to be small (semi-naive deltas); the
        planner joins through them first.
    """

    def estimate(pred: str) -> float:
        if pred in small_preds:
            return 0.0
        if db is not None:
            rel = db.get(pred)
            if rel is not None:
                return float(len(rel))
        return _LARGE

    filters: List[Literal] = [
        t for t in rule.body if isinstance(t, (Negation, Eq, Neq))
    ]
    bound: Set[Variable] = set()

    pre_filters, filters = _take_ready(filters, bound)

    steps: List[AtomStep] = []
    remaining = list(enumerate(rule.positive_atoms()))
    while remaining:
        remaining.sort(
            key=lambda pair: (
                -len(pair[1].variables() & bound),
                estimate(pair[1].pred),
                pair[0],
            )
        )
        _, atom = remaining.pop(0)
        key_columns = tuple(
            i
            for i, arg in enumerate(atom.args)
            if isinstance(arg, Constant) or arg in bound
        )
        key = tuple(_getter(atom.args[i]) for i in key_columns)
        new_positions: Dict[Variable, List[int]] = {}
        for i, arg in enumerate(atom.args):
            if i in key_columns:
                continue
            new_positions.setdefault(arg, []).append(i)
        new_vars = tuple(
            (var, positions[0], tuple(positions[1:]))
            for var, positions in new_positions.items()
        )
        bound |= atom.variables()
        ready, filters = _take_ready(filters, bound)
        steps.append(
            AtomStep(
                pred=atom.pred,
                arity=atom.arity,
                key_columns=key_columns,
                key=key,
                new_vars=new_vars,
                filters=ready,
            )
        )

    completions: List[DomainStep] = []
    unbound = sorted(rule.variables() - bound, key=lambda v: v.name)
    while unbound:
        def readiness(v: Variable) -> int:
            would_bind = bound | {v}
            return sum(1 for f in filters if f.variables() <= would_bind)

        unbound.sort(key=lambda v: (-readiness(v), v.name))
        var = unbound.pop(0)
        bound.add(var)
        ready, filters = _take_ready(filters, bound)
        completions.append(DomainStep(var=var, filters=ready))

    assert not filters, "unschedulable filters (vars outside rule): %r" % filters
    return RulePlan(
        rule=rule,
        head_pred=rule.head.pred,
        head=tuple(_getter(a) for a in rule.head.args),
        pre_filters=pre_filters,
        steps=tuple(steps),
        completions=tuple(completions),
    )


class ProgramPlan:
    """All of a program's rules compiled, plus a one-round driver."""

    __slots__ = ("program", "plans")

    def __init__(self, program: Program, plans: Sequence[RulePlan]) -> None:
        self.program = program
        self.plans: Tuple[RulePlan, ...] = tuple(plans)

    def consequences(self, interp: Database) -> Dict[str, Set[Tuple]]:
        """One-step consequences of every rule, grouped by head predicate."""
        derived: Dict[str, Set[Tuple]] = {
            p: set() for p in self.program.idb_predicates
        }
        for plan in self.plans:
            derived[plan.head_pred] |= execute_plan(plan, interp)
        return derived

    def __len__(self) -> int:
        return len(self.plans)

    def __repr__(self) -> str:
        return "ProgramPlan(%d rules, %d joins)" % (
            len(self.plans),
            sum(len(p.steps) for p in self.plans),
        )


def compile_program(program: Program, db: Optional[Database] = None) -> ProgramPlan:
    """Compile every rule of ``program``, optionally using ``db`` statistics."""
    return ProgramPlan(program, [compile_rule(r, db=db) for r in program.rules])


def compile_rules(
    rules: Iterable[Rule],
    db: Optional[Database] = None,
    small_preds: FrozenSet[str] = frozenset(),
) -> List[RulePlan]:
    """Compile a bare rule list (delta variants and other derived rules)."""
    return [compile_rule(r, db=db, small_preds=small_preds) for r in rules]
