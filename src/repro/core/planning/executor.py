"""The PR-1 tuple-at-a-time plan executor (dict bindings), kept as a baseline.

This was the hot path before the set-at-a-time refactor: it interprets
the *row program* of a :class:`~repro.core.planning.plan.RulePlan`
(``pre_filters``/``steps``/``completions``) with one
``Dict[Variable, Any]`` per partial binding, copying the dict on every
extension and completing unsafe variables by enumerating the whole
universe and filtering one binding at a time.

It survives as ``solve_plan_rows_legacy``/``execute_plan_rows_legacy``
next to :func:`repro.core.operator.evaluate_rule_legacy` so the property
suite can check *three-way* equivalence — legacy evaluator vs. dict
executor vs. batch executor — and so the benchmarks can quantify the
batch executor's win over it.  Production callers go through
:mod:`repro.core.planning.batch`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple

from ...db.database import Database
from ..terms import Variable
from .plan import CmpFilter, Filter, NegFilter, RulePlan

Binding = Dict[Variable, Any]


def _value(getter, sub: Binding) -> Any:
    is_const, payload = getter
    return payload if is_const else sub[payload]


def _filter_holds(f: Filter, sub: Binding, interp: Database) -> bool:
    if isinstance(f, NegFilter):
        rel = interp.get(f.pred)
        if rel is None:
            return True
        return tuple(_value(g, sub) for g in f.getters) not in rel
    if isinstance(f, CmpFilter):
        same = _value(f.left, sub) == _value(f.right, sub)
        return same if f.equal else not same
    raise TypeError("not a compiled filter: %r" % (f,))


def solve_plan_rows_legacy(plan: RulePlan, interp: Database) -> List[Binding]:
    """All total variable bindings satisfying the plan's body (dicts).

    The PR-1 executor core: one dict per binding, copied per extension.
    Superseded by :func:`repro.core.planning.batch.solve_plan`; kept as
    the property-tested middle rung of the three-way equivalence ladder.
    """
    subs: List[Binding] = [{}]
    for f in plan.pre_filters:
        if not _filter_holds(f, {}, interp):
            return []

    for step in plan.steps:
        if not subs:
            return []
        rel = interp.get(step.pred)
        if rel is None or not rel:
            return []
        lookup = rel.index_on(step.key_columns).lookup
        key_spec = step.key
        new_vars = step.new_vars
        new_subs: List[Binding] = []
        append = new_subs.append
        for sub in subs:
            key = tuple(
                payload if is_const else sub[payload]
                for is_const, payload in key_spec
            )
            for t in lookup(key):
                extended = dict(sub)
                ok = True
                for var, first, duplicates in new_vars:
                    value = t[first]
                    for d in duplicates:
                        if t[d] != value:
                            ok = False
                            break
                    if not ok:
                        break
                    extended[var] = value
                if ok:
                    append(extended)
        subs = new_subs
        for f in step.filters:
            subs = [s for s in subs if _filter_holds(f, s, interp)]
            if not subs:
                return []

    if plan.completions and subs:
        universe = plan.completion_domain(interp)
        for step in plan.completions:
            var = step.var
            extended_subs: List[Binding] = []
            append = extended_subs.append
            for s in subs:
                for value in universe:
                    ns = dict(s)
                    ns[var] = value
                    append(ns)
            subs = extended_subs
            for f in step.filters:
                subs = [s for s in subs if _filter_holds(f, s, interp)]
            if not subs:
                return []

    return subs


def execute_plan_rows_legacy(plan: RulePlan, interp: Database) -> Set[Tuple]:
    """Head tuples via the dict executor (baseline for the batch path)."""
    subs = solve_plan_rows_legacy(plan, interp)
    if not subs:
        return set()
    head = plan.head
    return {
        tuple(payload if is_const else sub[payload] for is_const, payload in head)
        for sub in subs
    }
