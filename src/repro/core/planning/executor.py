"""Execute compiled rule plans against an interpretation.

The executor is the per-round hot path of every fixpoint engine: it
interprets a :class:`~repro.core.planning.plan.RulePlan` with no AST
inspection, no join-order decisions, and — through
:meth:`repro.db.relation.Relation.index_on` — no index construction for
relations that already served a lookup on the same key columns.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ...db.database import Database
from ..terms import Variable
from .plan import CmpFilter, Filter, NegFilter, RulePlan

Binding = Dict[Variable, Any]


def _value(getter, sub: Binding) -> Any:
    is_const, payload = getter
    return payload if is_const else sub[payload]


def _filter_holds(f: Filter, sub: Binding, interp: Database) -> bool:
    if isinstance(f, NegFilter):
        rel = interp.get(f.pred)
        if rel is None:
            return True
        return tuple(_value(g, sub) for g in f.getters) not in rel
    if isinstance(f, CmpFilter):
        same = _value(f.left, sub) == _value(f.right, sub)
        return same if f.equal else not same
    raise TypeError("not a compiled filter: %r" % (f,))


def solve_plan(plan: RulePlan, interp: Database) -> List[Binding]:
    """All total variable bindings satisfying the plan's body.

    This is the executor core; :func:`execute_plan` projects the result
    onto the head while the grounder consumes the bindings directly.
    """
    subs: List[Binding] = [{}]
    for f in plan.pre_filters:
        if not _filter_holds(f, {}, interp):
            return []

    for step in plan.steps:
        if not subs:
            return []
        rel = interp.get(step.pred)
        if rel is None or not rel:
            return []
        lookup = rel.index_on(step.key_columns).lookup
        key_spec = step.key
        new_vars = step.new_vars
        new_subs: List[Binding] = []
        append = new_subs.append
        for sub in subs:
            key = tuple(
                payload if is_const else sub[payload]
                for is_const, payload in key_spec
            )
            for t in lookup(key):
                extended = dict(sub)
                ok = True
                for var, first, duplicates in new_vars:
                    value = t[first]
                    for d in duplicates:
                        if t[d] != value:
                            ok = False
                            break
                    if not ok:
                        break
                    extended[var] = value
                if ok:
                    append(extended)
        subs = new_subs
        for f in step.filters:
            subs = [s for s in subs if _filter_holds(f, s, interp)]
            if not subs:
                return []

    if plan.completions and subs:
        universe = tuple(sorted(interp.universe, key=repr))
        for step in plan.completions:
            var = step.var
            extended_subs: List[Binding] = []
            append = extended_subs.append
            for s in subs:
                for value in universe:
                    ns = dict(s)
                    ns[var] = value
                    append(ns)
            subs = extended_subs
            for f in step.filters:
                subs = [s for s in subs if _filter_holds(f, s, interp)]
            if not subs:
                return []

    return subs


def execute_plan(plan: RulePlan, interp: Database) -> Set[Tuple]:
    """The set of ground head tuples the plan derives from ``interp``."""
    subs = solve_plan(plan, interp)
    if not subs:
        return set()
    head = plan.head
    return {
        tuple(payload if is_const else sub[payload] for is_const, payload in head)
        for sub in subs
    }
