"""Compiled rule plans: the data the executors interpret.

A :class:`RulePlan` freezes every decision the legacy ``evaluate_rule``
used to re-make on each fixpoint round:

* the join order over the positive body atoms (``steps``);
* per atom, the index key columns (constants and already-bound
  variables) and the *binding spec* for the remaining columns — which
  new variables get bound where, and which tuple positions must agree
  because of repeated variables like ``E(X, X)``;
* the filter schedule: each negation/comparison literal is attached to
  the earliest point at which all of its variables are bound, so filters
  prune partial bindings as soon as possible;
* the active-domain completion order for variables bound by no positive
  atom (the paper's unsafe rules), again with filters interleaved.

Plans carry *two* lowerings of the same rule:

* the tuple-at-a-time **row program** (``pre_filters`` / ``steps`` /
  ``completions``), interpreted by the PR-1 dict executor
  (:func:`~repro.core.planning.executor.solve_plan_rows_legacy`), where
  each partial binding is a ``{Variable: value}`` dict;
* the set-at-a-time **batch program** (``schema`` / ``ops`` /
  ``head_cols``), interpreted by
  :mod:`repro.core.planning.batch`, where the whole frontier is one
  :class:`~repro.core.planning.batch.BindingTable` (a fixed variable
  schema plus a set of value rows) and every operation is relational:
  joins are index-backed batch joins, negations over bound variables are
  **anti-joins**, and negations over completed variables become joins
  against a lazily-materialised **complement relation** instead of
  enumerate-then-filter.

Filters and head/key accessors are pre-lowered to *getters*.  The row
program uses ``(is_const, payload)`` pairs where the payload is either a
constant value or a :class:`~repro.core.terms.Variable` to look up in
the binding dict; the batch program uses the same shape but the payload
of a non-constant getter is a 0-based *column index* into the schema, so
the batch inner loops do tuple indexing only — no dicts, no AST.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple, Union

from ..rules import Rule
from ..terms import Variable

Getter = Tuple[bool, Any]
"""``(True, value)`` for a constant, ``(False, Variable)`` for a lookup."""

ColGetter = Tuple[bool, Any]
"""``(True, value)`` for a constant, ``(False, column_index)`` for a row column."""


@dataclass(frozen=True)
class NegFilter:
    """A negated atom ``!pred(args)``; holds when the ground tuple is absent."""

    pred: str
    arity: int
    getters: Tuple[Getter, ...]


@dataclass(frozen=True)
class CmpFilter:
    """An (in)equality ``left = right`` / ``left != right``."""

    equal: bool
    left: Getter
    right: Getter


Filter = Union[NegFilter, CmpFilter]


@dataclass(frozen=True)
class AtomStep:
    """One join step: probe ``pred``'s index and extend the bindings.

    ``new_vars`` entries are ``(var, first_position, duplicate_positions)``;
    duplicate positions must carry the same value as the first (repeated
    variables within the atom).
    """

    pred: str
    arity: int
    key_columns: Tuple[int, ...]
    key: Tuple[Getter, ...]
    new_vars: Tuple[Tuple[Variable, int, Tuple[int, ...]], ...]
    filters: Tuple[Filter, ...]


@dataclass(frozen=True)
class DomainStep:
    """Bind one completion variable to every universe element."""

    var: Variable
    filters: Tuple[Filter, ...]


# ----------------------------------------------------------------------
# Batch (set-at-a-time) operations
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BatchJoin:
    """Index-backed batch join: extend every row with matching tuples.

    ``key_columns``/``key`` address the relation columns that are keyed by
    constants or already-bound schema columns; ``out_positions`` are the
    relation positions appended to each row (one per newly bound
    variable, in schema order); ``dup_checks`` are ``(pos, pos')`` pairs
    that must agree within the matched tuple (repeated fresh variables).
    """

    pred: str
    arity: int
    key_columns: Tuple[int, ...]
    key: Tuple[ColGetter, ...]
    out_positions: Tuple[int, ...]
    dup_checks: Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class AntiJoin:
    """Negated atom over bound columns: drop rows with a match in ``pred``.

    The relational face of a ``!pred(...)`` literal whose variables are
    all bound — the whole row set is filtered against the relation's
    tuple set at once instead of one membership test per binding dict.
    """

    pred: str
    arity: int
    getters: Tuple[ColGetter, ...]


@dataclass(frozen=True)
class CmpOp:
    """Batch (in)equality filter over two getters."""

    equal: bool
    left: ColGetter
    right: ColGetter


@dataclass(frozen=True)
class ExtendDomain:
    """Cross every row with the universe, appending one column."""

    var: Variable


@dataclass(frozen=True)
class SemiJoinStep:
    """One semi-join of the Yannakakis reduction prologue.

    Before any :class:`BindingTable` row is materialised, the executor
    can reduce each positive atom's relation to the tuples that agree
    with *some* tuple of another positive atom on their shared
    variables — tuples that fail this can participate in no satisfying
    assignment, so dropping them is always sound (negations and
    comparisons only ever remove further rows).  ``target``/``source``
    index the plan's join order (:attr:`RulePlan.steps`);
    ``target_columns``/``source_columns`` are the matching shared-variable
    positions (first occurrence for repeated variables).

    The full pass is one forward sweep over the join order followed by
    one backward sweep (the classic two-pass reducer); both sweeps are
    compiled into :attr:`RulePlan.semijoin_steps` in execution order.
    Atoms in different connected components of the body's variable
    graph share no step — pure cross products pass through unreduced.
    """

    target: int
    target_columns: Tuple[int, ...]
    source: int
    source_columns: Tuple[int, ...]


@dataclass(frozen=True)
class ComplementJoin:
    """Complete variables *through* a negated atom, complement-first.

    For a literal ``!pred(args)`` whose unbound variables are all
    completion variables (each occurring exactly once in the atom), the
    enumerate-then-filter pipeline — cross the rows with ``|A|^k``
    candidate assignments, then drop the ones present in ``pred`` — is
    replaced by a join against the *complement*:

    * with no bound positions, rows are crossed with the lazily
      materialised, relation-cached complement
      ``A^arity - pred`` (:meth:`repro.db.relation.Relation.complement_on`);
    * with bound positions, rows are grouped by their key and each group
      is extended with ``A^k`` minus the key's matched projections
      (one index probe per distinct key, not per row).

    When ``exists_only`` is true the completed variables feed nothing
    downstream (not in the head, in no later filter), so the rows are
    merely *kept or dropped* on complement non-emptiness — no columns are
    appended and the ``|A|^k`` blowup disappears entirely.
    """

    pred: str
    arity: int
    bound_columns: Tuple[int, ...]
    bound_key: Tuple[ColGetter, ...]
    free_positions: Tuple[int, ...]
    vars: Tuple[Variable, ...]
    exists_only: bool


BatchOp = Union[BatchJoin, AntiJoin, CmpOp, ExtendDomain, ComplementJoin]


@dataclass(frozen=True)
class RulePlan:
    """A fully compiled rule, ready for repeated execution."""

    rule: Rule
    head_pred: str
    head: Tuple[Getter, ...]
    pre_filters: Tuple[Filter, ...]
    steps: Tuple[AtomStep, ...]
    completions: Tuple[DomainStep, ...]
    # Batch program (set-at-a-time lowering of the same rule).
    schema: Tuple[Variable, ...] = ()
    ops: Tuple[BatchOp, ...] = ()
    head_cols: Tuple[ColGetter, ...] = ()
    # Universe snapshot hoisted from the compile-time database (if any):
    # executors use it instead of re-sorting ``interp.universe`` per call.
    domain: Optional[Tuple[Any, ...]] = None
    domain_universe: Optional[frozenset] = None
    # Yannakakis semi-join reduction prologue over the join order
    # (forward + backward sweep); empty when the body has fewer than two
    # connected positive atoms.  Executed by the batch executor unless
    # the per-call ``semijoin`` flag disables it.
    semijoin_steps: Tuple[SemiJoinStep, ...] = ()
    # Planning-time size estimates for the body predicates whose
    # cardinality the compile-time database could NOT supply (IDB
    # predicates, minus declared-small deltas): ``(pred, estimate)``
    # pairs.  The adaptive wrappers compare these against the sizes
    # observed mid-fixpoint to decide when the plan has gone stale.
    est_cards: Tuple[Tuple[str, float], ...] = ()

    @property
    def needs_universe(self) -> bool:
        """True when the plan completes some variable over the universe."""
        return bool(self.completions)

    def completion_domain(self, interp) -> Tuple[Any, ...]:
        """The ordered completion domain for ``interp``.

        The sorted universe hoisted at compile time when it still matches
        the interpretation (the identity check is the common case: derived
        databases share their parent's universe object), else the
        interpretation's own cached sort.  Both executors route through
        this so they can never complete over different domains.
        """
        if self.domain is not None and (
            interp.universe is self.domain_universe
            or interp.universe == self.domain_universe
        ):
            return self.domain
        return interp.sorted_universe()

    def describe(self) -> str:
        """A human-readable sketch of the plan (for debugging/benchmarks)."""
        parts = ["plan for %s" % self.rule]
        for sj in self.semijoin_steps:
            parts.append(
                "  semi-join reduce %s/%d[%s] by %s/%d[%s]"
                % (
                    self.steps[sj.target].pred,
                    self.steps[sj.target].arity,
                    list(sj.target_columns),
                    self.steps[sj.source].pred,
                    self.steps[sj.source].arity,
                    list(sj.source_columns),
                )
            )
        for op in self.ops:
            if isinstance(op, BatchJoin):
                parts.append(
                    "  join %s/%d on columns %s"
                    % (op.pred, op.arity, list(op.key_columns))
                )
            elif isinstance(op, AntiJoin):
                parts.append("  anti-join %s/%d" % (op.pred, op.arity))
            elif isinstance(op, CmpOp):
                parts.append("  filter %s" % ("=" if op.equal else "!="))
            elif isinstance(op, ExtendDomain):
                parts.append("  complete %s over universe" % op.var)
            elif isinstance(op, ComplementJoin):
                parts.append(
                    "  complement-%s %s via !%s/%d (keyed on %s)"
                    % (
                        "check" if op.exists_only else "join",
                        ", ".join(str(v) for v in op.vars),
                        op.pred,
                        op.arity,
                        list(op.bound_columns) or "nothing",
                    )
                )
        return "\n".join(parts)
