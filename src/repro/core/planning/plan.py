"""Compiled rule plans: the data the executor interprets.

A :class:`RulePlan` freezes every decision the legacy ``evaluate_rule``
used to re-make on each fixpoint round:

* the join order over the positive body atoms (``steps``);
* per atom, the index key columns (constants and already-bound
  variables) and the *binding spec* for the remaining columns — which
  new variables get bound where, and which tuple positions must agree
  because of repeated variables like ``E(X, X)``;
* the filter schedule: each negation/comparison literal is attached to
  the earliest point at which all of its variables are bound, so filters
  prune partial bindings as soon as possible;
* the active-domain completion order for variables bound by no positive
  atom (the paper's unsafe rules), again with filters interleaved.

Filters and head/key accessors are pre-lowered to *getters* — pairs
``(is_const, payload)`` where the payload is either a constant value or
a :class:`~repro.core.terms.Variable` to look up in the binding — so the
executor's inner loops never touch the AST.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple, Union

from ..rules import Rule
from ..terms import Variable

Getter = Tuple[bool, Any]
"""``(True, value)`` for a constant, ``(False, Variable)`` for a lookup."""


@dataclass(frozen=True)
class NegFilter:
    """A negated atom ``!pred(args)``; holds when the ground tuple is absent."""

    pred: str
    arity: int
    getters: Tuple[Getter, ...]


@dataclass(frozen=True)
class CmpFilter:
    """An (in)equality ``left = right`` / ``left != right``."""

    equal: bool
    left: Getter
    right: Getter


Filter = Union[NegFilter, CmpFilter]


@dataclass(frozen=True)
class AtomStep:
    """One join step: probe ``pred``'s index and extend the bindings.

    ``new_vars`` entries are ``(var, first_position, duplicate_positions)``;
    duplicate positions must carry the same value as the first (repeated
    variables within the atom).
    """

    pred: str
    arity: int
    key_columns: Tuple[int, ...]
    key: Tuple[Getter, ...]
    new_vars: Tuple[Tuple[Variable, int, Tuple[int, ...]], ...]
    filters: Tuple[Filter, ...]


@dataclass(frozen=True)
class DomainStep:
    """Bind one completion variable to every universe element."""

    var: Variable
    filters: Tuple[Filter, ...]


@dataclass(frozen=True)
class RulePlan:
    """A fully compiled rule, ready for repeated execution."""

    rule: Rule
    head_pred: str
    head: Tuple[Getter, ...]
    pre_filters: Tuple[Filter, ...]
    steps: Tuple[AtomStep, ...]
    completions: Tuple[DomainStep, ...]

    @property
    def needs_universe(self) -> bool:
        """True when the plan completes some variable over the universe."""
        return bool(self.completions)

    def describe(self) -> str:
        """A human-readable sketch of the plan (for debugging/benchmarks)."""
        parts = ["plan for %s" % self.rule]
        for s in self.steps:
            parts.append(
                "  join %s/%d on columns %s (+%d filters)"
                % (s.pred, s.arity, list(s.key_columns), len(s.filters))
            )
        for c in self.completions:
            parts.append(
                "  complete %s over universe (+%d filters)"
                % (c.var, len(c.filters))
            )
        return "\n".join(parts)
