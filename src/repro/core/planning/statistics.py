"""Execution statistics: the feedback half of the adaptive planner.

PR 1's compiler orders joins from *static* evidence only — EDB
cardinalities read off the database at compile time and a constant
"large" estimate for every IDB predicate.  That guess is exactly wrong
for recursive programs, where the IDB overtakes the EDB within a few
rounds.  :class:`Statistics` closes the loop: the batch executor
(:mod:`repro.core.planning.batch`) records what it actually observed —
per-relation cardinalities and per-(relation, key-columns) join
selectivities — and the compiler consults those observations on the
next compilation, while the adaptive wrappers
(:mod:`repro.core.planning.adaptive`) trigger that recompilation
mid-fixpoint when the observations diverge from the plan's
planning-time estimates.

One :class:`Statistics` instance is carried per
:class:`~repro.core.planning.store.PlanStore` (the process-wide
:data:`~repro.core.planning.store.PLAN_STORE` carries
:data:`DEFAULT_STATISTICS`, which is also the batch executor's default
sink), so private stores — tests, benchmarks — observe only their own
executions.

Maintenance work must not poison the feedback: the materialize
subsystem evaluates delta variants whose relations (``P@ins``,
``P@del``, ``P@old``, ``P@new``, DRed frontiers) are tiny change sets
or historical snapshots, and the semi-naive engines read ``P__delta``
relations that shrink to nothing as the fixpoint converges.  Recording
those sizes under the real predicate names would teach the planner that
big relations are small.  Every reserved name carries one of the marker
substrings ``@`` or ``__`` (unparseable in user programs), so
:meth:`Statistics.tracked` filters them all; the materialize executors
additionally pass ``stats=None`` to skip recording entirely.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

REPLAN_FACTOR = 4.0
"""Default divergence factor: a plan goes stale when some input relation
is this many times bigger or smaller than the plan's estimate for it.
Doubles as the base of the coarse cardinality buckets in adaptive plan
keys, so "diverged by the factor" and "moved to another bucket" agree."""

MIN_REPLAN_SIZE = 16
"""Re-planning floor: while every relevant relation is smaller than
this, any join order finishes in microseconds and a recompile costs more
than it could save, so estimates are never considered stale."""

_MARKERS = ("@", "__")
"""Substrings reserved for synthetic predicates (delta variants, alias
relations, frontiers, pseudo-heads); none can appear in a parsed
program's predicate names."""


def cardinality_bucket(size: int, factor: float = REPLAN_FACTOR) -> int:
    """The coarse logarithmic bucket of a relation cardinality.

    Bucket 0 holds the empty relation, bucket ``b`` the sizes in
    ``[factor**(b-1), factor**b)`` — so two sizes share a bucket only
    when they are within ``factor`` of each other, which is what lets
    re-planned variants coexist under distinct plan-store keys without
    a new key per exact cardinality.
    """
    bucket = 0
    threshold = 1.0
    while size >= threshold:
        bucket += 1
        threshold *= factor
    return bucket


def diverged(estimate: float, observed: int, factor: float = REPLAN_FACTOR) -> bool:
    """Whether an observed cardinality invalidates a planning-time estimate.

    An infinite estimate (the compiler's unknown-IDB placeholder) is
    treated as *no information*: any meaningful observation diverges
    from it, so the first adaptive refresh replaces guess-based plans
    with observation-based ones.  Finite estimates diverge
    symmetrically — the relation grew past ``factor * estimate`` or
    shrank below ``estimate / factor`` — because the non-cumulative
    operator can move relation sizes in both directions.  Below
    :data:`MIN_REPLAN_SIZE` nothing ever diverges: re-ordering joins
    over a handful of tuples cannot repay a recompile.
    """
    if estimate == float("inf"):
        return observed >= MIN_REPLAN_SIZE
    hi = max(estimate, float(observed))
    if hi < MIN_REPLAN_SIZE:
        return False
    lo = min(estimate, float(observed))
    return hi >= factor * max(lo, 1.0)


class Statistics:
    """Observed cardinalities and join selectivities, per plan store.

    ``cards`` maps a relation name to its most recently observed
    cardinality.  Join observations accumulate per
    ``(relation, key_columns)`` pair as ``(probes, matches)`` totals,
    so :meth:`avg_matches` is the empirical mean number of tuples a
    keyed index probe returns — the quantity the compiler's join-order
    cost model actually wants, where a static size estimate
    over-charges selective joins into big relations.

    Observations are keyed by *predicate name alone*, deliberately: the
    point is that they transfer across the database values of one
    evolving workload (fixpoint rounds, update streams), which any
    db-scoped key would forbid.  The cost is that two unrelated
    programs sharing a predicate name read each other's numbers through
    a shared store.  The exposure is bounded: ordering advice only
    (never correctness), the adaptive wrappers always pass *exact*
    observed sizes (``idb_sizes``), which take precedence over these
    records, and a stale observation merely replaces the "unknown,
    assume infinite" prior it would otherwise fall back to.  Workloads
    that want full isolation use a private :class:`PlanStore` (tests
    and benchmarks here do).
    """

    __slots__ = ("cards", "replans", "_joins", "_tracked")

    def __init__(self) -> None:
        self.cards: Dict[str, int] = {}
        self.replans: int = 0
        self._joins: Dict[Tuple[str, Tuple[int, ...]], List[int]] = {}
        self._tracked: Dict[str, bool] = {}

    # ------------------------------------------------------------------
    # Recording (the batch executor's side)
    # ------------------------------------------------------------------

    @staticmethod
    def tracked(pred: str) -> bool:
        """Whether observations about ``pred`` are worth keeping.

        Synthetic predicates — semi-naive deltas, maintenance aliases
        and frontiers, grounding/counting pseudo-heads — all carry a
        reserved marker substring; their sizes describe change sets,
        not relations, and recording them would poison the estimates
        for the real predicates they shadow.
        """
        return not any(marker in pred for marker in _MARKERS)

    def _is_tracked(self, pred: str) -> bool:
        """Memoised :meth:`tracked` — this sits on the join hot path."""
        cached = self._tracked.get(pred)
        if cached is None:
            cached = self._tracked[pred] = Statistics.tracked(pred)
        return cached

    def record_cardinality(self, pred: str, size: int) -> None:
        """Record the observed size of a relation (latest value wins)."""
        if self._is_tracked(pred):
            self.cards[pred] = size

    def record_join(
        self, pred: str, key_columns: Tuple[int, ...], probes: int, matches: int
    ) -> None:
        """Accumulate one batch join's probe/match totals."""
        if probes <= 0 or not self._is_tracked(pred):
            return
        entry = self._joins.get((pred, key_columns))
        if entry is None:
            self._joins[(pred, key_columns)] = [probes, matches]
        else:
            entry[0] += probes
            entry[1] += matches

    # ------------------------------------------------------------------
    # Consulting (the compiler's side)
    # ------------------------------------------------------------------

    def cardinality(self, pred: str) -> Optional[int]:
        """The last observed cardinality of ``pred``, if any."""
        return self.cards.get(pred)

    def avg_matches(
        self, pred: str, key_columns: Tuple[int, ...]
    ) -> Optional[float]:
        """Mean tuples returned per probe of ``pred`` keyed on ``key_columns``."""
        entry = self._joins.get((pred, key_columns))
        if entry is None:
            return None
        probes, matches = entry
        return matches / probes

    def join_keys(self):
        """The ``(pred, key_columns)`` pairs with recorded selectivities."""
        return self._joins.keys()

    def snapshot(self) -> Dict[str, object]:
        """A JSON-safe view for the server's ``stats`` verb.

        Join keys are tuples, so they are rendered as
        ``"PRED[c0,c1]"`` strings mapping to the empirical mean matches
        per probe.
        """
        joins = {
            "%s[%s]" % (pred, ",".join(str(c) for c in cols)): matches / probes
            for (pred, cols), (probes, matches) in sorted(self._joins.items())
            if probes
        }
        return {
            "cardinalities": dict(sorted(self.cards.items())),
            "avg_matches": joins,
            "replans": self.replans,
        }

    def clear(self) -> None:
        """Forget every observation."""
        self.cards.clear()
        self.replans = 0
        self._joins.clear()
        self._tracked.clear()

    def __len__(self) -> int:
        return len(self.cards) + len(self._joins)

    def __repr__(self) -> str:
        return "Statistics(%d relations, %d join keys)" % (
            len(self.cards),
            len(self._joins),
        )


DEFAULT_STATISTICS = Statistics()
"""The process-wide sink: what the batch executor records into unless a
caller passes its own (or ``None`` to disable recording), and what the
process-wide plan store compiles against."""
