"""A (program, db)-keyed store of compiled plans, shared across engines.

Before the store, every engine compiled privately: the naive and
inflationary engines each called ``compile_program``, semi-naive
compiled its delta variants, the grounder compiled an EDB projection per
rule — and nothing was shared between strata, between engines run on
the same input, or between the SAT pipeline and the fixpoint engines.

:class:`PlanStore` is a bounded LRU mapping
``(kind, program-or-rule, db, small_preds)`` keys to compiled plans.
Databases and programs are immutable values with value hashing, so the
key is exact: a hit is guaranteed to be a plan compiled for the same
rules over the same statistics.  All six engines (naive, semi-naive,
incremental, inflationary, stratified, well-founded via the grounder)
and the ad-hoc ``evaluate_rule``/``theta`` wrappers consume the
process-wide :data:`PLAN_STORE`; tests may construct private stores.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import FrozenSet, Iterable, List, Mapping, Optional, Tuple

from ...db.database import Database
from ..program import Program
from ..rules import Rule
from .adaptive import AdaptiveProgramPlan, AdaptiveRulePlans
from .compiler import ProgramPlan, RulePlan, compile_program, compile_rule
from .statistics import (
    DEFAULT_STATISTICS,
    REPLAN_FACTOR,
    Statistics,
    cardinality_bucket,
)


class PlanStore:
    """Bounded LRU cache of compiled :class:`RulePlan`/:class:`ProgramPlan`.

    Parameters
    ----------
    maxsize:
        Entry cap; least-recently-used entries are evicted beyond it.
        Keys hold references to their databases, so the bound also caps
        how many database values the store can keep alive.
    statistics:
        The :class:`~repro.core.planning.statistics.Statistics` instance
        every compilation through this store consults (observed
        cardinalities for unknown predicates, join selectivities for the
        order's cost model).  Defaults to a private instance; the
        process-wide :data:`PLAN_STORE` shares
        :data:`~repro.core.planning.statistics.DEFAULT_STATISTICS`, the
        batch executor's default recording sink — which is what closes
        the feedback loop.
    """

    __slots__ = ("maxsize", "hits", "misses", "statistics", "_plans")

    def __init__(
        self, maxsize: int = 512, statistics: Optional[Statistics] = None
    ) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive, got %d" % maxsize)
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.statistics = statistics if statistics is not None else Statistics()
        self._plans: "OrderedDict" = OrderedDict()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _lookup(self, key, build):
        cache = self._plans
        try:
            value = cache.pop(key)
        except KeyError:
            self.misses += 1
            value = build()
        else:
            self.hits += 1
        cache[key] = value
        while len(cache) > self.maxsize:
            cache.popitem(last=False)
        return value

    def rule_plan(
        self,
        rule: Rule,
        db: Optional[Database] = None,
        small_preds: FrozenSet[str] = frozenset(),
    ) -> RulePlan:
        """The compiled plan for one rule (compiling on first request)."""
        return self._lookup(
            ("rule", rule, db, small_preds),
            lambda: compile_rule(
                rule, db=db, small_preds=small_preds, stats=self.statistics
            ),
        )

    def rule_plans(
        self,
        rules: Iterable[Rule],
        db: Optional[Database] = None,
        small_preds: FrozenSet[str] = frozenset(),
    ) -> List[RulePlan]:
        """Compiled plans for a rule list (delta variants and the like)."""
        return [self.rule_plan(r, db=db, small_preds=small_preds) for r in rules]

    def rule_plan_adaptive(
        self,
        rule: Rule,
        db: Optional[Database] = None,
        small_preds: FrozenSet[str] = frozenset(),
        observed: Mapping[str, int] = None,
        factor: float = REPLAN_FACTOR,
    ) -> RulePlan:
        """A re-planned variant compiled against *observed* IDB sizes.

        The key extends the plain rule key with a coarse cardinality
        bucket per observed predicate, so variants for different growth
        stages coexist — with each other and with the statistics-free
        original — instead of thrashing one entry, and a fixpoint
        revisiting a bucket (another engine, the next run) hits the
        cache.  Within a bucket the exact sizes differ by less than the
        divergence factor, which is precisely the regime where the
        greedy order is insensitive to them.
        """
        observed = dict(observed or {})
        buckets = tuple(
            sorted(
                (pred, cardinality_bucket(size, factor))
                for pred, size in observed.items()
            )
        )
        return self._lookup(
            ("rule+stats", rule, db, small_preds, buckets),
            lambda: compile_rule(
                rule,
                db=db,
                small_preds=small_preds,
                stats=self.statistics,
                idb_sizes=observed,
            ),
        )

    def program_plan(
        self, program: Program, db: Optional[Database] = None
    ) -> ProgramPlan:
        """The compiled :class:`ProgramPlan` for a whole program."""
        return self._lookup(
            ("program", program, db),
            lambda: compile_program(program, db=db, stats=self.statistics),
        )

    # ------------------------------------------------------------------
    # Adaptive wrappers (per-run; the plans underneath stay shared)
    # ------------------------------------------------------------------

    def adaptive_program_plan(
        self,
        program: Program,
        db: Optional[Database] = None,
        factor: float = REPLAN_FACTOR,
    ) -> AdaptiveProgramPlan:
        """A :class:`~repro.core.planning.adaptive.AdaptiveProgramPlan`
        over this store: ``theta``-compatible, re-plans rules mid-fixpoint
        when observed input cardinalities diverge from the plans'
        estimates by more than ``factor``."""
        return AdaptiveProgramPlan(self, program, db=db, factor=factor)

    def adaptive_rule_plans(
        self,
        rules: Iterable[Rule],
        db: Optional[Database] = None,
        small_preds: FrozenSet[str] = frozenset(),
        factor: float = REPLAN_FACTOR,
        known_sizes: Optional[Mapping[str, int]] = None,
    ) -> AdaptiveRulePlans:
        """An :class:`~repro.core.planning.adaptive.AdaptiveRulePlans`
        over this store (the rule-list face: semi-naive delta variants).

        ``known_sizes`` pins predicates whose cardinalities the caller
        holds as facts — per-stratum planning passes the lower strata's
        final sizes so they are compiled in up front and never trigger
        a divergence re-plan.
        """
        return AdaptiveRulePlans(
            self,
            rules,
            db=db,
            small_preds=small_preds,
            factor=factor,
            known_sizes=known_sizes,
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def invalidate(
        self,
        db: Optional[Database] = None,
        program: Optional[Program] = None,
        rule: Optional[Rule] = None,
    ) -> int:
        """Drop entries matching every given criterion; return the count.

        ``invalidate()`` with no arguments clears the store.  ``db``
        matches entries compiled against that database; ``program``
        matches the program's own entry and every entry for one of its
        rules; ``rule`` matches that rule's entries.
        """
        if db is None and program is None and rule is None:
            dropped = len(self._plans)
            self._plans.clear()
            return dropped

        program_rules = frozenset(program.rules) if program is not None else None

        def matches(key) -> bool:
            kind, obj, kdb = key[0], key[1], key[2]
            is_rule_kind = kind in ("rule", "rule+stats")
            if db is not None and kdb != db:
                return False
            if rule is not None and not (is_rule_kind and obj == rule):
                return False
            if program_rules is not None:
                if kind == "program" and obj != program:
                    return False
                if is_rule_kind and obj not in program_rules:
                    return False
            return True

        doomed = [k for k in self._plans if matches(k)]
        for k in doomed:
            del self._plans[k]
        return len(doomed)

    def invalidate_lineage(self, lineage) -> int:
        """Drop every entry keyed to a database of the given lineage.

        ``Database.apply_delta`` is the one API that *supersedes* a
        database value, and engines compile not only against that value
        but against databases derived from it — the stratified engine's
        per-stratum working databases, the grounder's interpretations.
        Those derived values share the base value's lineage token
        (functional updates propagate it), so when the base is
        superseded this one call evicts the whole family eagerly —
        entries that could otherwise only die by LRU churn, because no
        future lookup can ever construct an equal key again.
        """
        if lineage is None:
            return 0
        doomed = [
            k
            for k in self._plans
            if getattr(k[2], "_lineage", None) is lineage
        ]
        for k in doomed:
            del self._plans[k]
        return len(doomed)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        self._plans.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> Tuple[int, int, int]:
        """``(hits, misses, current_size)``."""
        return (self.hits, self.misses, len(self._plans))

    def __len__(self) -> int:
        return len(self._plans)

    def __repr__(self) -> str:
        return "PlanStore(%d plans, %d hits, %d misses)" % (
            len(self._plans),
            self.hits,
            self.misses,
        )


PLAN_STORE = PlanStore(statistics=DEFAULT_STATISTICS)
"""The process-wide store every engine and wrapper compiles through.
It shares the batch executor's default recording sink, so statistics
observed during execution feed the very next compilation."""
