"""A (program, db)-keyed store of compiled plans, shared across engines.

Before the store, every engine compiled privately: the naive and
inflationary engines each called ``compile_program``, semi-naive
compiled its delta variants, the grounder compiled an EDB projection per
rule — and nothing was shared between strata, between engines run on
the same input, or between the SAT pipeline and the fixpoint engines.

:class:`PlanStore` is a bounded LRU mapping
``(kind, program-or-rule, db, small_preds)`` keys to compiled plans.
Databases and programs are immutable values with value hashing, so the
key is exact: a hit is guaranteed to be a plan compiled for the same
rules over the same statistics.  All six engines (naive, semi-naive,
incremental, inflationary, stratified, well-founded via the grounder)
and the ad-hoc ``evaluate_rule``/``theta`` wrappers consume the
process-wide :data:`PLAN_STORE`; tests may construct private stores.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import FrozenSet, Iterable, List, Optional, Tuple

from ...db.database import Database
from ..program import Program
from ..rules import Rule
from .compiler import ProgramPlan, RulePlan, compile_program, compile_rule


class PlanStore:
    """Bounded LRU cache of compiled :class:`RulePlan`/:class:`ProgramPlan`.

    Parameters
    ----------
    maxsize:
        Entry cap; least-recently-used entries are evicted beyond it.
        Keys hold references to their databases, so the bound also caps
        how many database values the store can keep alive.
    """

    __slots__ = ("maxsize", "hits", "misses", "_plans")

    def __init__(self, maxsize: int = 512) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive, got %d" % maxsize)
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._plans: "OrderedDict" = OrderedDict()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _lookup(self, key, build):
        cache = self._plans
        try:
            value = cache.pop(key)
        except KeyError:
            self.misses += 1
            value = build()
        else:
            self.hits += 1
        cache[key] = value
        while len(cache) > self.maxsize:
            cache.popitem(last=False)
        return value

    def rule_plan(
        self,
        rule: Rule,
        db: Optional[Database] = None,
        small_preds: FrozenSet[str] = frozenset(),
    ) -> RulePlan:
        """The compiled plan for one rule (compiling on first request)."""
        return self._lookup(
            ("rule", rule, db, small_preds),
            lambda: compile_rule(rule, db=db, small_preds=small_preds),
        )

    def rule_plans(
        self,
        rules: Iterable[Rule],
        db: Optional[Database] = None,
        small_preds: FrozenSet[str] = frozenset(),
    ) -> List[RulePlan]:
        """Compiled plans for a rule list (delta variants and the like)."""
        return [self.rule_plan(r, db=db, small_preds=small_preds) for r in rules]

    def program_plan(
        self, program: Program, db: Optional[Database] = None
    ) -> ProgramPlan:
        """The compiled :class:`ProgramPlan` for a whole program."""
        return self._lookup(
            ("program", program, db),
            lambda: compile_program(program, db=db),
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def invalidate(
        self,
        db: Optional[Database] = None,
        program: Optional[Program] = None,
        rule: Optional[Rule] = None,
    ) -> int:
        """Drop entries matching every given criterion; return the count.

        ``invalidate()`` with no arguments clears the store.  ``db``
        matches entries compiled against that database; ``program``
        matches the program's own entry and every entry for one of its
        rules; ``rule`` matches that rule's entries.
        """
        if db is None and program is None and rule is None:
            dropped = len(self._plans)
            self._plans.clear()
            return dropped

        program_rules = frozenset(program.rules) if program is not None else None

        def matches(key) -> bool:
            kind, obj, kdb = key[0], key[1], key[2]
            if db is not None and kdb != db:
                return False
            if rule is not None and not (kind == "rule" and obj == rule):
                return False
            if program_rules is not None:
                if kind == "program" and obj != program:
                    return False
                if kind == "rule" and obj not in program_rules:
                    return False
            return True

        doomed = [k for k in self._plans if matches(k)]
        for k in doomed:
            del self._plans[k]
        return len(doomed)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        self._plans.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> Tuple[int, int, int]:
        """``(hits, misses, current_size)``."""
        return (self.hits, self.misses, len(self._plans))

    def __len__(self) -> int:
        return len(self._plans)

    def __repr__(self) -> str:
        return "PlanStore(%d plans, %d hits, %d misses)" % (
            len(self._plans),
            self.hits,
            self.misses,
        )


PLAN_STORE = PlanStore()
"""The process-wide store every engine and wrapper compiles through."""
