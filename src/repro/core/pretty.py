"""Round-trippable pretty-printing of programs.

``parse_program(pretty(p)) == p`` holds for every program whose constants
are integers or strings (the property is tested with hypothesis).
"""

from __future__ import annotations

import re

from .literals import Atom, Eq, Literal, Negation, Neq
from .program import Program
from .rules import Rule
from .terms import Term, Variable

_BARE_CONSTANT_RE = re.compile(r"[a-z][A-Za-z0-9_]*$")


def format_term(t: Term) -> str:
    """Render a term; constants are quoted whenever a bare rendering would
    not parse back to the same constant."""
    if isinstance(t, Variable):
        return t.name
    value = t.value
    if isinstance(value, bool):
        # bool is an int subclass; quote so it round-trips as a string repr.
        return "'%s'" % value
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str) and _BARE_CONSTANT_RE.match(value) and value != "not":
        return value
    text = str(value).replace("\\", "\\\\").replace("'", "\\'")
    return "'%s'" % text


def format_atom(a: Atom) -> str:
    """Render an atom, e.g. ``E(X, Y)``."""
    return "%s(%s)" % (a.pred, ", ".join(format_term(t) for t in a.args))


def format_literal(lit: Literal) -> str:
    """Render any body literal."""
    if isinstance(lit, Atom):
        return format_atom(lit)
    if isinstance(lit, Negation):
        return "!%s" % format_atom(lit.atom)
    if isinstance(lit, Eq):
        return "%s = %s" % (format_term(lit.left), format_term(lit.right))
    if isinstance(lit, Neq):
        return "%s != %s" % (format_term(lit.left), format_term(lit.right))
    raise TypeError("not a literal: %r" % (lit,))


def format_rule(r: Rule) -> str:
    """Render a rule, e.g. ``T(X) :- E(Y, X), !T(Y).``"""
    if not r.body:
        return "%s." % format_atom(r.head)
    return "%s :- %s." % (
        format_atom(r.head),
        ", ".join(format_literal(t) for t in r.body),
    )


def format_program(p: Program) -> str:
    """Render a whole program, one rule per line."""
    return "\n".join(format_rule(r) for r in p.rules)
