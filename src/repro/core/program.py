"""DATALOG¬ programs: finite sets of rules with an EDB/IDB split.

Per Section 2 of the paper: *"The database relations of pi are those
relational symbols that do not appear at the head of any rule; those that
appear are called nondatabase relations."*  We keep the paper's terminology
(database/nondatabase) alongside the usual EDB/IDB names.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from .literals import Atom, Negation
from .rules import Rule


class ProgramError(ValueError):
    """Raised for ill-formed programs (e.g. inconsistent arities)."""


class Program:
    """An immutable DATALOG¬ program.

    Parameters
    ----------
    rules:
        The rules, evaluated as a set (order is preserved for display only).
    carrier:
        Optional goal predicate for inflationary semantics (Section 4); must
        be an IDB predicate when given.  Defaults to the single IDB
        predicate when there is exactly one.
    """

    __slots__ = ("rules", "_carrier", "_arities", "_idb", "_edb")

    def __init__(self, rules: Iterable[Rule], carrier: Optional[str] = None) -> None:
        rule_list = tuple(rules)
        if not rule_list:
            raise ProgramError("a program must contain at least one rule")
        self.rules = rule_list
        self._arities = self._collect_arities(rule_list)
        self._idb = frozenset(r.head.pred for r in rule_list)
        used = set()
        for r in rule_list:
            used.update(r.body_predicates())
        self._edb = frozenset(used - self._idb)
        if carrier is not None and carrier not in self._idb:
            raise ProgramError(
                "carrier %r is not a nondatabase (IDB) predicate" % carrier
            )
        self._carrier = carrier

    @staticmethod
    def _collect_arities(rules: Tuple[Rule, ...]) -> Dict[str, int]:
        arities: Dict[str, int] = {}
        for r in rules:
            atoms: List[Atom] = [r.head]
            for t in r.body:
                if isinstance(t, Atom):
                    atoms.append(t)
                elif isinstance(t, Negation):
                    atoms.append(t.atom)
            for a in atoms:
                seen = arities.get(a.pred)
                if seen is None:
                    arities[a.pred] = a.arity
                elif seen != a.arity:
                    raise ProgramError(
                        "predicate %s used with arities %d and %d"
                        % (a.pred, seen, a.arity)
                    )
        return arities

    # ------------------------------------------------------------------
    # Vocabulary
    # ------------------------------------------------------------------

    @property
    def idb_predicates(self) -> FrozenSet[str]:
        """Nondatabase (intensional) predicates: those heading some rule."""
        return self._idb

    @property
    def edb_predicates(self) -> FrozenSet[str]:
        """Database (extensional) predicates: used but never defined."""
        return self._edb

    @property
    def predicates(self) -> FrozenSet[str]:
        """All predicate symbols of the program."""
        return self._idb | self._edb

    def arity(self, pred: str) -> int:
        """Arity of a predicate of the program."""
        try:
            return self._arities[pred]
        except KeyError:
            raise KeyError("predicate %r does not occur in the program" % pred)

    @property
    def arities(self) -> Dict[str, int]:
        """Copy of the predicate-arity map."""
        return dict(self._arities)

    @property
    def carrier(self) -> str:
        """The goal predicate for inflationary semantics.

        Defaults to the unique IDB predicate; programs with several IDB
        predicates must name one explicitly.
        """
        if self._carrier is not None:
            return self._carrier
        if len(self._idb) == 1:
            return next(iter(self._idb))
        raise ProgramError(
            "program has %d IDB predicates; construct it with carrier=..."
            % len(self._idb)
        )

    def with_carrier(self, carrier: str) -> "Program":
        """Return the same program with a (new) carrier predicate."""
        return Program(self.rules, carrier=carrier)

    # ------------------------------------------------------------------
    # Classification helpers (see also repro.analysis.classify)
    # ------------------------------------------------------------------

    def is_positive(self) -> bool:
        """True for DATALOG programs: no negation, no inequality."""
        return all(r.is_positive() for r in self.rules)

    def is_safe(self) -> bool:
        """True when every rule is range-restricted."""
        return all(r.is_safe() for r in self.rules)

    def rules_for(self, pred: str) -> Tuple[Rule, ...]:
        """The rules whose head predicate is ``pred``."""
        return tuple(r for r in self.rules if r.head.pred == pred)

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------

    def union(self, other: "Program", carrier: Optional[str] = None) -> "Program":
        """The program with both rule sets (used to compose reductions)."""
        return Program(self.rules + other.rules, carrier=carrier)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Program):
            return NotImplemented
        return frozenset(self.rules) == frozenset(other.rules) and (
            self._carrier == other._carrier
        )

    def __hash__(self) -> int:
        return hash((frozenset(self.rules), self._carrier))

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self.rules)

    def __repr__(self) -> str:
        return "Program(%d rules, IDB=%s, EDB=%s)" % (
            len(self.rules),
            "{%s}" % ",".join(sorted(self._idb)),
            "{%s}" % ",".join(sorted(self._edb)),
        )
