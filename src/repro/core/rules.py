"""Rules ``head :- body`` of DATALOG¬ programs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Tuple

from .literals import Atom, Comparison, Literal, Negation, Neq, Span
from .terms import Variable


@dataclass(frozen=True)
class Rule:
    """A rule ``head :- t_1, ..., t_r``.

    ``body`` may be empty (a *fact schema*: under active-domain semantics a
    bodyless rule with variables in the head derives every tuple over the
    universe for those positions, which is exactly what the paper's input
    gate rules in Theorem 4 rely on).

    ``span`` is the source position of the rule's first token when the
    rule came from :mod:`repro.core.parser` (``None`` for rules built in
    code); like :attr:`Atom.span <repro.core.literals.Atom.span>` it is
    provenance only and never part of equality or hashing.
    """

    head: Atom
    body: Tuple[Literal, ...]
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def __init__(
        self,
        head: Atom,
        body: Iterable[Literal] = (),
        span: Optional[Span] = None,
    ) -> None:
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "span", span if span is not None else head.span)

    # ------------------------------------------------------------------
    # Views of the body
    # ------------------------------------------------------------------

    def positive_atoms(self) -> List[Atom]:
        """The positive atomic literals of the body, in order."""
        return [t for t in self.body if isinstance(t, Atom)]

    def negated_atoms(self) -> List[Negation]:
        """The negated literals of the body, in order."""
        return [t for t in self.body if isinstance(t, Negation)]

    def comparisons(self) -> List[Literal]:
        """The equality/inequality literals of the body, in order."""
        return [t for t in self.body if isinstance(t, Comparison)]

    def body_predicates(self) -> FrozenSet[str]:
        """Predicate symbols used (positively or negatively) in the body."""
        preds = set()
        for t in self.body:
            if isinstance(t, Atom):
                preds.add(t.pred)
            elif isinstance(t, Negation):
                preds.add(t.atom.pred)
        return frozenset(preds)

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------

    def head_variables(self) -> FrozenSet[Variable]:
        """Variables occurring in the head."""
        return self.head.variables()

    def body_variables(self) -> FrozenSet[Variable]:
        """Variables occurring anywhere in the body."""
        out: set = set()
        for t in self.body:
            out |= t.variables()
        return frozenset(out)

    def variables(self) -> FrozenSet[Variable]:
        """All variables of the rule."""
        return self.head_variables() | self.body_variables()

    def existential_variables(self) -> FrozenSet[Variable]:
        """Variables in the body but not the head.

        The paper treats these as existentially quantified with the
        quantifiers in front of the body.
        """
        return self.body_variables() - self.head_variables()

    def positive_variables(self) -> FrozenSet[Variable]:
        """Variables bound by some positive body atom."""
        out: set = set()
        for a in self.positive_atoms():
            out |= a.variables()
        return frozenset(out)

    def is_safe(self) -> bool:
        """Range restriction: every variable occurs in a positive atom.

        The paper's semantics does *not* require safety (variables range
        over the universe); this predicate exists for analysis and for the
        classical-Datalog engines that do assume it.
        """
        return self.variables() <= self.positive_variables()

    def is_positive(self) -> bool:
        """True when the body has no negated literal and no inequality.

        This is the paper's definition of a DATALOG (as opposed to
        DATALOG¬) rule: "no literal in the body of a rule is an inequality
        or a negated atomic formula".  Equalities are permitted.
        """
        return not any(isinstance(t, (Negation, Neq)) for t in self.body)

    def __str__(self) -> str:
        if not self.body:
            return "%s." % self.head
        return "%s :- %s." % (self.head, ", ".join(str(t) for t in self.body))


def rule(head: Atom, *body: Literal) -> Rule:
    """Convenience constructor: ``rule(head, lit1, lit2, ...)``."""
    return Rule(head, body)
