"""Fixpoint analysis through SAT — the paper's NP machinery, executable.

Section 3 opens with the NP membership argument: *"One has to guess
relations of size n^s ... and verify (also in time n^s) that the relations
guessed indeed constitute a fixpoint."*  This module compiles that
guess-and-verify step into CNF: after grounding, ``S`` is a fixpoint of
``(pi, D)`` iff for every derivable ground atom ``h``

    h in S   <->   OR over ground rules r for h of
                   ( AND_{p in pos(r)} p in S  AND  AND_{n in neg(r)} n not in S )

and every underivable atom is out of ``S``.  Models of the CNF are exactly
the fixpoints, so the built-in DPLL solver decides:

* **existence**   (Theorem 1's object of study) — one SAT call;
* **uniqueness**  (Theorem 2, the US-complete problem) — two SAT calls;
* **leastness**   (Theorem 3) — via the paper's characterisation: a least
  fixpoint exists iff the intersection of *all* fixpoints is itself a
  fixpoint.  The intersection is computed with polynomially many oracle
  calls (a backbone computation), matching the FO(NP)/Delta_2^p upper
  bound's flavour;
* **counting/enumeration** — blocking-clause AllSAT, cross-checked against
  brute-force enumeration in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set

from ..db.database import Database
from ..sat.cnf import CNF
from ..sat.solver import Solver
from .grounding import GroundAtom, GroundProgram, ground_program
from .operator import IDBMap
from .program import Program


class FixpointSAT:
    """The CNF encoding of ``Theta(S) = S`` for one ``(program, db)`` pair.

    Attributes
    ----------
    cnf:
        The compiled formula; one labelled variable per derivable atom,
        plus anonymous Tseitin auxiliaries for multi-literal rule bodies.
    atom_var:
        Map from derivable ground atoms to their CNF variables.
    """

    def __init__(
        self, program: Program, db: Database, ground: Optional[GroundProgram] = None
    ) -> None:
        self.program = program
        self.db = db
        self.ground = ground if ground is not None else ground_program(program, db)
        self.cnf = CNF()
        self.atom_var: Dict[GroundAtom, int] = {}
        self._build()

    def _build(self) -> None:
        derivable = self.ground.derivable
        for atom in sorted(derivable):
            self.atom_var[atom] = self.cnf.pool.var(atom)
        for atom in sorted(derivable):
            head_var = self.atom_var[atom]
            body_reps: List[int] = []
            forced_true = False
            for rule in self.ground.by_head[atom]:
                lits: List[int] = []
                dead = False
                for p in rule.pos:
                    if p in self.atom_var:
                        lits.append(self.atom_var[p])
                    else:
                        dead = True  # positive literal can never hold
                        break
                if dead:
                    continue
                for n in rule.neg:
                    if n in self.atom_var:
                        lits.append(-self.atom_var[n])
                    # underivable negated atoms are vacuously satisfied
                if not lits:
                    forced_true = True
                    break
                if len(lits) == 1:
                    body_reps.append(lits[0])
                else:
                    body_reps.append(self.cnf.define_and(lits))
            if forced_true:
                self.cnf.add_unit(head_var)
            else:
                self.cnf.add_iff_or(head_var, body_reps)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def decode(self, model: Dict[int, bool]) -> Set[GroundAtom]:
        """Ground atoms set true by a solver model."""
        return {atom for atom, var in self.atom_var.items() if model.get(var)}

    def decode_idb(self, model: Dict[int, bool]) -> IDBMap:
        """A solver model as a ``{pred: Relation}`` valuation."""
        return self.ground.to_idb_map(self.decode(model))

    @property
    def atom_vars(self) -> List[int]:
        """The labelled (non-auxiliary) variables, in atom order."""
        return [self.atom_var[a] for a in sorted(self.atom_var)]


# ----------------------------------------------------------------------
# Decision procedures
# ----------------------------------------------------------------------


def has_fixpoint(
    program: Program, db: Database, ground: Optional[GroundProgram] = None
) -> bool:
    """Does ``(program, db)`` have any fixpoint?  (One NP-oracle call.)"""
    return find_fixpoint(program, db, ground) is not None


def find_fixpoint(
    program: Program, db: Database, ground: Optional[GroundProgram] = None
) -> Optional[IDBMap]:
    """Some fixpoint of ``(program, db)``, or ``None``."""
    enc = FixpointSAT(program, db, ground)
    model = Solver(enc.cnf).solve()
    if model is None:
        return None
    return enc.decode_idb(model)


def enumerate_fixpoints_sat(
    program: Program,
    db: Database,
    limit: Optional[int] = None,
    ground: Optional[GroundProgram] = None,
) -> Iterator[IDBMap]:
    """Yield every fixpoint via blocking-clause enumeration.

    The blocking clauses range over atom variables only; Tseitin
    auxiliaries are functionally determined, so each fixpoint appears
    exactly once.  When ``limit`` is given, stops after that many.
    """
    enc = FixpointSAT(program, db, ground)
    solver = Solver(enc.cnf)
    variables = enc.atom_vars
    produced = 0
    while limit is None or produced < limit:
        model = solver.solve()
        if model is None:
            return
        yield enc.decode_idb(model)
        produced += 1
        if not variables:
            return
        solver.add_clause(tuple(-v if model[v] else v for v in variables))


def count_fixpoints_sat(
    program: Program,
    db: Database,
    limit: Optional[int] = None,
    ground: Optional[GroundProgram] = None,
) -> int:
    """The number of fixpoints (up to ``limit`` when given)."""
    return sum(1 for _ in enumerate_fixpoints_sat(program, db, limit, ground))


def unique_fixpoint(
    program: Program, db: Database, ground: Optional[GroundProgram] = None
) -> Optional[IDBMap]:
    """The unique fixpoint if exactly one exists, else ``None``.

    This is the paper's pi-UNIQUE-FIXPOINT decision (Theorem 2), realised
    with two oracle calls: find one model, block it, ask again.
    """
    enc = FixpointSAT(program, db, ground)
    solver = Solver(enc.cnf)
    first = solver.solve()
    if first is None:
        return None
    variables = enc.atom_vars
    if variables:
        solver.add_clause(tuple(-v if first[v] else v for v in variables))
        if solver.solve() is not None:
            return None
    return enc.decode_idb(first)


def has_unique_fixpoint(
    program: Program, db: Database, ground: Optional[GroundProgram] = None
) -> bool:
    """Does ``(program, db)`` have exactly one fixpoint?"""
    return unique_fixpoint(program, db, ground) is not None


@dataclass
class LeastFixpointReport:
    """Outcome of the Theorem 3 least-fixpoint procedure.

    Attributes
    ----------
    exists:
        Whether any fixpoint exists at all.
    intersection:
        Coordinatewise intersection of all fixpoints (``None`` when no
        fixpoint exists).
    least:
        The least fixpoint — equal to ``intersection`` when that set is
        itself a fixpoint, else ``None``.
    oracle_calls:
        Number of SAT queries spent (1 + one per derivable atom, in the
        worst case) — the "polynomially many NP oracle calls" of the
        Delta_2^p upper bound.
    """

    exists: bool
    intersection: Optional[IDBMap]
    least: Optional[IDBMap]
    oracle_calls: int

    @property
    def least_exists(self) -> bool:
        """Whether a least fixpoint exists."""
        return self.least is not None


def least_fixpoint(
    program: Program, db: Database, ground: Optional[GroundProgram] = None
) -> LeastFixpointReport:
    """Decide least-fixpoint existence via intersection-of-all-fixpoints.

    Implements the observation in the proof of Theorem 3: *"given a
    database D, the program (pi, D) has a least fixpoint if and only if the
    (coordinatewise) intersection of all fixpoints is a fixpoint."*  Atom
    membership in the intersection is a backbone query: ``a`` is in every
    fixpoint iff ``CNF and not a`` is unsatisfiable.
    """
    gp = ground if ground is not None else ground_program(program, db)
    enc = FixpointSAT(program, db, gp)
    solver = Solver(enc.cnf)
    calls = 1
    base = solver.solve()
    if base is None:
        return LeastFixpointReport(
            exists=False, intersection=None, least=None, oracle_calls=calls
        )
    intersection_atoms: Set[GroundAtom] = set()
    for atom, var in sorted(enc.atom_var.items()):
        if not base[var]:
            continue  # some fixpoint already excludes it
        calls += 1
        without = solver.solve(assumptions=(-var,))
        if without is None:
            intersection_atoms.add(atom)
    intersection = gp.to_idb_map(intersection_atoms)
    least = intersection if gp.is_fixpoint(intersection_atoms) else None
    return LeastFixpointReport(
        exists=True,
        intersection=intersection,
        least=least,
        oracle_calls=calls,
    )


@dataclass
class FixpointAnalysis:
    """One-stop summary of the fixpoint structure of ``(program, db)``."""

    exists: bool
    unique: bool
    count: Optional[int]
    least_exists: bool
    least: Optional[IDBMap]
    sample: Optional[IDBMap]

    def __repr__(self) -> str:
        return (
            "FixpointAnalysis(exists=%s, unique=%s, count=%s, least_exists=%s)"
            % (self.exists, self.unique, self.count, self.least_exists)
        )


def analyze_fixpoints(
    program: Program,
    db: Database,
    count_limit: Optional[int] = 10_000,
    ground: Optional[GroundProgram] = None,
) -> FixpointAnalysis:
    """Run the full battery: existence, uniqueness, count, least fixpoint.

    ``count`` is ``None`` when more than ``count_limit`` fixpoints exist.
    """
    gp = ground if ground is not None else ground_program(program, db)
    sample = find_fixpoint(program, db, gp)
    if sample is None:
        return FixpointAnalysis(
            exists=False,
            unique=False,
            count=0,
            least_exists=False,
            least=None,
            sample=None,
        )
    count: Optional[int] = 0
    for _ in enumerate_fixpoints_sat(program, db, None, gp):
        count += 1
        if count_limit is not None and count > count_limit:
            count = None
            break
    report = least_fixpoint(program, db, gp)
    return FixpointAnalysis(
        exists=True,
        unique=(count == 1),
        count=count,
        least_exists=report.least_exists,
        least=report.least,
        sample=sample,
    )
