"""Semantics engines for DATALOG¬ programs.

* :func:`naive_least_fixpoint` / :func:`seminaive_least_fixpoint` — the
  standard least-fixpoint semantics of (semi)positive DATALOG.
* :func:`inflationary_semantics` — the paper's proposal (Section 4),
  total and polynomial-time.
* :func:`stratified_semantics` — layered negation (partial: stratifiable
  programs only).
* :func:`well_founded_semantics` — three-valued alternating fixpoint
  (extension, for comparison).
* :func:`all_fixpoints` / :func:`count_fixpoints` — brute-force ordinary
  fixpoint enumeration (cross-check for the SAT-backed analysis).
"""

from .base import EvaluationResult, SemanticsError, is_semipositive
from .enumeration import (
    EnumerationLimitError,
    all_fixpoints,
    count_fixpoints,
    iterate_fixpoints,
)
from .incremental import incremental_inflationary_semantics
from .inflationary import inflationary_semantics, inflationary_step, theta_stage
from .naive import naive_least_fixpoint
from .seminaive import seminaive_least_fixpoint
from .stratified import (
    NotStratifiableError,
    StratifiedResult,
    is_stratifiable,
    stratified_semantics,
    stratify,
)
from .wellfounded import WellFoundedResult, well_founded_semantics

__all__ = [
    "EnumerationLimitError",
    "EvaluationResult",
    "NotStratifiableError",
    "SemanticsError",
    "StratifiedResult",
    "WellFoundedResult",
    "all_fixpoints",
    "count_fixpoints",
    "incremental_inflationary_semantics",
    "inflationary_semantics",
    "inflationary_step",
    "is_semipositive",
    "is_stratifiable",
    "iterate_fixpoints",
    "naive_least_fixpoint",
    "seminaive_least_fixpoint",
    "stratified_semantics",
    "stratify",
    "theta_stage",
    "well_founded_semantics",
]
