"""Shared result type and checks for the semantics engines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ...db.database import Database
from ...db.relation import Relation
from ..literals import Negation
from ..operator import IDBMap
from ..program import Program


@dataclass
class EvaluationResult:
    """Outcome of running a semantics engine.

    Attributes
    ----------
    program, db:
        The inputs.
    idb:
        Final IDB valuation.
    rounds:
        Number of operator applications until stabilisation.
    trace:
        Optional per-round valuations (round 0 is the all-empty start).
    engine:
        Name of the engine that produced the result.
    """

    program: Program
    db: Database
    idb: IDBMap
    rounds: int
    engine: str
    trace: Optional[List[IDBMap]] = None

    @property
    def carrier_value(self) -> Relation:
        """The relation computed for the program's carrier predicate."""
        return self.idb[self.program.carrier]

    def relation(self, pred: str) -> Relation:
        """The final value of any IDB predicate."""
        return self.idb[pred]

    def __repr__(self) -> str:
        sizes = ", ".join(
            "%s:%d" % (p, len(self.idb[p])) for p in sorted(self.idb)
        )
        return "EvaluationResult(%s, rounds=%d, %s)" % (self.engine, self.rounds, sizes)


def is_semipositive(program: Program) -> bool:
    """True when negation is applied to EDB predicates only.

    Semipositive programs still induce a monotone operator in the IDB
    arguments, so the least-fixpoint machinery applies to them unchanged.
    """
    idb = program.idb_predicates
    for rule in program.rules:
        for lit in rule.body:
            if isinstance(lit, Negation) and lit.atom.pred in idb:
                return False
    return True


class SemanticsError(ValueError):
    """Raised when a program is outside an engine's supported class."""
