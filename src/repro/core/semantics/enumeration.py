"""Brute-force enumeration of *all* fixpoints of ``(pi, D)``.

Any fixpoint satisfies ``S = Theta(S) subseteq derivable`` where
``derivable`` is the set of ground IDB atoms heading at least one ground
rule instance — Theta can never produce anything else.  Enumerating the
``2^|derivable|`` subsets is therefore complete.  This is intentionally the
dumb-but-trustworthy engine: the SAT-backed analysis in
:mod:`repro.core.satreduction` is cross-checked against it on small inputs.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, List, Optional, Set

from ...db.database import Database
from ..grounding import GroundAtom, GroundProgram, ground_program
from ..operator import IDBMap
from ..program import Program


class EnumerationLimitError(RuntimeError):
    """The candidate space is too large for exhaustive enumeration."""


def iterate_fixpoints(
    program: Program,
    db: Database,
    limit_atoms: int = 20,
    ground: Optional[GroundProgram] = None,
) -> Iterator[Set[GroundAtom]]:
    """Yield every fixpoint of ``(program, db)`` as a ground-atom set.

    Parameters
    ----------
    limit_atoms:
        Refuse to enumerate more than ``2**limit_atoms`` candidates.
    ground:
        Optional pre-computed grounding.

    Raises
    ------
    EnumerationLimitError
        When ``|derivable| > limit_atoms``.
    """
    gp = ground if ground is not None else ground_program(program, db)
    derivable = sorted(gp.derivable)
    if len(derivable) > limit_atoms:
        raise EnumerationLimitError(
            "%d derivable atoms exceed the exhaustive limit of %d; "
            "use repro.core.satreduction for larger instances"
            % (len(derivable), limit_atoms)
        )
    for size in range(len(derivable) + 1):
        for chosen in combinations(derivable, size):
            candidate = set(chosen)
            if gp.is_fixpoint(candidate):
                yield candidate


def all_fixpoints(
    program: Program,
    db: Database,
    limit_atoms: int = 20,
    ground: Optional[GroundProgram] = None,
) -> List[IDBMap]:
    """All fixpoints as ``{pred: Relation}`` valuations (smallest first)."""
    gp = ground if ground is not None else ground_program(program, db)
    return [
        gp.to_idb_map(atoms)
        for atoms in iterate_fixpoints(program, db, limit_atoms, gp)
    ]


def count_fixpoints(
    program: Program,
    db: Database,
    limit_atoms: int = 20,
    ground: Optional[GroundProgram] = None,
) -> int:
    """The number of fixpoints of ``(program, db)``."""
    return sum(1 for _ in iterate_fixpoints(program, db, limit_atoms, ground))
