"""Delta-driven (semi-naive) inflationary evaluation.

An ablation on the paper's bottom-up iteration.  The inflationary stage
``S_{k+1} = S_k u Theta(S_k)`` only ever *adds* tuples, which makes a
differential evaluation sound even in the presence of negation:

* negated IDB literals ``!T(a)`` can only flip from true to false as the
  stages grow, so an instantiation whose body holds at stage ``k`` but not
  at stage ``k-1`` must contain a positive IDB literal matched by a
  stage-``k`` delta tuple;
* consequently, rules without positive IDB literals can contribute new
  tuples only in round 1 (their round-1 derivation set is the largest they
  will ever produce, and the union already keeps it).

So after round 1 we evaluate only *delta variants* — one per positive IDB
occurrence, reading the previous round's new tuples there — exactly like
classical semi-naive evaluation, except deltas are never "subtracted" from
negations.  The engine is property-tested equal to
:func:`repro.core.semantics.inflationary.inflationary_semantics` and
benchmarked against it in ``benchmarks/bench_ablation_incremental.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ...db.database import Database
from ...db.relation import Relation
from ...parallel.shard import SHARD
from ..literals import Atom
from ..operator import empty_idb, theta
from ..planning import PLAN_STORE, execute_plan
from ..program import Program
from ..rules import Rule
from .base import EvaluationResult

_DELTA_SUFFIX = "__inflationary_delta"


def _delta_name(pred: str) -> str:
    return pred + _DELTA_SUFFIX


def _delta_variants(rule: Rule, idb: frozenset) -> List[Rule]:
    """One rule variant per positive IDB occurrence, reading the delta."""
    variants: List[Rule] = []
    for position, lit in enumerate(rule.body):
        if isinstance(lit, Atom) and lit.pred in idb:
            body = list(rule.body)
            body[position] = Atom(_delta_name(lit.pred), lit.args)
            variants.append(Rule(rule.head, body))
    return variants


def incremental_inflationary_semantics(
    program: Program,
    db: Database,
    max_rounds: Optional[int] = None,
) -> EvaluationResult:
    """Compute ``Theta^infinity`` with delta-driven rounds.

    Semantically identical to
    :func:`~repro.core.semantics.inflationary.inflationary_semantics`;
    asymptotically cheaper on recursive rules because each round touches
    only instantiations involving freshly added tuples.
    """
    idb_preds = program.idb_predicates

    variants: List[Rule] = []
    for rule in program.rules:
        variants.extend(_delta_variants(rule, idb_preds))

    # Plans come from the shared store: the full program for round 1, the
    # delta variants (joined through the small deltas first) for the
    # rest — wrapped adaptively so a variant's non-delta IDB atoms are
    # re-planned once their observed sizes diverge from the estimates.
    delta_preds = frozenset(_delta_name(p) for p in idb_preds)
    program_plan = PLAN_STORE.program_plan(program, db)
    adaptive_variants = PLAN_STORE.adaptive_rule_plans(
        variants, db=db, small_preds=delta_preds
    )

    n = len(db.universe)
    bound = sum(n ** program.arity(p) for p in idb_preds) + 1
    limit = bound if max_rounds is None else max_rounds

    # Round 1 is a full Theta application (it alone can use rules with no
    # positive IDB literal, and it seeds the deltas).
    if SHARD.active:
        current = SHARD.theta_sharded(program, db, empty_idb(program))
    else:
        current = theta(program, db, empty_idb(program), plan=program_plan)
    delta = dict(current)
    rounds = 0 if not any(delta[p] for p in idb_preds) else 1

    while any(delta[p] for p in idb_preds):
        # Sharded runs bind each worker's slice of the delta and union the
        # derivations at the barrier (see seminaive for the same seam).
        interp = db.with_relations(
            list(current.values())
            + [
                SHARD.frontier(p, delta[p]).with_name(_delta_name(p))
                for p in idb_preds
            ]
        )
        derived: Dict[str, Set[Tuple]] = {p: set() for p in idb_preds}
        for plan in adaptive_variants.refresh(interp):
            derived[plan.head_pred] |= execute_plan(
                plan, interp, stats=PLAN_STORE.statistics
            )
        derived = SHARD.merge_tuple_map(
            derived, {p: program.arity(p) for p in idb_preds}
        )
        delta = {
            p: Relation(p, program.arity(p), derived[p] - current[p].tuples)
            for p in idb_preds
        }
        if any(delta[p] for p in idb_preds):
            rounds += 1
            current = {p: current[p].union(delta[p]) for p in idb_preds}
        if rounds > limit:
            raise AssertionError(
                "incremental inflationary iteration exceeded its bound %d" % limit
            )
    return EvaluationResult(
        program=program,
        db=db,
        idb=current,
        rounds=rounds,
        engine="incremental-inflationary",
        trace=None,
    )
