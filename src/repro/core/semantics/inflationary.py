"""Inflationary DATALOG — the semantics the paper proposes (Section 4).

For a program pi with operator Theta, define

    Theta^1 = Theta(empty),   Theta^{n+1} = Theta^n  union  Theta(Theta^n)

and let ``Theta^infinity`` be the union of the chain.  Because the sequence
is increasing, it stabilises after at most ``sum_i |A|^{arity(S_i)}`` rounds,
so the inflationary semantics is computable in polynomial time in the size
of the database — the paper's central argument for it.

Key facts reproduced in the test-suite and experiments:

* For negation-free DATALOG programs, ``Theta^{n+1} = Theta(Theta^n)``
  (Theta is monotone), so the inflationary semantics *is* the least
  fixpoint — inflationary DATALOG conservatively extends the standard
  semantics.
* ``T(x) :- !T(y)`` yields ``Theta^infinity = A`` (after one round).
* ``pi_1 : T(x) :- E(y, x), !T(y)`` yields ``{x : exists y E(y, x)}``.
* ``Theta^infinity`` need not be a fixpoint of Theta at all — the paper's
  Section 4 warning — e.g. the toggle program's value ``A`` has
  ``Theta(A) = empty``.
"""

from __future__ import annotations

from typing import List, Optional

from ...db.database import Database
from ...obs import RECORDER, TRACER
from ...parallel.shard import SHARD
from ..fixpoint import idb_equal, idb_union
from ..operator import IDBMap, empty_idb, theta
from ..planning import PLAN_STORE, ProgramPlan
from ..program import Program
from .base import EvaluationResult


def inflationary_step(
    program: Program,
    db: Database,
    current: IDBMap,
    plan: Optional[ProgramPlan] = None,
) -> IDBMap:
    """One application of the inflationary operator ``S |-> S u Theta(S)``.

    Under an active shard context each worker applies Theta for its
    slice of the rules and the consequences are unioned at the barrier,
    so every replica unions the same stage into ``current``.
    """
    if SHARD.active:
        return idb_union([current, SHARD.theta_sharded(program, db, current)])
    return idb_union([current, theta(program, db, current, plan=plan)])


def inflationary_semantics(
    program: Program,
    db: Database,
    keep_trace: bool = False,
    max_rounds: Optional[int] = None,
    parallel: int = 0,
) -> EvaluationResult:
    """Compute ``Theta^infinity``, the inductive fixpoint of S u Theta(S).

    Works for *every* DATALOG¬ program — that totality is the point of the
    semantics.  ``result.rounds`` is the paper's ``n_0``: the first ``n``
    with ``Theta^n = Theta^{n+1}``; it is at most ``sum_i |A|^{arity_i}``.
    ``parallel=N`` runs the rounds inside a pool of sharded workers.
    """
    if parallel and not SHARD.active:
        from ...parallel.executor import parallel_evaluate

        return parallel_evaluate("inflationary", program, db, nshards=parallel)
    n = len(db.universe)
    bound = sum(n ** program.arity(p) for p in program.idb_predicates) + 1
    limit = bound if max_rounds is None else max_rounds

    # Adaptive plans over the shared store: re-planned mid-fixpoint when
    # the observed IDB sizes diverge from the planning-time estimates.
    plan = PLAN_STORE.adaptive_program_plan(program, db)
    current = empty_idb(program)
    trace: Optional[List[IDBMap]] = [dict(current)] if keep_trace else None
    rounds = 0
    while rounds < limit:
        with TRACER.span("inflationary.round") as sp:
            nxt = inflationary_step(program, db, current, plan=plan)
            if sp:
                sp["round"] = rounds + 1
                sp["rows_out"] = sum(len(r) for r in nxt.values())
                sp["replans"] = plan.replans
        if idb_equal(nxt, current):
            break
        rounds += 1
        current = nxt
        if keep_trace:
            trace.append(dict(current))
    else:
        raise AssertionError(
            "inflationary iteration exceeded its theoretical bound %d" % limit
        )
    if RECORDER.enabled:
        RECORDER.inc("repro_engine_rounds_total", rounds)
    return EvaluationResult(
        program=program,
        db=db,
        idb=current,
        rounds=rounds,
        engine="inflationary",
        trace=trace,
    )


def theta_stage(program: Program, db: Database, n: int) -> IDBMap:
    """The paper's stage ``Theta^n`` (``n >= 0``; stage 0 is empty)."""
    if n < 0:
        raise ValueError("stage must be non-negative")
    plan = PLAN_STORE.program_plan(program, db)
    current = empty_idb(program)
    for _ in range(n):
        current = inflationary_step(program, db, current, plan=plan)
    return current
