"""Naive least-fixpoint evaluation for (semi)positive programs.

For a DATALOG program (no negated IDB literals), Theta is monotone in the
IDB arguments, so by the Knaster–Tarski theorem [Ta55] the iteration
``empty, Theta(empty), Theta^2(empty), ...`` converges to the least fixpoint
of ``(pi, D)`` — the paper's standard semantics for DATALOG.

Monotonicity requires only that no *IDB* predicate appears negated;
negation/inequality over EDB relations and constants is harmless
(semipositive programs), so this engine accepts those too.
"""

from __future__ import annotations

from typing import Optional

from ...db.database import Database
from ..fixpoint import idb_equal
from ..operator import empty_idb, theta
from ..planning import PLAN_STORE
from ..program import Program
from .base import EvaluationResult, SemanticsError, is_semipositive


def naive_least_fixpoint(
    program: Program,
    db: Database,
    keep_trace: bool = False,
    max_rounds: Optional[int] = None,
) -> EvaluationResult:
    """Iterate Theta from the empty valuation to the least fixpoint.

    Parameters
    ----------
    program:
        A positive or semipositive program (checked).
    db:
        The database; IDB relations in it are ignored (iteration starts
        empty, as the paper specifies).
    keep_trace:
        Record the valuation after every round.
    max_rounds:
        Safety cap; defaults to the atom-space bound
        ``sum_i |A|^{arity(S_i)} + 1`` which the iteration can never exceed.

    Raises
    ------
    SemanticsError
        If some IDB predicate occurs negated (Theta would not be monotone
        and the least fixpoint may not exist).
    """
    if not is_semipositive(program):
        raise SemanticsError(
            "naive least fixpoint requires a (semi)positive program; "
            "negated IDB literals make Theta non-monotone"
        )
    n = len(db.universe)
    bound = sum(n ** program.arity(p) for p in program.idb_predicates) + 1
    limit = bound if max_rounds is None else max_rounds

    # Adaptive plans over the shared store: compiled at most once per
    # (rule, db, cardinality-bucket) and re-planned mid-fixpoint when the
    # observed IDB sizes diverge from the planning-time estimates.
    plan = PLAN_STORE.adaptive_program_plan(program, db)
    current = empty_idb(program)
    trace = [dict(current)] if keep_trace else None
    rounds = 0
    while rounds < limit:
        nxt = theta(program, db, current, plan=plan)
        rounds += 1
        if keep_trace:
            trace.append(dict(nxt))
        if idb_equal(nxt, current):
            rounds -= 1  # the last application changed nothing
            if keep_trace:
                trace.pop()
            break
        current = nxt
    else:
        raise SemanticsError(
            "no convergence after %d rounds; max_rounds too small?" % limit
        )
    return EvaluationResult(
        program=program,
        db=db,
        idb=current,
        rounds=rounds,
        engine="naive",
        trace=trace,
    )
