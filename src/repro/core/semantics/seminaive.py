"""Semi-naive least-fixpoint evaluation for (semi)positive programs.

Classical differential evaluation: a rule instance can only derive a *new*
tuple if at least one of its IDB body atoms is matched against a tuple
discovered in the previous round.  For each rule and each IDB body-atom
occurrence we build a *delta variant* in which that occurrence reads the
delta relation; per round we evaluate all variants, subtract what is already
known, and stop when the delta is empty.

The result is identical to :func:`repro.core.semantics.naive.naive_least_fixpoint`
(property-tested); only the work per round differs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...db.database import Database
from ...db.relation import Relation
from ...obs import RECORDER, TRACER
from ...parallel.shard import SHARD
from ..literals import Atom
from ..operator import empty_idb
from ..planning import PLAN_STORE, execute_plan
from ..program import Program
from ..rules import Rule
from .base import EvaluationResult, SemanticsError, is_semipositive

_DELTA_SUFFIX = "__delta"


def _delta_name(pred: str) -> str:
    return pred + _DELTA_SUFFIX


def _delta_variants(rule: Rule, idb: frozenset) -> List[Rule]:
    """One variant per IDB body-atom occurrence, reading the delta there."""
    variants = []
    occurrences = [
        i
        for i, lit in enumerate(rule.body)
        if isinstance(lit, Atom) and lit.pred in idb
    ]
    for occ in occurrences:
        body = list(rule.body)
        old = body[occ]
        body[occ] = Atom(_delta_name(old.pred), old.args)
        variants.append(Rule(rule.head, body))
    return variants


def seminaive_least_fixpoint(
    program: Program,
    db: Database,
    keep_trace: bool = False,
    max_rounds: Optional[int] = None,
    known_sizes: Optional[Dict[str, int]] = None,
    parallel: int = 0,
) -> EvaluationResult:
    """Compute the least fixpoint by differential (semi-naive) iteration.

    Accepts the same class of programs as the naive engine: positive and
    semipositive (negation over EDB only).

    ``known_sizes`` passes cardinalities the caller holds as facts —
    the stratified engine supplies the final sizes of already-evaluated
    lower strata.  The planner treats them as exact whether or not the
    working database carries the relations (db-absent facts are baked
    into the compile, db-present ones are already sized there), and the
    adaptive wrapper never burns a divergence re-plan on re-discovering
    a frozen relation's size.

    Raises
    ------
    SemanticsError
        If some IDB predicate occurs negated.
    """
    if parallel and not SHARD.active:
        from ...parallel.executor import parallel_evaluate

        return parallel_evaluate("seminaive", program, db, nshards=parallel)
    if not is_semipositive(program):
        raise SemanticsError(
            "semi-naive evaluation requires a (semi)positive program"
        )
    idb_preds = program.idb_predicates

    base_rules = [r for r in program.rules if not _delta_variants(r, idb_preds)]
    recursive_variants: List[Rule] = []
    for r in program.rules:
        recursive_variants.extend(_delta_variants(r, idb_preds))

    # Plans come from the shared store — the delta variants included —
    # rather than compiling per run; the planner joins through the
    # (small) deltas first.  The variants are wrapped adaptively: a
    # variant's non-delta IDB atoms start as "unknown, assume large"
    # guesses, so the wrapper re-plans them once the observed sizes
    # diverge (bucketed store keys keep the variants shared).
    delta_preds = frozenset(_delta_name(p) for p in idb_preds)
    base_plans = PLAN_STORE.rule_plans(base_rules, db=db)
    adaptive_variants = PLAN_STORE.adaptive_rule_plans(
        recursive_variants,
        db=db,
        small_preds=delta_preds,
        known_sizes=known_sizes,
    )

    n = len(db.universe)
    bound = sum(n ** program.arity(p) for p in idb_preds) + 1
    limit = bound if max_rounds is None else max_rounds

    current = empty_idb(program)
    trace = [dict(current)] if keep_trace else None

    # Round 1: rules without IDB body atoms seed the iteration.
    arities = {p: program.arity(p) for p in idb_preds}
    with TRACER.span("seminaive.seed") as sp:
        interp = db.with_relations(current.values())
        derived: Dict[str, set] = {p: set() for p in idb_preds}
        # Under a shard context each worker evaluates its round-robin
        # slice of the base plans (deterministic order) and the seeds are
        # unioned at the first barrier.
        for plan in SHARD.plan_slice(base_plans):
            derived[plan.head_pred] |= execute_plan(
                plan, interp, stats=PLAN_STORE.statistics
            )
        derived = SHARD.merge_tuple_map(derived, arities)
        delta = {
            p: Relation(p, program.arity(p), derived[p] - current[p].tuples)
            for p in idb_preds
        }
        if sp:
            sp["rows_out"] = sum(len(delta[p]) for p in idb_preds)
    rounds = 0
    while any(delta[p] for p in idb_preds):
        rounds += 1
        with TRACER.span("seminaive.round") as sp:
            current = {p: current[p].union(delta[p]) for p in idb_preds}
            if keep_trace:
                trace.append(dict(current))
            # Sharded runs read only this worker's slice of the frontier
            # (partitioned by the shard plan's key columns); the per-round
            # derivations are re-unioned at the barrier below, so the
            # convergence test sees the same delta on every replica.
            interp = db.with_relations(
                list(current.values())
                + [
                    SHARD.frontier(p, delta[p]).with_name(_delta_name(p))
                    for p in idb_preds
                ]
            )
            derived = {p: set() for p in idb_preds}
            for plan in adaptive_variants.refresh(interp):
                derived[plan.head_pred] |= execute_plan(
                    plan, interp, stats=PLAN_STORE.statistics
                )
            derived = SHARD.merge_tuple_map(derived, arities)
            delta = {
                p: Relation(p, program.arity(p), derived[p] - current[p].tuples)
                for p in idb_preds
            }
            if sp:
                sp["round"] = rounds
                sp["rows_out"] = sum(len(delta[p]) for p in idb_preds)
        if rounds > limit:
            raise SemanticsError(
                "no convergence after %d rounds; max_rounds too small?" % limit
            )
    if RECORDER.enabled:
        RECORDER.inc("repro_engine_rounds_total", rounds)
    return EvaluationResult(
        program=program,
        db=db,
        idb=current,
        rounds=rounds,
        engine="seminaive",
        trace=trace,
    )
