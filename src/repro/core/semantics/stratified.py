"""Stratified semantics (Chandra–Harel [CH85], Apt–Blair–Walker [ABW86]).

Predicates are layered so that negation is only applied to relations defined
in strictly lower layers; each layer is then a semipositive program whose
least fixpoint is computed with the lower layers' results frozen as input
facts.  Not every DATALOG¬ program is stratifiable — the paper's motivating
deficiency — and for stratifiable programs the result can *differ* from the
inflationary semantics of the very same rules (Proposition 2's program
computes the distance query inflationarily, but ``TC and not TC*`` when read
as a stratified program).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ...analysis.dependency import DependencyGraph
from ...db.database import Database
from ...obs import RECORDER, TRACER
from ..operator import IDBMap
from ..program import Program
from .base import EvaluationResult, SemanticsError
from .seminaive import seminaive_least_fixpoint


class NotStratifiableError(SemanticsError):
    """The program has recursion through negation."""


@dataclass
class StratifiedResult(EvaluationResult):
    """An :class:`EvaluationResult` carrying the stratum structure."""

    strata: Tuple[frozenset, ...] = ()

    def stratum_of(self, pred: str) -> int:
        """The 0-based stratum of an IDB predicate."""
        for i, layer in enumerate(self.strata):
            if pred in layer:
                return i
        raise KeyError("predicate %r is in no stratum" % pred)


def stratify(program: Program) -> List[frozenset]:
    """The stratum partition of the program's IDB predicates.

    Raises
    ------
    NotStratifiableError
        When some cycle of the dependency graph carries a negative edge.
    """
    graph = DependencyGraph(program)
    try:
        return graph.stratum_partition()
    except ValueError as exc:
        raise NotStratifiableError(str(exc)) from exc


def is_stratifiable(program: Program) -> bool:
    """True when the program admits a stratification."""
    return DependencyGraph(program).is_stratifiable()


def stratified_semantics(
    program: Program,
    db: Database,
    keep_trace: bool = False,
    parallel: int = 0,
) -> StratifiedResult:
    """Evaluate a stratifiable program stratum by stratum.

    Each stratum's rules form a program that is semipositive *given* the
    lower strata (their relations enter the working database as facts), so
    the semi-naive least-fixpoint engine applies.  Each stratum's rules
    are compiled through the shared
    :data:`~repro.core.planning.PLAN_STORE` under a (rules, working-db)
    key — repeated runs over the same input reuse the plans of every
    stratum — and the lower strata's frozen relations keep their cached
    indexes across all upper-stratum rounds.  Lower strata are *planned
    against*, not discovered: their final sizes travel to each upper
    stratum as explicit ``known_sizes`` facts, making the contract
    independent of the working database carrying the relations — the
    planner sizes them exactly at compile time (from the db when
    present, from the facts otherwise) and the adaptive wrapper exempts
    them from divergence checks, so no re-plan ever fires to learn what
    the engine already evaluated.

    Raises
    ------
    NotStratifiableError
        When the program has recursion through negation.
    """
    from ...parallel.shard import SHARD

    if parallel and not SHARD.active:
        from ...parallel.executor import parallel_evaluate

        return parallel_evaluate("stratified", program, db, nshards=parallel)
    strata = stratify(program)
    working = db
    final: IDBMap = {}
    known_sizes: Dict[str, int] = {}
    total_rounds = 0
    for index, layer in enumerate(strata):
        with TRACER.span("stratum") as sp:
            rules = [r for r in program.rules if r.head.pred in layer]
            sub = Program(rules)
            result = seminaive_least_fixpoint(
                sub,
                working,
                keep_trace=keep_trace,
                known_sizes=known_sizes or None,
            )
            for pred in layer:
                final[pred] = result.idb[pred]
                known_sizes[pred] = len(result.idb[pred])
            working = working.with_relations(result.idb.values())
            total_rounds += result.rounds
            if sp:
                sp["stratum"] = index
                sp["preds"] = ", ".join(sorted(layer))
                sp["rounds"] = result.rounds
                sp["rows_out"] = sum(len(result.idb[p]) for p in layer)
    if RECORDER.enabled:
        RECORDER.inc("repro_engine_strata_total", len(strata))
    return StratifiedResult(
        program=program,
        db=db,
        idb=final,
        rounds=total_rounds,
        engine="stratified",
        trace=None,
        strata=tuple(strata),
    )
