"""Well-founded semantics via Van Gelder's alternating fixpoint.

The paper cites Van Gelder's tight-derivation work [VG86] among the
responses to negation; the well-founded model is the now-standard
three-valued semantics that assigns *every* DATALOG¬ program a partial
model.  We include it as an extension for comparison with the paper's
proposals: on the paper's program ``pi_1`` (the win–move game) the
well-founded model is total exactly on databases where the fixpoint
semantics is unproblematic (e.g. paths), and leaves the odd-cycle atoms
undefined — precisely the instances where ``(pi_1, D)`` has no fixpoint.

Implementation: ground the program (the grounder evaluates each rule's
EDB part through a plan fetched from the shared
:data:`~repro.core.planning.PLAN_STORE` and executed set-at-a-time by
the batch executor with cached indexes — see :mod:`repro.core.planning`
and :mod:`repro.core.grounding`), then iterate the anti-monotone
*stability operator* ``A``:

    A(I) = least model of the positive program obtained by evaluating
           every negative literal against I  (``not n`` holds iff n not in I)

``A`` is anti-monotone, so ``A o A`` is monotone; the well-founded model is

    true      = lfp(A o A)
    possible  = A(true)          (= gfp(A o A))
    undefined = possible - true
    false     = everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set

from ...db.database import Database
from ...db.relation import Relation
from ...obs import RECORDER, TRACER
from ...parallel.shard import SHARD
from ..grounding import GroundAtom, GroundProgram, ground_program
from ..operator import IDBMap
from ..program import Program


@dataclass
class WellFoundedResult:
    """The three-valued well-founded model of ``(program, db)``.

    ``true``/``undefined`` are ground-atom sets; everything not in their
    union is false.  ``rounds`` counts outer alternating-fixpoint steps.
    """

    program: Program
    db: Database
    true: FrozenSet[GroundAtom]
    undefined: FrozenSet[GroundAtom]
    rounds: int

    engine = "wellfounded"
    """Engine tag, mirroring :class:`~repro.core.semantics.base.EvaluationResult`."""

    @property
    def is_total(self) -> bool:
        """True when no atom is undefined (two-valued well-founded model)."""
        return not self.undefined

    def true_idb(self) -> IDBMap:
        """The true atoms as a ``{pred: Relation}`` valuation."""
        return _group(self.program, self.true)

    def undefined_idb(self) -> IDBMap:
        """The undefined atoms as a ``{pred: Relation}`` valuation."""
        return _group(self.program, self.undefined)


def _group(program: Program, atoms: FrozenSet[GroundAtom]) -> IDBMap:
    grouped: Dict[str, Set] = {p: set() for p in program.idb_predicates}
    for pred, values in atoms:
        grouped[pred].add(values)
    return {
        p: Relation(p, program.arity(p), tuples) for p, tuples in grouped.items()
    }


def _least_model_of_reduct(
    ground: GroundProgram, reference: Set[GroundAtom]
) -> Set[GroundAtom]:
    """``A(reference)``: least model with negation evaluated against
    ``reference`` (``not n`` holds iff ``n not in reference``)."""
    if SHARD.active:
        return _sharded_least_model(ground, reference)
    true: Set[GroundAtom] = set()
    # Keep only rules whose negative part is satisfied; then run a
    # queue-based least-model computation on the positive remainder.
    active = [
        r for r in ground.rules if all(n not in reference for n in r.neg)
    ]
    changed = True
    while changed:
        changed = False
        remaining = []
        for r in active:
            if r.head in true:
                continue
            if all(p in true for p in r.pos):
                true.add(r.head)
                changed = True
            else:
                remaining.append(r)
        active = remaining
    return true


def _shard_ground(ground: GroundProgram):
    """This replica's slice of ``ground.rules``, memoised per program.

    The alternating fixpoint calls the least-model operator ``2r + 1``
    times over one unchanging ground program; slicing on every call
    would re-hash every rule head each time and cost more than the
    filter it parallelises.  Cached on the shard context (cleared at
    deactivate), keyed by object identity with the program kept alive
    in the cache entry so the id cannot be recycled under us.

    Also returns the barrier key set — every predicate a derived atom
    could mention, with its arity — taken from the *pre-slice* heads,
    which are content-identical on all replicas (local slices are not,
    so they cannot define the barrier shape).
    """
    cached = SHARD.scratch.get("wf_ground")
    if cached is not None and cached[0] is ground:
        return cached[1], cached[2]
    arities = {r.head[0]: len(r.head[1]) for r in ground.rules}
    mine = SHARD.ground_rule_slice(ground.rules)
    SHARD.scratch["wf_ground"] = (ground, mine, arities)
    return mine, arities


def _sharded_least_model(
    ground: GroundProgram, reference: Set[GroundAtom]
) -> Set[GroundAtom]:
    """The inner least fixpoint, split by head atom across shards.

    Each worker filters and drains local propagation on its slice of
    the ground rules, then the pass's new atoms are unioned at a
    barrier and adopted as positive support for the next pass.  The
    loop ends when a barrier merges nothing new — a global condition,
    so every replica exits together.  Slicing is by head-atom content
    (never rule list position: ground rules come out of set iteration,
    whose order differs between processes).
    """
    true: Set[GroundAtom] = set()
    mine, arities = _shard_ground(ground)
    active = [r for r in mine if all(n not in reference for n in r.neg)]
    while True:
        fresh: Set[GroundAtom] = set()
        changed = True
        while changed:
            changed = False
            remaining = []
            for r in active:
                if r.head in true or r.head in fresh:
                    continue
                if all(p in true or p in fresh for p in r.pos):
                    fresh.add(r.head)
                    changed = True
                else:
                    remaining.append(r)
            active = remaining
        merged = SHARD.merge_atoms(fresh, arities)
        gained = merged - true
        if not gained:
            return true
        true |= gained


def well_founded_semantics(
    program: Program,
    db: Database,
    ground: Optional[GroundProgram] = None,
    parallel: int = 0,
) -> WellFoundedResult:
    """Compute the well-founded model by alternating fixpoint.

    A pre-computed :class:`GroundProgram` may be supplied to share grounding
    work across analyses.  ``parallel=N`` ships the computation to a pool
    of ``N`` sharded worker processes (``ground`` is then recomputed by
    the workers rather than shared).
    """
    if parallel and not SHARD.active:
        from ...parallel.executor import parallel_well_founded

        return parallel_well_founded(program, db, nshards=parallel)
    with TRACER.span("wellfounded") as root:
        gp = ground if ground is not None else ground_program(program, db)
        true: Set[GroundAtom] = set()
        rounds = 0
        while True:
            rounds += 1
            with TRACER.span("alternation.step") as sp:
                overestimate = _least_model_of_reduct(gp, true)
                next_true = _least_model_of_reduct(gp, overestimate)
                if sp:
                    sp["step"] = rounds
                    sp["possible"] = len(overestimate)
                    sp["rows_out"] = len(next_true)
            if next_true == true:
                break
            true = next_true
        with TRACER.span("alternation.possible") as sp:
            possible = _least_model_of_reduct(gp, true)
            if sp:
                sp["rows_out"] = len(possible)
        if root:
            root["rounds"] = rounds
            root["ground_rules"] = len(gp)
        if RECORDER.enabled:
            RECORDER.inc("repro_wf_alternation_steps_total", 2 * rounds + 1)
    return WellFoundedResult(
        program=program,
        db=db,
        true=frozenset(true),
        undefined=frozenset(possible - true),
        rounds=rounds,
    )
