"""Well-founded semantics via Van Gelder's alternating fixpoint.

The paper cites Van Gelder's tight-derivation work [VG86] among the
responses to negation; the well-founded model is the now-standard
three-valued semantics that assigns *every* DATALOG¬ program a partial
model.  We include it as an extension for comparison with the paper's
proposals: on the paper's program ``pi_1`` (the win–move game) the
well-founded model is total exactly on databases where the fixpoint
semantics is unproblematic (e.g. paths), and leaves the odd-cycle atoms
undefined — precisely the instances where ``(pi_1, D)`` has no fixpoint.

Implementation: ground the program (the grounder evaluates each rule's
EDB part through a plan fetched from the shared
:data:`~repro.core.planning.PLAN_STORE` and executed set-at-a-time by
the batch executor with cached indexes — see :mod:`repro.core.planning`
and :mod:`repro.core.grounding`), then iterate the anti-monotone
*stability operator* ``A``:

    A(I) = least model of the positive program obtained by evaluating
           every negative literal against I  (``not n`` holds iff n not in I)

``A`` is anti-monotone, so ``A o A`` is monotone; the well-founded model is

    true      = lfp(A o A)
    possible  = A(true)          (= gfp(A o A))
    undefined = possible - true
    false     = everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set

from ...db.database import Database
from ...db.relation import Relation
from ...obs import RECORDER, TRACER
from ..grounding import GroundAtom, GroundProgram, ground_program
from ..operator import IDBMap
from ..program import Program


@dataclass
class WellFoundedResult:
    """The three-valued well-founded model of ``(program, db)``.

    ``true``/``undefined`` are ground-atom sets; everything not in their
    union is false.  ``rounds`` counts outer alternating-fixpoint steps.
    """

    program: Program
    db: Database
    true: FrozenSet[GroundAtom]
    undefined: FrozenSet[GroundAtom]
    rounds: int

    engine = "wellfounded"
    """Engine tag, mirroring :class:`~repro.core.semantics.base.EvaluationResult`."""

    @property
    def is_total(self) -> bool:
        """True when no atom is undefined (two-valued well-founded model)."""
        return not self.undefined

    def true_idb(self) -> IDBMap:
        """The true atoms as a ``{pred: Relation}`` valuation."""
        return _group(self.program, self.true)

    def undefined_idb(self) -> IDBMap:
        """The undefined atoms as a ``{pred: Relation}`` valuation."""
        return _group(self.program, self.undefined)


def _group(program: Program, atoms: FrozenSet[GroundAtom]) -> IDBMap:
    grouped: Dict[str, Set] = {p: set() for p in program.idb_predicates}
    for pred, values in atoms:
        grouped[pred].add(values)
    return {
        p: Relation(p, program.arity(p), tuples) for p, tuples in grouped.items()
    }


def _least_model_of_reduct(
    ground: GroundProgram, reference: Set[GroundAtom]
) -> Set[GroundAtom]:
    """``A(reference)``: least model with negation evaluated against
    ``reference`` (``not n`` holds iff ``n not in reference``)."""
    true: Set[GroundAtom] = set()
    # Keep only rules whose negative part is satisfied; then run a
    # queue-based least-model computation on the positive remainder.
    active = [
        r for r in ground.rules if all(n not in reference for n in r.neg)
    ]
    changed = True
    while changed:
        changed = False
        remaining = []
        for r in active:
            if r.head in true:
                continue
            if all(p in true for p in r.pos):
                true.add(r.head)
                changed = True
            else:
                remaining.append(r)
        active = remaining
    return true


def well_founded_semantics(
    program: Program,
    db: Database,
    ground: Optional[GroundProgram] = None,
) -> WellFoundedResult:
    """Compute the well-founded model by alternating fixpoint.

    A pre-computed :class:`GroundProgram` may be supplied to share grounding
    work across analyses.
    """
    with TRACER.span("wellfounded") as root:
        gp = ground if ground is not None else ground_program(program, db)
        true: Set[GroundAtom] = set()
        rounds = 0
        while True:
            rounds += 1
            with TRACER.span("alternation.step") as sp:
                overestimate = _least_model_of_reduct(gp, true)
                next_true = _least_model_of_reduct(gp, overestimate)
                if sp:
                    sp["step"] = rounds
                    sp["possible"] = len(overestimate)
                    sp["rows_out"] = len(next_true)
            if next_true == true:
                break
            true = next_true
        with TRACER.span("alternation.possible") as sp:
            possible = _least_model_of_reduct(gp, true)
            if sp:
                sp["rows_out"] = len(possible)
        if root:
            root["rounds"] = rounds
            root["ground_rules"] = len(gp)
        if RECORDER.enabled:
            RECORDER.inc("repro_wf_alternation_steps_total", 2 * rounds + 1)
    return WellFoundedResult(
        program=program,
        db=db,
        true=frozenset(true),
        undefined=frozenset(possible - true),
        rounds=rounds,
    )
