"""Terms of DATALOG¬: variables and constants.

The paper's programs are function-free ("logic programs without function
symbols"), so a term is either a variable or a constant.  Both are immutable
values usable as dict keys.

The :func:`term` helper implements the textual convention used throughout the
library and the parser: identifiers starting with an upper-case letter or
underscore denote variables, everything else denotes a constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union


@dataclass(frozen=True)
class Variable:
    """A logic variable, identified by name."""

    name: str

    def __repr__(self) -> str:
        return "Variable(%r)" % self.name

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant:
    """A constant; ``value`` may be any hashable (int, str, ...)."""

    value: Any

    def __repr__(self) -> str:
        return "Constant(%r)" % (self.value,)

    def __str__(self) -> str:
        return str(self.value)


Term = Union[Variable, Constant]


def term(value: Any) -> Term:
    """Coerce a Python value to a term.

    Strings that look like capitalised identifiers (``"X"``, ``"Node1"``,
    ``"_tmp"``) become variables; every other value becomes a constant.
    Existing :class:`Variable`/:class:`Constant` instances pass through.
    """
    if isinstance(value, (Variable, Constant)):
        return value
    if (
        isinstance(value, str)
        and value.isidentifier()
        and (value[0].isupper() or value[0] == "_")
    ):
        return Variable(value)
    return Constant(value)


def is_variable(t: Term) -> bool:
    """True for :class:`Variable` terms."""
    return isinstance(t, Variable)


def is_constant(t: Term) -> bool:
    """True for :class:`Constant` terms."""
    return isinstance(t, Constant)
