"""Static checks: program/database compatibility and safety analysis.

The paper's semantics deliberately permits *unsafe* rules (variables range
over the universe), so safety violations are reported as analysis results,
not errors.  Mismatched arities between a program and a database are errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..db.database import Database
from .program import Program
from .rules import Rule


class ValidationError(ValueError):
    """Raised when a database cannot serve as input to a program."""


@dataclass
class SafetyReport:
    """Which rules are unsafe, and through which variables.

    ``violations`` maps each unsafe rule to the variables that occur in the
    rule but in no positive body atom.
    """

    violations: List[Tuple[Rule, frozenset]] = field(default_factory=list)

    @property
    def is_safe(self) -> bool:
        """True when no rule violates range restriction."""
        return not self.violations

    def __str__(self) -> str:
        if self.is_safe:
            return "all rules are range-restricted"
        lines = []
        for rule, vs in self.violations:
            names = ", ".join(sorted(v.name for v in vs))
            lines.append("unsafe rule %s  (unrestricted: %s)" % (rule, names))
        return "\n".join(lines)


def safety_report(program: Program) -> SafetyReport:
    """Analyse range restriction for every rule of the program."""
    report = SafetyReport()
    for rule in program.rules:
        unrestricted = rule.variables() - rule.positive_variables()
        if unrestricted:
            report.violations.append((rule, frozenset(unrestricted)))
    return report


def check_database(program: Program, db: Database) -> None:
    """Verify that ``db`` can serve as input to ``program``.

    Every EDB predicate must be present in the database with matching
    arity; IDB predicates, when present (i.e. the database is an
    interpretation mid-iteration), must also match arities.

    Raises
    ------
    ValidationError
        On a missing EDB relation or any arity mismatch.
    """
    for pred in sorted(program.edb_predicates):
        if pred not in db:
            raise ValidationError(
                "database is missing EDB relation %r required by the program" % pred
            )
        if db.arity_of(pred) != program.arity(pred):
            raise ValidationError(
                "relation %s has arity %d in the database but %d in the program"
                % (pred, db.arity_of(pred), program.arity(pred))
            )
    for pred in sorted(program.idb_predicates):
        if pred in db and db.arity_of(pred) != program.arity(pred):
            raise ValidationError(
                "IDB relation %s has arity %d in the database but %d in the program"
                % (pred, db.arity_of(pred), program.arity(pred))
            )
