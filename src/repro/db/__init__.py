"""Relational substrate: relations, databases, algebra, indexes, CSV I/O."""

from .database import Database
from .index import HashIndex
from .relation import Relation

__all__ = ["Database", "HashIndex", "Relation"]
