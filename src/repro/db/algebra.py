"""A small relational-algebra kernel.

The consequence operator of a DATALOG¬ rule is, semantically, a
select-project-join expression followed by an active-domain completion for
the variables not bound by positive literals.  This module supplies the
classical algebra operators on :class:`~repro.db.relation.Relation` values;
the rule evaluator in :mod:`repro.core.operator` composes them.

Columns are addressed positionally (0-based), as in the unnamed perspective
of the relational algebra.
"""

from __future__ import annotations

from functools import lru_cache as _lru_cache
from itertools import product as _product
from typing import Any, Callable, Iterable, Sequence, Tuple

from .index import HashIndex
from .relation import Relation, Tup


def select(rel: Relation, predicate: Callable[[Tup], bool], name: str = None) -> Relation:
    """sigma_predicate(rel): keep the tuples satisfying ``predicate``."""
    return Relation(name or rel.name, rel.arity, (t for t in rel if predicate(t)))


def select_eq(rel: Relation, column: int, value: Any, name: str = None) -> Relation:
    """sigma_{column = value}(rel)."""
    _check_column(rel, column)
    return select(rel, lambda t: t[column] == value, name)


def select_col_eq(rel: Relation, left: int, right: int, name: str = None) -> Relation:
    """sigma_{left = right}(rel) for two columns of the same relation."""
    _check_column(rel, left)
    _check_column(rel, right)
    return select(rel, lambda t: t[left] == t[right], name)


def project(rel: Relation, columns: Sequence[int], name: str = None) -> Relation:
    """pi_columns(rel); columns may repeat or reorder."""
    for c in columns:
        _check_column(rel, c)
    cols = tuple(columns)
    return Relation(
        name or rel.name, len(cols), (tuple(t[c] for c in cols) for t in rel)
    )


def rename(rel: Relation, name: str) -> Relation:
    """rho_name(rel)."""
    return rel.with_name(name)


def union(left: Relation, right: Relation, name: str = None) -> Relation:
    """Set union of two same-arity relations."""
    out = left.union(right)
    return out.with_name(name) if name else out


def difference(left: Relation, right: Relation, name: str = None) -> Relation:
    """Set difference of two same-arity relations."""
    out = left.difference(right)
    return out.with_name(name) if name else out


def intersection(left: Relation, right: Relation, name: str = None) -> Relation:
    """Set intersection of two same-arity relations."""
    out = left.intersection(right)
    return out.with_name(name) if name else out


def cross(left: Relation, right: Relation, name: str = None) -> Relation:
    """Cartesian product; the result has arity ``left.arity + right.arity``."""
    return Relation(
        name or ("%sx%s" % (left.name, right.name)),
        left.arity + right.arity,
        (lt + rt for lt in left for rt in right),
    )


def join(
    left: Relation,
    right: Relation,
    on: Iterable[Tuple[int, int]],
    name: str = None,
) -> Relation:
    """Equi-join: pairs ``(i, j)`` in ``on`` require ``left[i] == right[j]``.

    The result concatenates the full left tuple with the full right tuple
    (no column elimination; project afterwards if needed).  Uses a hash
    index on the smaller operand.
    """
    on = list(on)
    for i, j in on:
        _check_column(left, i)
        _check_column(right, j)
    if not on:
        return cross(left, right, name)

    # Build the index on the smaller relation for an O(|L| + |R|) join.
    swap = len(left) > len(right)
    build, probe = (right, left) if swap else (left, right)
    build_cols = [j for _, j in on] if swap else [i for i, _ in on]
    probe_cols = [i for i, _ in on] if swap else [j for _, j in on]

    index = HashIndex(build, build_cols)
    out = []
    for pt in probe:
        key = tuple(pt[c] for c in probe_cols)
        for bt in index.lookup(key):
            out.append((pt + bt) if swap else (bt + pt))
    # When we swapped, tuples above are (probe=left) + (build=right): correct
    # order.  When not swapped they are (build=left) + (probe=right): also
    # correct.  Both branches therefore concatenate left-then-right.
    return Relation(
        name or ("%s|x|%s" % (left.name, right.name)),
        left.arity + right.arity,
        out,
    )


def semijoin(
    left: Relation,
    right: Relation,
    on: Iterable[Tuple[int, int]],
    name: str = None,
) -> Relation:
    """Left semijoin: left tuples with at least one join partner in right."""
    on = list(on)
    index = HashIndex(right, [j for _, j in on])
    left_cols = [i for i, _ in on]
    return Relation(
        name or left.name,
        left.arity,
        (t for t in left if index.lookup(tuple(t[c] for c in left_cols))),
    )


def antijoin(
    left: Relation,
    right: Relation,
    on: Iterable[Tuple[int, int]],
    name: str = None,
) -> Relation:
    """Left antijoin: left tuples with *no* join partner in right.

    This is the algebraic face of a negated body literal whose variables are
    all bound by earlier positive literals.
    """
    on = list(on)
    index = HashIndex(right, [j for _, j in on])
    left_cols = [i for i, _ in on]
    return Relation(
        name or left.name,
        left.arity,
        (t for t in left if not index.lookup(tuple(t[c] for c in left_cols))),
    )


def full_relation(name: str, arity: int, universe: Iterable[Any]) -> Relation:
    """The relation ``A^arity`` (used for active-domain completion)."""
    return Relation(name, arity, _product(tuple(universe), repeat=arity))


@_lru_cache(maxsize=128)
def universe_product(universe: frozenset, k: int) -> frozenset:
    """``A^k`` as a frozenset of tuples, cached per (universe, k).

    The batch executor's keyed complement steps subtract a projection of
    matched tuples from this set; fixpoint engines call it every round
    with the same universe, so the product is built once per process.
    """
    return frozenset(_product(tuple(universe), repeat=k))


def _check_column(rel: Relation, column: int) -> None:
    if not 0 <= column < rel.arity:
        raise IndexError(
            "column %d out of range for %s/%d" % (column, rel.name, rel.arity)
        )
