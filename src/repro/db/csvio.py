"""CSV import/export for relations and databases.

The examples load edge lists and CNF encodings from small CSV files; this
module keeps that I/O out of the core.  Values are read back as ``int`` when
they parse as integers, otherwise as strings, which matches how the examples
and tests construct universes.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Iterable, Union

from .database import Database
from .relation import Relation

PathLike = Union[str, Path]


def _coerce(value: str) -> Any:
    try:
        return int(value)
    except ValueError:
        return value


_EMPTY_TUPLE_MARKER = "()"
"""On-disk stand-in for the zero-ary empty tuple.

``csv.writer.writerow(())`` emits a blank line and ``csv.reader`` skips
blank lines, so without a marker a zero-ary relation containing ``()``
(i.e. "true") and one containing nothing round-trip to the same file —
exactly the ambiguity that made empty ``<rel>.insert.csv`` deltas
unreadable.  Arity disambiguates on load: the marker row only means
``()`` for zero-ary relations, while for arity 1 it is an ordinary
one-field value.
"""


def load_relation(path: PathLike, name: str, arity: int) -> Relation:
    """Read a relation from a headerless CSV file, one tuple per row."""
    tuples = []
    with open(path, newline="") as f:
        for row in csv.reader(f):
            if not row:
                continue
            if arity == 0 and row == [_EMPTY_TUPLE_MARKER]:
                tuples.append(())
                continue
            if len(row) != arity:
                raise ValueError(
                    "row %r in %s has %d fields, expected %d"
                    % (row, path, len(row), arity)
                )
            tuples.append(tuple(_coerce(v) for v in row))
    return Relation(name, arity, tuples)


def _write_rows(path: PathLike, rows) -> None:
    """Write tuples as headerless CSV, rows sorted for determinism.

    The zero-ary tuple is written as the explicit marker row
    (:data:`_EMPTY_TUPLE_MARKER`) rather than a blank line, so a
    zero-ary relation's truth value survives the round trip.
    """
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        for t in sorted(rows, key=repr):
            writer.writerow(t if t else (_EMPTY_TUPLE_MARKER,))


def dump_relation(rel: Relation, path: PathLike) -> None:
    """Write a relation as headerless CSV, rows sorted for determinism."""
    _write_rows(path, rel)


def load_database(directory: PathLike, schema: dict) -> Database:
    """Load ``{name: arity}`` relations from ``directory/<name>.csv``.

    The universe is the set of all values seen across all relations.
    """
    directory = Path(directory)
    relations = []
    universe = set()
    for name, arity in schema.items():
        rel = load_relation(directory / ("%s.csv" % name), name, arity)
        relations.append(rel)
        for t in rel:
            universe.update(t)
    return Database(universe, relations)


def dump_database(db: Database, directory: PathLike) -> None:
    """Write every relation of ``db`` to ``directory/<name>.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for name in db.relation_names():
        dump_relation(db[name], directory / ("%s.csv" % name))


# ----------------------------------------------------------------------
# Deltas: <relation>.insert.csv / <relation>.delete.csv
# ----------------------------------------------------------------------

_INSERT_SUFFIX = ".insert.csv"
_DELETE_SUFFIX = ".delete.csv"


def load_delta(directory: PathLike, schema: dict) -> "Delta":
    """Load a :class:`~repro.materialize.delta.Delta` from a directory.

    Changes live in headerless ``<relation>.insert.csv`` and
    ``<relation>.delete.csv`` files (either may be absent — an absent
    file is an empty change).  ``schema`` maps relation names to
    arities, normally the program's EDB schema.  The directory is
    treated as dedicated to this one delta: a file matching neither
    suffix, a file naming a non-schema relation, and a row of the wrong
    arity all fail loudly instead of silently feeding the view nothing.
    """
    from ..materialize.delta import Delta

    directory = Path(directory)
    problems = []
    for path in sorted(directory.iterdir()):
        if path.name.endswith(_INSERT_SUFFIX):
            name = path.name[: -len(_INSERT_SUFFIX)]
        elif path.name.endswith(_DELETE_SUFFIX):
            name = path.name[: -len(_DELETE_SUFFIX)]
        else:
            # The directory is dedicated to one delta: a file matching
            # neither suffix is almost certainly a typo (E.inserts.csv,
            # E.Insert.csv) that would otherwise be skipped silently.
            problems.append("unrecognised file %s" % path.name)
            continue
        if name not in schema:
            problems.append("relation %r is outside the schema" % name)
    if problems:
        raise ValueError(
            "delta directory %s: %s" % (directory, "; ".join(problems))
        )
    inserts = {}
    deletes = {}
    for name, arity in schema.items():
        ins_path = directory / (name + _INSERT_SUFFIX)
        del_path = directory / (name + _DELETE_SUFFIX)
        if ins_path.exists():
            inserts[name] = load_relation(ins_path, name, arity).tuples
        if del_path.exists():
            deletes[name] = load_relation(del_path, name, arity).tuples
    return Delta(inserts=inserts, deletes=deletes)


def dump_delta(delta, directory: PathLike) -> None:
    """Write a delta as ``<relation>.insert.csv`` / ``.delete.csv`` files.

    Empty sides are not written, so ``load_delta`` round-trips exactly —
    including zero-ary relations, whose "insert the empty tuple" side is
    a file holding the explicit ``()`` marker row rather than an empty
    (and formerly ambiguous) file.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for name, (inserts, deletes) in delta.items():
        for suffix, tuples in ((_INSERT_SUFFIX, inserts), (_DELETE_SUFFIX, deletes)):
            if tuples:
                _write_rows(directory / (name + suffix), tuples)
