"""CSV import/export for relations, databases and deltas.

The examples load edge lists and CNF encodings from small CSV files, and
the server's write-ahead delta log (:mod:`repro.server.wal`) persists
every committed update in this format — so ``dump → load`` must be the
**identity** on every value the engines can produce, or a restart by log
replay would converge to a different database than the one that crashed.

Value convention (the whole of it):

* Persistable values are ``int`` and ``str`` — the only value types the
  CSV pipeline can ever have introduced.  Anything else (including
  ``bool``, a subclass of ``int`` whose round trip would corrupt) is
  rejected loudly at dump time.
* A field is read back as ``int`` exactly when it is a **canonical**
  integer literal — ``0`` or ``-?[1-9][0-9]*``, i.e. ``repr(i)`` for
  some ``int`` — and as ``str`` otherwise.  Canonical integer *strings*
  (``"7"``) are therefore not representable: they dump like the int and
  load as the int.  Int-lookalikes that Python's ``int()`` would also
  accept — ``"01"``, ``"1_0"``, ``" 7"``, ``"+5"``, ``"-0"`` — are NOT
  canonical and survive as the strings they are (a bare ``int()`` here
  used to silently turn all of them into integers).
* Strings are always quoted on dump (``QUOTE_NONNUMERIC``).  Quoting is
  invisible to the reader (typing is decided by the canonical-integer
  rule above, never by quotes); what it buys is the one-column empty
  string: an unquoted ``("",)`` row would be a blank line, which
  ``csv.reader`` drops.
"""

from __future__ import annotations

import csv
import re
from pathlib import Path
from typing import Any, Union

from .database import Database
from .relation import Relation

PathLike = Union[str, Path]

_CANONICAL_INT = re.compile(r"0|-?[1-9][0-9]*")
"""Exactly ``repr(i)`` for ``int`` values: no leading zeros, no ``+``
sign, no whitespace, no underscores, no ``-0``."""


def _coerce(value: str) -> Any:
    """A loaded field: ``int`` for canonical integer literals, else ``str``.

    Deliberately *not* a bare ``int(value)``: Python's parser accepts
    ``"01"``, ``"1_0"``, ``" 7"``, ``"+5"`` — values a dump of the
    resulting int no longer spells the same way, so a dump/load round
    trip would corrupt them (the replay-poisoning bug this fixed).
    """
    if _CANONICAL_INT.fullmatch(value):
        return int(value)
    return value


def _persistable(value: Any, context: str) -> Any:
    """Reject values the CSV value convention cannot round-trip."""
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise ValueError(
            "value %r of %s is %s; the CSV format persists int and str "
            "values only (see the repro.db.csvio value convention)"
            % (value, context, type(value).__name__)
        )
    return value


_EMPTY_TUPLE_MARKER = "()"
"""On-disk stand-in for the zero-ary empty tuple.

``csv.writer.writerow(())`` emits a blank line and ``csv.reader`` skips
blank lines, so without a marker a zero-ary relation containing ``()``
(i.e. "true") and one containing nothing round-trip to the same file —
exactly the ambiguity that made empty ``<rel>.insert.csv`` deltas
unreadable.  Arity disambiguates on load: the marker row only means
``()`` for zero-ary relations, while for arity 1 it is an ordinary
one-field value.
"""


def load_relation(path: PathLike, name: str, arity: int) -> Relation:
    """Read a relation from a headerless CSV file, one tuple per row."""
    tuples = []
    with open(path, newline="") as f:
        for row in csv.reader(f):
            if not row:
                continue
            if arity == 0 and row == [_EMPTY_TUPLE_MARKER]:
                tuples.append(())
                continue
            if len(row) != arity:
                raise ValueError(
                    "row %r in %s has %d fields, expected %d"
                    % (row, path, len(row), arity)
                )
            tuples.append(tuple(_coerce(v) for v in row))
    return Relation(name, arity, tuples)


def _write_rows(path: PathLike, rows, context: str = "relation") -> None:
    """Write tuples as headerless CSV, rows sorted for determinism.

    The zero-ary tuple is written as the explicit marker row
    (:data:`_EMPTY_TUPLE_MARKER`) rather than a blank line, so a
    zero-ary relation's truth value survives the round trip.  Strings
    are quoted (``QUOTE_NONNUMERIC``) so a one-column empty string is a
    ``""`` line instead of a blank one the reader would skip.
    """
    with open(path, "w", newline="") as f:
        writer = csv.writer(f, quoting=csv.QUOTE_NONNUMERIC)
        for t in sorted(rows, key=repr):
            if t:
                writer.writerow(_persistable(v, context) for v in t)
            else:
                writer.writerow((_EMPTY_TUPLE_MARKER,))


def dump_relation(rel: Relation, path: PathLike) -> None:
    """Write a relation as headerless CSV, rows sorted for determinism."""
    _write_rows(path, rel, context="relation %s" % rel.name)


def load_database(directory: PathLike, schema: dict) -> Database:
    """Load ``{name: arity}`` relations from ``directory/<name>.csv``.

    The universe is the set of all values seen across all relations.
    """
    directory = Path(directory)
    relations = []
    universe = set()
    for name, arity in schema.items():
        rel = load_relation(directory / ("%s.csv" % name), name, arity)
        relations.append(rel)
        for t in rel:
            universe.update(t)
    return Database(universe, relations)


def dump_database(db: Database, directory: PathLike) -> None:
    """Write every relation of ``db`` to ``directory/<name>.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for name in db.relation_names():
        dump_relation(db[name], directory / ("%s.csv" % name))


# ----------------------------------------------------------------------
# Deltas: <relation>.insert.csv / <relation>.delete.csv
# ----------------------------------------------------------------------

_INSERT_SUFFIX = ".insert.csv"
_DELETE_SUFFIX = ".delete.csv"


def load_delta(directory: PathLike, schema: dict) -> "Delta":
    """Load a :class:`~repro.materialize.delta.Delta` from a directory.

    Changes live in headerless ``<relation>.insert.csv`` and
    ``<relation>.delete.csv`` files (either may be absent — an absent
    file is an empty change).  ``schema`` maps relation names to
    arities, normally the program's EDB schema.  The directory is
    treated as dedicated to this one delta: a missing or non-directory
    path, a file matching neither suffix, a file with an empty relation
    name, a file naming a non-schema relation, and a row of the wrong
    arity all fail loudly instead of silently feeding the view nothing.
    """
    from ..materialize.delta import Delta

    directory = Path(directory)
    if not directory.is_dir():
        kind = "is not a directory" if directory.exists() else "does not exist"
        raise ValueError(
            "delta path %s %s; expected a directory of "
            "<relation>.insert.csv / <relation>.delete.csv files"
            % (directory, kind)
        )
    problems = []
    for path in sorted(directory.iterdir()):
        if path.name.endswith(_INSERT_SUFFIX):
            name = path.name[: -len(_INSERT_SUFFIX)]
        elif path.name.endswith(_DELETE_SUFFIX):
            name = path.name[: -len(_DELETE_SUFFIX)]
        else:
            # The directory is dedicated to one delta: a file matching
            # neither suffix is almost certainly a typo (E.inserts.csv,
            # E.Insert.csv) that would otherwise be skipped silently.
            problems.append("unrecognised file %s" % path.name)
            continue
        if not name:
            problems.append(
                "file %s has an empty relation name (nothing before "
                "the %s suffix)" % (path.name, path.name)
            )
        elif name not in schema:
            problems.append("relation %r is outside the schema" % name)
    if problems:
        raise ValueError(
            "delta directory %s: %s" % (directory, "; ".join(problems))
        )
    inserts = {}
    deletes = {}
    for name, arity in schema.items():
        ins_path = directory / (name + _INSERT_SUFFIX)
        del_path = directory / (name + _DELETE_SUFFIX)
        if ins_path.exists():
            inserts[name] = load_relation(ins_path, name, arity).tuples
        if del_path.exists():
            deletes[name] = load_relation(del_path, name, arity).tuples
    return Delta(inserts=inserts, deletes=deletes)


def dump_delta(delta, directory: PathLike) -> None:
    """Write a delta as ``<relation>.insert.csv`` / ``.delete.csv`` files.

    Empty sides are not written, so ``load_delta`` round-trips exactly —
    including zero-ary relations, whose "insert the empty tuple" side is
    a file holding the explicit ``()`` marker row rather than an empty
    (and formerly ambiguous) file.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for name, (inserts, deletes) in delta.items():
        for suffix, tuples in ((_INSERT_SUFFIX, inserts), (_DELETE_SUFFIX, deletes)):
            if tuples:
                _write_rows(
                    directory / (name + suffix),
                    tuples,
                    context="delta side %s" % (name + suffix),
                )
