"""CSV import/export for relations and databases.

The examples load edge lists and CNF encodings from small CSV files; this
module keeps that I/O out of the core.  Values are read back as ``int`` when
they parse as integers, otherwise as strings, which matches how the examples
and tests construct universes.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Iterable, Union

from .database import Database
from .relation import Relation

PathLike = Union[str, Path]


def _coerce(value: str) -> Any:
    try:
        return int(value)
    except ValueError:
        return value


def load_relation(path: PathLike, name: str, arity: int) -> Relation:
    """Read a relation from a headerless CSV file, one tuple per row."""
    tuples = []
    with open(path, newline="") as f:
        for row in csv.reader(f):
            if not row:
                continue
            if len(row) != arity:
                raise ValueError(
                    "row %r in %s has %d fields, expected %d"
                    % (row, path, len(row), arity)
                )
            tuples.append(tuple(_coerce(v) for v in row))
    return Relation(name, arity, tuples)


def dump_relation(rel: Relation, path: PathLike) -> None:
    """Write a relation as headerless CSV, rows sorted for determinism."""
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        for t in sorted(rel, key=repr):
            writer.writerow(t)


def load_database(directory: PathLike, schema: dict) -> Database:
    """Load ``{name: arity}`` relations from ``directory/<name>.csv``.

    The universe is the set of all values seen across all relations.
    """
    directory = Path(directory)
    relations = []
    universe = set()
    for name, arity in schema.items():
        rel = load_relation(directory / ("%s.csv" % name), name, arity)
        relations.append(rel)
        for t in rel:
            universe.update(t)
    return Database(universe, relations)


def dump_database(db: Database, directory: PathLike) -> None:
    """Write every relation of ``db`` to ``directory/<name>.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for name in db.relation_names():
        dump_relation(db[name], directory / ("%s.csv" % name))
