"""Databases: finite structures ``D = (A, R_1, ..., R_l)``.

The paper fixes a finite vocabulary sigma of database relational symbols; a
database supplies a finite universe ``A`` and a relation over ``A`` for every
symbol.  :class:`Database` also carries IDB valuations during evaluation —
an *interpretation* is just a database whose relation map includes values for
the nondatabase symbols.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from .relation import Relation, Tup


class Database:
    """A finite structure: a universe plus named relations.

    Parameters
    ----------
    universe:
        The (finite) set of elements ``A``.  Every value appearing in a
        relation tuple must belong to it.
    relations:
        Mapping or iterable of :class:`Relation`; names must be unique.
    check:
        When true (default) verify that all tuples use universe elements.
    """

    __slots__ = (
        "universe",
        "_relations",
        "_active_domain",
        "_sorted_universe",
        "_lineage",
        "_symcell",
    )

    def __init__(
        self,
        universe: Iterable[Any],
        relations: Iterable[Relation] = (),
        check: bool = True,
    ) -> None:
        self.universe = frozenset(universe)
        rel_map: Dict[str, Relation] = {}
        for rel in relations:
            if rel.name in rel_map:
                raise ValueError("duplicate relation name %r" % rel.name)
            rel_map[rel.name] = rel
        self._relations = rel_map
        # Lineage token: shared by every database *derived* from this one
        # (functional updates), replaced when this value is *superseded*
        # (apply_delta).  Never part of equality/hashing; it exists so the
        # plan store can evict a superseded value's whole derived family
        # (per-stratum working databases, grounding interpretations) in
        # one pass instead of leaking them until LRU churn.
        self._lineage = object()
        # Symbol-table cell: a one-slot holder shared (like the lineage
        # token) by every database derived from this one, so the interning
        # table a fixpoint round creates on a *derived* interpretation is
        # visible to the base database and to every later round.  Holder
        # sharing, not table sharing: the table itself is created lazily
        # by :meth:`symbols`.
        self._symcell = [None]
        if check:
            self._check_domains()

    def _check_domains(self) -> None:
        for rel in self._relations.values():
            for t in rel:
                for value in t:
                    if value not in self.universe:
                        raise ValueError(
                            "value %r in relation %s is outside the universe"
                            % (value, rel.name)
                        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_dict(
        cls,
        universe: Iterable[Any],
        relations: Mapping[str, Iterable[Tup]],
        arities: Optional[Mapping[str, int]] = None,
    ) -> "Database":
        """Build a database from ``{name: tuples}``.

        Arities are inferred from the first tuple of each relation unless
        given explicitly (required for empty relations).
        """
        rels = []
        for name, tuples in relations.items():
            tuples = [tuple(t) for t in tuples]
            if arities is not None and name in arities:
                arity = arities[name]
            elif tuples:
                arity = len(tuples[0])
            else:
                raise ValueError(
                    "cannot infer arity of empty relation %r; pass arities=" % name
                )
            rels.append(Relation(name, arity, tuples))
        return cls(universe, rels)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def relations(self) -> Mapping[str, Relation]:
        """Read-only view of the relation map."""
        return dict(self._relations)

    def relation_names(self) -> Tuple[str, ...]:
        """All relation names, sorted for determinism."""
        return tuple(sorted(self._relations))

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError("no relation named %r in database" % name) from None

    def get(self, name: str, default: Optional[Relation] = None) -> Optional[Relation]:
        """Return the relation called ``name`` or ``default``."""
        return self._relations.get(name, default)

    def arity_of(self, name: str) -> int:
        """Arity of the named relation."""
        return self[name].arity

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self.universe == other.universe and self._relations == other._relations

    def __hash__(self) -> int:
        return hash((self.universe, frozenset(self._relations.items())))

    def __repr__(self) -> str:
        rels = ", ".join(
            "%s/%d:%d" % (r.name, r.arity, len(r))
            for r in (self._relations[n] for n in self.relation_names())
        )
        return "Database(|A|=%d, %s)" % (len(self.universe), rels)

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------

    def symbols(self):
        """This database's interning :class:`~repro.db.kernel.SymbolTable`.

        Created lazily (interning the sorted universe first, so equal
        databases intern equal universes to identical ids) and *shared*
        by the whole derivation family — functional updates
        (:meth:`with_relation`/:meth:`with_relations`/...) and
        :meth:`apply_delta` propagate the same holder cell, so the table
        a fixpoint round creates on a derived interpretation is the one
        every later round (and the base database) sees; interning is
        monotone, so dense ids survive update streams and WAL replay
        within a process.  The table is identity-level state (like the
        lineage token): never part of equality or hashing.
        """
        sym = self._symcell[0]
        if sym is None:
            from .kernel import SymbolTable

            sym = SymbolTable(self.sorted_universe())
            self._symcell[0] = sym
        return sym

    def interned_size(self) -> Optional[int]:
        """How many constants the family's symbol table holds, or ``None``.

        A pure peek for observability (the server's ``stats`` face):
        unlike :meth:`symbols` it never *creates* the table, so asking a
        database that has not touched the columnar kernel reports
        ``None`` instead of paying the interning pass.
        """
        sym = self._symcell[0]
        return None if sym is None else len(sym)

    def _derive(self, relations) -> "Database":
        """A functional-update result, sharing this database's lineage."""
        out = Database(self.universe, relations, check=False)
        out._lineage = self._lineage
        out._symcell = self._symcell
        return out

    def with_relation(self, rel: Relation) -> "Database":
        """Return a copy with ``rel`` added or replaced (same universe)."""
        new = dict(self._relations)
        new[rel.name] = rel
        return self._derive(new.values())

    def with_relations(self, rels: Iterable[Relation]) -> "Database":
        """Return a copy with every relation in ``rels`` added/replaced."""
        new = dict(self._relations)
        for rel in rels:
            new[rel.name] = rel
        return self._derive(new.values())

    def without(self, *names: str) -> "Database":
        """Return a copy with the named relations removed."""
        new = {k: v for k, v in self._relations.items() if k not in names}
        return self._derive(new.values())

    def restrict(self, names: Iterable[str]) -> "Database":
        """Return a copy keeping only the named relations."""
        keep = set(names)
        new = {k: v for k, v in self._relations.items() if k in keep}
        return self._derive(new.values())

    def apply_delta(self, delta, invalidate_plans: bool = True) -> "Database":
        """Apply per-relation insert/delete sets, returning a new database.

        ``delta`` is a :class:`repro.materialize.delta.Delta` (or any
        mapping-like object with ``.items()`` yielding
        ``(name, (inserts, deletes))``).  Every named relation must exist;
        tuples must match its arity.  The universe is extended with any
        values the inserted tuples introduce — deletions never shrink it
        (the paper's semantics quantifies over the whole universe, so
        dropping elements would silently change the meaning of unsafe
        rules; callers that want a trimmed universe rebuild explicitly).

        Each changed relation is produced with :meth:`Relation.evolve`,
        so its cached indexes, complements and keyed complements are
        patched from the old value's caches rather than rebuilt.  Plans
        compiled against *this* (pre-delta) database value — and against
        any database **derived** from it (per-stratum working databases,
        grounding interpretations: everything sharing its lineage token)
        — are dropped from the process-wide plan store eagerly.  This is
        the mutation API, the one code path where a database value is
        superseded rather than merely derived from, so it owns the
        :meth:`~repro.core.planning.PlanStore.invalidate` /
        :meth:`~repro.core.planning.PlanStore.invalidate_lineage` calls;
        without the lineage purge a long update stream fills the plan
        store's LRU with entries no future lookup can ever hit.

        Returns ``self`` unchanged (all caches intact) when the delta is
        a no-op against the current contents.
        """
        new_rels: Dict[str, Relation] = dict(self._relations)
        new_values = set()
        changed = False
        for name, (inserts, deletes) in delta.items():
            try:
                rel = self._relations[name]
            except KeyError:
                raise KeyError(
                    "delta names relation %r which is not in the database" % name
                ) from None
            evolved = rel.evolve(inserts, deletes)
            if evolved is not rel:
                changed = True
                new_rels[name] = evolved
                for t in inserts:
                    new_values.update(t)
        if not changed:
            return self
        universe = self.universe | frozenset(new_values)
        out = Database(universe, new_rels.values(), check=False)
        # The symbol table is monotone: the post-delta database keeps
        # it, so interned ids (and every code vector built under an
        # unwidened generation) survive the update stream.
        out._symcell = self._symcell
        if invalidate_plans:
            from ..core.planning import PLAN_STORE

            PLAN_STORE.invalidate(db=self)
            PLAN_STORE.invalidate_lineage(self._lineage)
        return out

    def active_domain(self) -> frozenset:
        """Elements that actually occur in some relation tuple.

        Computed once per database instance and cached; databases are
        immutable (functional updates return new instances), so the cache
        can never go stale.
        """
        try:
            return self._active_domain
        except AttributeError:
            pass
        seen = set()
        for rel in self._relations.values():
            for t in rel:
                seen.update(t)
        domain = frozenset(seen)
        self._active_domain = domain
        return domain

    def sorted_universe(self) -> Tuple[Any, ...]:
        """The universe as a deterministically ordered tuple, cached.

        ``sorted(..., key=repr)`` works for mixed value domains; callers
        that need a stable iteration order (the plan executors, grounding)
        share this one sort instead of re-sorting per call.
        """
        try:
            return self._sorted_universe
        except AttributeError:
            ordered = tuple(sorted(self.universe, key=repr))
            self._sorted_universe = ordered
            return ordered
