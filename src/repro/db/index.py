"""Hash indexes over relations, used by the join operators.

Besides the plain :class:`HashIndex`, this module holds
:class:`KeyedComplement` — the delta-aware per-key allowed-sets behind
the batch executor's keyed
:class:`~repro.core.planning.plan.ComplementJoin`.  Both structures can
be *patched* from a predecessor relation's cached instance with just the
tuple delta (see :meth:`repro.db.relation.Relation._inherit_caches`), so
fixpoint rounds and materialized-view updates never rebuild them from
scratch for relations that changed by a few tuples.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Sequence, Tuple

from .relation import Relation, Tup


class HashIndex:
    """An index mapping key-column values to the tuples carrying them.

    Parameters
    ----------
    relation:
        The relation to index.
    columns:
        The 0-based key columns, in key order.
    """

    __slots__ = ("columns", "_buckets")

    def __init__(self, relation: Relation, columns: Sequence[int]) -> None:
        for c in columns:
            if not 0 <= c < relation.arity:
                raise IndexError(
                    "column %d out of range for %s/%d"
                    % (c, relation.name, relation.arity)
                )
        self.columns = tuple(columns)
        buckets: Dict[Tuple, List[Tup]] = {}
        for t in relation:
            key = tuple(t[c] for c in self.columns)
            buckets.setdefault(key, []).append(t)
        self._buckets = buckets

    @classmethod
    def patched(
        cls,
        parent: "HashIndex",
        added: FrozenSet[Tup],
        removed: FrozenSet[Tup],
    ) -> "HashIndex":
        """An index for ``parent``'s relation after a tuple delta.

        Copies the bucket map shallowly and rewrites only the buckets the
        delta touches (copy-on-write — the parent index is never
        mutated), so deriving costs ``O(|delta| + #buckets)`` instead of
        a full rescan.  ``removed`` must be tuples the parent indexed.
        """
        self = object.__new__(cls)
        self.columns = parent.columns
        cols = parent.columns
        buckets = dict(parent._buckets)
        touched: Dict[Tuple, List[Tup]] = {}
        for t in removed:
            key = tuple(t[c] for c in cols)
            if key not in touched:
                touched[key] = list(buckets.get(key, ()))
            touched[key].remove(t)
        for t in added:
            key = tuple(t[c] for c in cols)
            if key not in touched:
                touched[key] = list(buckets.get(key, ()))
            touched[key].append(t)
        for key, bucket in touched.items():
            if bucket:
                buckets[key] = bucket
            else:
                buckets.pop(key, None)
        self._buckets = buckets
        return self

    def lookup(self, key: Tuple) -> List[Tup]:
        """All indexed tuples whose key columns equal ``key``."""
        return self._buckets.get(tuple(key), [])

    def keys(self):
        """The distinct key values present in the index."""
        return self._buckets.keys()

    def project(self, key: Tuple, positions: Sequence[int]) -> frozenset:
        """Projections onto ``positions`` of the tuples matching ``key``.

        This is the *excluded set* of a keyed complement step: the batch
        executor subtracts it from ``universe**len(positions)`` to get the
        values a completed variable may take under a negated literal.
        """
        return frozenset(
            tuple(t[p] for p in positions) for t in self._buckets.get(tuple(key), ())
        )

    def __len__(self) -> int:
        return sum(len(v) for v in self._buckets.values())

    def __contains__(self, key: Tuple) -> bool:
        return tuple(key) in self._buckets


class KeyedComplement:
    """Per-key allowed-sets of a keyed negated completion, patchable.

    For a negated literal ``!pred(args)`` with bound columns and ``k``
    completion positions, the allowed assignments under key ``key`` are
    ``universe**k`` minus the projections of ``pred``'s tuples matching
    the key.  Instances are cached on the relation
    (:meth:`repro.db.relation.Relation.keyed_complement_on`), memoise
    allowed-sets lazily per requested key, and derive from a predecessor
    relation's instance by patching exactly the keys a tuple delta
    touches — never recomputing untouched keys.

    Because ``bound_columns`` and ``free_positions`` together cover every
    atom position, a tuple corresponds to exactly one ``(key,
    projection)`` pair, so add/remove patches are one set op per delta
    tuple.
    """

    __slots__ = ("relation", "universe", "bound_columns", "free_positions", "_full", "_allowed")

    def __init__(
        self,
        relation: Relation,
        universe: FrozenSet[Any],
        bound_columns: Tuple[int, ...],
        free_positions: Tuple[int, ...],
        _allowed: Dict[Tuple, FrozenSet[Tuple]] = None,
    ) -> None:
        from .algebra import universe_product

        self.relation = relation
        self.universe = universe
        self.bound_columns = bound_columns
        self.free_positions = free_positions
        self._full = universe_product(universe, len(free_positions))
        self._allowed = {} if _allowed is None else _allowed

    def get(self, key: Tuple) -> FrozenSet[Tuple]:
        """The allowed completion tuples under ``key`` (memoised)."""
        allowed = self._allowed.get(key)
        if allowed is None:
            excluded = self.relation.index_on(self.bound_columns).project(
                key, self.free_positions
            )
            allowed = self._full - excluded if excluded else self._full
            self._allowed[key] = allowed
        return allowed

    def derived(
        self,
        relation: Relation,
        added: FrozenSet[Tup],
        removed: FrozenSet[Tup],
    ) -> "KeyedComplement":
        """The keyed complement of ``relation`` after a tuple delta.

        Only keys already materialised here *and* touched by the delta
        are patched; everything else stays lazy.
        """
        allowed = dict(self._allowed)
        bound = self.bound_columns
        free = self.free_positions
        for t in added:
            key = tuple(t[c] for c in bound)
            have = allowed.get(key)
            if have is not None:
                allowed[key] = have - {tuple(t[p] for p in free)}
        for t in removed:
            key = tuple(t[c] for c in bound)
            have = allowed.get(key)
            if have is not None:
                proj = tuple(t[p] for p in free)
                if proj in self._full:
                    allowed[key] = have | {proj}
        return KeyedComplement(
            relation, self.universe, bound, free, _allowed=allowed
        )

    def materialised_keys(self):
        """The keys whose allowed-sets are currently materialised."""
        return self._allowed.keys()
