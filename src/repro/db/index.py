"""Hash indexes over relations, used by the join operators."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .relation import Relation, Tup


class HashIndex:
    """An index mapping key-column values to the tuples carrying them.

    Parameters
    ----------
    relation:
        The relation to index.
    columns:
        The 0-based key columns, in key order.
    """

    __slots__ = ("columns", "_buckets")

    def __init__(self, relation: Relation, columns: Sequence[int]) -> None:
        for c in columns:
            if not 0 <= c < relation.arity:
                raise IndexError(
                    "column %d out of range for %s/%d"
                    % (c, relation.name, relation.arity)
                )
        self.columns = tuple(columns)
        buckets: Dict[Tuple, List[Tup]] = {}
        for t in relation:
            key = tuple(t[c] for c in self.columns)
            buckets.setdefault(key, []).append(t)
        self._buckets = buckets

    def lookup(self, key: Tuple) -> List[Tup]:
        """All indexed tuples whose key columns equal ``key``."""
        return self._buckets.get(tuple(key), [])

    def keys(self):
        """The distinct key values present in the index."""
        return self._buckets.keys()

    def project(self, key: Tuple, positions: Sequence[int]) -> frozenset:
        """Projections onto ``positions`` of the tuples matching ``key``.

        This is the *excluded set* of a keyed complement step: the batch
        executor subtracts it from ``universe**len(positions)`` to get the
        values a completed variable may take under a negated literal.
        """
        return frozenset(
            tuple(t[p] for p in positions) for t in self._buckets.get(tuple(key), ())
        )

    def __len__(self) -> int:
        return sum(len(v) for v in self._buckets.values())

    def __contains__(self, key: Tuple) -> bool:
        return tuple(key) in self._buckets
