"""Interned columnar kernel: dense-int terms and array-backed relations.

Every constant a :class:`~repro.db.database.Database` mentions is
*interned* to a dense non-negative int by a per-database
:class:`SymbolTable` (monotone: ids are only ever appended, so they
survive ``apply_delta`` update streams and WAL replay within a process).
A relation's tuples then become a sorted, duplicate-free vector of
fixed-width *row codes* — each tuple packed into one int64 by
bit-shifting its field ids — and the set algebra the fixpoint engines
grind on (union, difference, subset, equality, membership, complement,
semi-join filtering) turns into integer-vector arithmetic:

* joins probe sorted runs of key codes (binary search / radix order)
  instead of hashing Python tuples per row;
* semi-join reduction is bitset membership filtering over key codes;
* complements are range arithmetic over the interned universe instead
  of materialising ``|A|^k`` Python tuples;
* per-tuple hashing and allocation leave the hot path entirely — the
  only place tuples are rebuilt is :meth:`SymbolTable.extern_code`,
  and that is memoised.

Two backends implement the same narrow interface: the portable baseline
stores code vectors in :mod:`array` ``array('q')`` columns with plain
``int`` sets for membership, and an optional numpy fast path (selected
at import, reported in bench metadata) vectorises the same operations.
``REPRO_KERNEL_BACKEND=array|numpy`` forces a backend; asking for numpy
without numpy installed falls back to ``array`` rather than failing —
the kernel is an accelerator, never a dependency.
"""

from __future__ import annotations

import os
from array import array
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

try:  # optional fast path; the array backend is always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

_MAX_CODE_BITS = 63
"""Row codes must fit a signed 64-bit int (``array('q')`` / int64)."""

_BITSET_LIMIT = 1 << 16
"""Largest key-code space a pure-Python membership bitset will cover;
beyond it, membership falls back to a hash set (the bitset would cost
more to build than it saves)."""


def _select_backend() -> str:
    forced = os.environ.get("REPRO_KERNEL_BACKEND", "").strip().lower()
    if forced == "array":
        return "array"
    if forced == "numpy":
        return "numpy" if _np is not None else "array"
    return "numpy" if _np is not None else "array"


_BACKEND = _select_backend()


def backend() -> str:
    """The active kernel backend: ``"numpy"`` or ``"array"``."""
    return _BACKEND


def set_backend(name: str) -> str:
    """Force the backend (tests/benchmarks); returns the previous one.

    Asking for ``"numpy"`` without numpy installed raises — tests that
    parametrise over backends skip instead of silently re-testing the
    baseline.
    """
    global _BACKEND
    if name not in ("numpy", "array"):
        raise ValueError("unknown kernel backend %r" % name)
    if name == "numpy" and _np is None:
        raise RuntimeError("numpy backend requested but numpy is not installed")
    previous = _BACKEND
    _BACKEND = name
    return previous


def available_backends() -> Tuple[str, ...]:
    """Backends usable in this process (``array`` always; numpy when present)."""
    return ("array", "numpy") if _np is not None else ("array",)


def has_numpy() -> bool:
    """True when the numpy fast path is importable."""
    return _np is not None


def canon_columns(columns) -> Tuple[int, ...]:
    """Normalise a column specification to a tuple of plain ints.

    Cache keys for :meth:`Relation.index_on` / ``keyed_complement_on``
    must compare by *value*: a caller passing a list, a generator, an
    ``array('q')`` slice or numpy ints must hit the same cached
    structure as one passing a tuple of ints.  Every cache at the
    kernel boundary routes its column spec through here exactly once.
    """
    return tuple(int(c) for c in columns)


# ----------------------------------------------------------------------
# Symbol table
# ----------------------------------------------------------------------


class SymbolTable:
    """Dense interning of constants: value ↔ contiguous non-negative id.

    Interning is *monotone*: an id, once assigned, never changes and is
    never reused, so code vectors built against this table stay valid as
    the table grows — until the per-field bit width (:attr:`shift`) must
    widen to fit new ids, which bumps :attr:`generation` and retires
    codes built under the old width (their caches key on the width).

    ``extern_code`` memoises decoded tuples, so a fixpoint that derives
    the same head tuples round after round pays the Python-tuple
    construction cost once.
    """

    __slots__ = ("_values", "_ids", "_shift", "generation", "_tuples", "_misc")

    _MIN_SHIFT = 8

    def __init__(self, values: Iterable[Any] = ()) -> None:
        self._values: List[Any] = []
        self._ids: Dict[Any, int] = {}
        self._shift = self._MIN_SHIFT
        self.generation = 0
        # (arity, code) -> tuple, cleared when the shift widens.
        self._tuples: Dict[Tuple[int, int], tuple] = {}
        # Scratch caches keyed by kernel helpers (universe products and
        # the like); cleared with the tuple cache on generation bumps.
        self._misc: Dict[Any, Any] = {}
        for v in values:
            self.intern(v)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def shift(self) -> int:
        """Bits per tuple field under the current generation."""
        return self._shift

    def capacity(self) -> int:
        """Ids representable without widening the field width."""
        return 1 << self._shift

    def intern(self, value: Any) -> int:
        """The dense id of ``value``, assigning the next id when new."""
        ids = self._ids
        i = ids.get(value)
        if i is None:
            i = len(self._values)
            ids[value] = i
            self._values.append(value)
            if i >= (1 << self._shift):
                while i >= (1 << self._shift):
                    self._shift += 4
                self.generation += 1
                self._tuples.clear()
                self._misc.clear()
        return i

    def intern_many(self, values: Iterable[Any]) -> None:
        """Intern every value (bulk form of :meth:`intern`)."""
        for v in values:
            self.intern(v)

    def id_of(self, value: Any) -> Optional[int]:
        """The id of ``value`` if already interned, else ``None``."""
        return self._ids.get(value)

    def extern(self, ident: int) -> Any:
        """The value behind a dense id."""
        return self._values[ident]

    def intern_tuple(self, t: Sequence[Any]) -> Tuple[int, ...]:
        """Field ids of a tuple (interning new values)."""
        intern = self.intern
        return tuple(intern(v) for v in t)

    def encode_tuple(self, t: Sequence[Any]) -> int:
        """Pack a tuple into one row code under the current shift."""
        b = self._shift
        intern = self.intern
        code = 0
        for v in t:
            code = (code << b) | intern(v)
        return code

    def extern_code(self, code: int, arity: int) -> tuple:
        """Unpack a row code into a value tuple (memoised)."""
        key = (arity, code)
        t = self._tuples.get(key)
        if t is None:
            b = self._shift
            mask = (1 << b) - 1
            values = self._values
            t = tuple(
                values[(code >> (b * (arity - 1 - k))) & mask]
                for k in range(arity)
            )
            self._tuples[key] = t
        return t

    def fits(self, width: int) -> bool:
        """Whether ``width`` packed fields fit a signed 64-bit code."""
        return width * self._shift <= _MAX_CODE_BITS

    def scratch(self) -> Dict[Any, Any]:
        """A per-generation scratch cache for kernel helpers."""
        return self._misc

    def __repr__(self) -> str:
        return "SymbolTable(%d symbols, %d bits/field, gen %d)" % (
            len(self._values),
            self._shift,
            self.generation,
        )


# ----------------------------------------------------------------------
# Code vectors: the backend-dependent storage
# ----------------------------------------------------------------------
#
# A "code vector" is the kernel's unit of columnar storage: a sorted,
# duplicate-free sequence of int64 row codes.  Under numpy that is an
# ``np.int64`` ndarray; under the array backend an ``array('q')`` plus a
# lazily-built frozenset for O(1) membership.


class CodeVector:
    """A sorted duplicate-free vector of row codes (array backend).

    The numpy backend uses raw ``np.ndarray`` values instead of this
    class; :func:`as_codes` builds whichever the active backend wants.
    """

    __slots__ = ("data", "_members")

    def __init__(self, data: array, members: Optional[frozenset] = None) -> None:
        self.data = data  # array('q'), sorted ascending, unique
        self._members = members

    @property
    def members(self) -> frozenset:
        if self._members is None:
            self._members = frozenset(self.data)
        return self._members

    def __len__(self) -> int:
        return len(self.data)


def dedup_sorted(arr):
    """Distinct values of an already *sorted* int64 ndarray.

    Returns ``arr`` itself (no copy) when all values are distinct — the
    common case for code vectors, which are unique by construction.
    """
    n = len(arr)
    if n <= 1:
        return arr
    keep = _np.empty(n, dtype=bool)
    keep[0] = True
    _np.not_equal(arr[1:], arr[:-1], out=keep[1:])
    if keep.all():
        return arr
    return arr[keep]


def sorted_unique(arr):
    """Sorted distinct values of an int64 ndarray (sort + boundary scan).

    The kernel's replacement for ``np.unique`` on code vectors: numpy
    2's hash-based unique kernel is measurably slower than one sort
    plus a neighbour comparison on the small-to-medium int64 vectors
    the executors produce, and this variant avoids the copy entirely
    when the input is already duplicate-free.
    """
    if len(arr) <= 1:
        return arr
    return dedup_sorted(_np.sort(arr))


def as_codes(codes: Iterable[int]):
    """A backend code vector from arbitrary (unsorted, duplicated) codes."""
    if _BACKEND == "numpy":
        arr = _np.fromiter(codes, dtype=_np.int64)
        return sorted_unique(arr)
    uniq = sorted(set(codes))
    return CodeVector(array("q", uniq), frozenset(uniq))


def empty_codes():
    """The empty code vector for the active backend."""
    if _BACKEND == "numpy":
        return _np.empty(0, dtype=_np.int64)
    return CodeVector(array("q"), frozenset())


def codes_len(codes) -> int:
    return len(codes)


def codes_iter(codes):
    """Iterate the codes as Python ints (ascending)."""
    if _BACKEND == "numpy" and isinstance(codes, _np.ndarray):
        return iter(codes.tolist())
    return iter(codes.data)


def codes_equal(a, b) -> bool:
    if a is b:
        return True
    if isinstance(a, CodeVector):
        return a.data == b.data
    return len(a) == len(b) and bool(_np.array_equal(a, b))


def codes_union(a, b):
    if isinstance(a, CodeVector):
        if not b.data:
            return a
        merged = a.members | b.members
        if len(merged) == len(a.data):
            return a
        return CodeVector(array("q", sorted(merged)), frozenset(merged))
    if len(b) == 0:
        return a
    out = sorted_unique(_np.concatenate((a, b)))
    return a if len(out) == len(a) else out


def codes_difference(a, b):
    if isinstance(a, CodeVector):
        if not b.data:
            return a
        kept = a.members - b.members
        if len(kept) == len(a.data):
            return a
        return CodeVector(array("q", sorted(kept)), frozenset(kept))
    if len(b) == 0 or len(a) == 0:
        return a
    mask = _sorted_isin(a, b)
    if not mask.any():
        return a
    return a[~mask]


def codes_intersection(a, b):
    if isinstance(a, CodeVector):
        kept = a.members & b.members
        return CodeVector(array("q", sorted(kept)), frozenset(kept))
    if len(a) == 0 or len(b) == 0:
        return empty_codes()
    return a[_sorted_isin(a, b)]


def codes_issubset(a, b) -> bool:
    if isinstance(a, CodeVector):
        return a.members <= b.members
    if len(a) > len(b):
        return False
    if len(a) == 0:
        return True
    return bool(_sorted_isin(a, b).all())

def codes_contains(codes, code: int) -> bool:
    if isinstance(codes, CodeVector):
        return code in codes.members
    i = int(_np.searchsorted(codes, code))
    return i < len(codes) and int(codes[i]) == code


def _sorted_isin(a, b):
    """Boolean mask of ``a``'s membership in sorted-unique ``b`` (numpy).

    Small probes binary-search; big probes go through ``np.isin``, whose
    sort-merge kernel amortises far better than ``searchsorted``'s
    per-element binary searches (an order of magnitude at ~20k probes).
    """
    if len(b) == 0:
        return _np.zeros(len(a), dtype=bool)
    if len(a) >= 512:
        return _np.isin(a, b)
    idx = b.searchsorted(a)
    idx[idx == len(b)] = len(b) - 1
    return b[idx] == a


# ----------------------------------------------------------------------
# Membership structures: the semi-join filtering face
# ----------------------------------------------------------------------


class KeyMembership:
    """O(1)-ish membership over a set of key codes.

    The array backend packs small key spaces into one Python int used as
    a *bitset* (bigint bit tests are C-speed); larger spaces fall back
    to a frozenset.  The numpy backend keeps the sorted vector and
    answers batch queries with :func:`_sorted_isin`.  This is what the
    Yannakakis semi-join prologue and anti-joins filter through.
    """

    __slots__ = ("_bits", "_set", "_sorted")

    def __init__(self, codes) -> None:
        self._bits = None
        self._set = None
        self._sorted = None
        if isinstance(codes, CodeVector):
            data = codes.data
            if data and 0 <= data[0] and data[-1] < _BITSET_LIMIT:
                bits = 0
                for c in data:
                    bits |= 1 << c
                self._bits = bits
            else:
                self._set = codes.members
        else:
            self._sorted = codes

    def __contains__(self, code: int) -> bool:
        if self._bits is not None:
            return bool((self._bits >> code) & 1)
        if self._set is not None:
            return code in self._set
        return codes_contains(self._sorted, code)

    def mask(self, probe):
        """Batch membership of a probe vector (numpy backend only)."""
        return _sorted_isin(probe, self._sorted)


# ----------------------------------------------------------------------
# Columnar relations
# ----------------------------------------------------------------------


class RelationCodes:
    """One relation's tuples as a code vector under one symbol table.

    Cached on the (immutable) relation, keyed by ``(symbols,
    generation)``; derived relations patch rather than re-encode (see
    :meth:`evolved`).  Per-column views and per-key-column sorted join
    runs are materialised lazily and also cached here, so a fixpoint
    builds each at most once per relation value.
    """

    __slots__ = ("symbols", "shift", "arity", "codes", "_columns", "_runs", "_keys")

    def __init__(self, symbols: SymbolTable, arity: int, codes) -> None:
        self.symbols = symbols
        self.shift = symbols.shift
        self.arity = arity
        self.codes = codes
        self._columns = None
        self._runs: Dict[Tuple[int, ...], Any] = {}
        self._keys: Dict[Tuple[int, ...], Any] = {}

    @classmethod
    def encode(cls, symbols: SymbolTable, arity: int, tuples) -> "RelationCodes":
        """Encode an iterable of tuples (two passes: intern, then pack).

        Interning first means the pack pass runs under the final shift —
        a mid-encode widening cannot corrupt earlier codes.
        """
        seqs = tuples if isinstance(tuples, (list, tuple)) else list(tuples)
        intern = symbols.intern
        if arity == 1:
            ids = [intern(t[0]) for t in seqs]
            return cls(symbols, 1, as_codes(ids))
        for t in seqs:
            for v in t:
                intern(v)
        b = symbols.shift
        ids = symbols._ids
        codes = []
        append = codes.append
        for t in seqs:
            code = 0
            for v in t:
                code = (code << b) | ids[v]
            append(code)
        return cls(symbols, arity, as_codes(codes))

    def valid(self) -> bool:
        """Codes stay valid until the table's field width widens."""
        return self.shift == self.symbols.shift

    def __len__(self) -> int:
        return len(self.codes)

    def decode(self) -> frozenset:
        """The tuples back, decoded under *this payload's* field width.

        Ids never change once assigned, so codes built before a width
        widening still decode exactly — with their own recorded shift,
        not the table's current one.  Current-generation payloads route
        through the table's memoised extern instead, so a fixpoint that
        re-derives the same heads round after round rebuilds each tuple
        once.
        """
        arity = self.arity
        if self.valid():
            extern = self.symbols.extern_code
            return frozenset(extern(c, arity) for c in codes_iter(self.codes))
        b = self.shift
        mask = (1 << b) - 1
        values = self.symbols._values
        return frozenset(
            tuple(
                values[(c >> (b * (arity - 1 - k))) & mask]
                for k in range(arity)
            )
            for c in codes_iter(self.codes)
        )

    def contains_tuple(self, t: tuple) -> bool:
        """Membership of one tuple, without decoding the vector."""
        if len(t) != self.arity:
            return False
        ids = self.symbols._ids
        b = self.shift
        cap = 1 << b
        code = 0
        for v in t:
            i = ids.get(v)
            if i is None or i >= cap:
                # Unknown value, or one interned after this payload's
                # width was fixed — either way it cannot be in the codes.
                return False
            code = (code << b) | i
        return codes_contains(self.codes, code)

    def columns(self):
        """Per-column id vectors, decoded from the codes once."""
        cols = self._columns
        if cols is None:
            b = self.shift
            arity = self.arity
            if _BACKEND == "numpy" and isinstance(self.codes, _np.ndarray):
                cols = tuple(
                    (self.codes >> (b * (arity - 1 - k))) & ((1 << b) - 1)
                    for k in range(arity)
                )
            else:
                mask = (1 << b) - 1
                cols = tuple(
                    array(
                        "q",
                        [
                            (c >> (b * (arity - 1 - k))) & mask
                            for c in self.codes.data
                        ],
                    )
                    for k in range(arity)
                )
            self._columns = cols
        return cols

    def key_codes(self, key_columns: Tuple[int, ...]):
        """Mixed key codes of every row for the given columns (row order),
        cached per column tuple (fixpoint rounds re-fold the same keys)."""
        if len(key_columns) == 1:
            return self.columns()[key_columns[0]]
        key_columns = tuple(key_columns)
        cached = self._keys.get(key_columns)
        if cached is not None:
            return cached
        b = self.shift
        cols = self.columns()
        if _BACKEND == "numpy" and isinstance(self.codes, _np.ndarray):
            out = cols[key_columns[0]].copy()
            for c in key_columns[1:]:
                out <<= b
                out |= cols[c]
            self._keys[key_columns] = out
            return out
        picked = [cols[c] for c in key_columns]
        out = array("q", bytes(8 * len(self.codes.data)))
        for i in range(len(out)):
            code = 0
            for col in picked:
                code = (code << b) | col[i]
            out[i] = code
        return out

    def sorted_run(self, key_columns) -> "SortedRun":
        """The sorted-run join index on ``key_columns``, cached."""
        key = canon_columns(key_columns)
        run = self._runs.get(key)
        if run is None:
            run = self._runs[key] = SortedRun(self, key)
        return run

    def evolved(self, added: "RelationCodes", removed: "RelationCodes") -> "RelationCodes":
        """Codes after a tuple delta (the maintenance fast path)."""
        out = codes_union(codes_difference(self.codes, removed.codes), added.codes)
        return RelationCodes(self.symbols, self.arity, out)


class SortedRun:
    """A relation sorted by key code: the kernel's join index.

    Probing is a pair of binary searches per distinct key (vectorised
    under numpy); the matching rows are the run's order slice.  This is
    the sorted-run intersection the ISSUE names: no per-tuple hashing,
    no bucket dicts, just position arithmetic over two sorted vectors.
    """

    __slots__ = (
        "relation",
        "key_columns",
        "sorted_keys",
        "order",
        "_buckets",
        "_distinct",
    )

    def __init__(self, relation: RelationCodes, key_columns: Tuple[int, ...]) -> None:
        self.relation = relation
        self.key_columns = key_columns
        self._distinct = None
        keys = relation.key_codes(key_columns)
        if _BACKEND == "numpy" and not isinstance(keys, array):
            order = _np.argsort(keys, kind="stable")
            self.order = order
            self.sorted_keys = keys[order]
            self._buckets = None
        else:
            pairs = sorted(range(len(keys)), key=keys.__getitem__)
            self.order = array("q", pairs)
            self.sorted_keys = array("q", [keys[i] for i in pairs])
            buckets: Dict[int, List[int]] = {}
            for pos, row in enumerate(pairs):
                buckets.setdefault(self.sorted_keys[pos], []).append(row)
            self._buckets = buckets

    def lookup_rows(self, key_code: int):
        """Row indices matching one key code (array backend)."""
        if self._buckets is not None:
            return self._buckets.get(key_code, ())
        left = int(_np.searchsorted(self.sorted_keys, key_code, side="left"))
        right = int(_np.searchsorted(self.sorted_keys, key_code, side="right"))
        return self.order[left:right]

    def distinct_keys(self):
        """The distinct key codes present (sorted), cached."""
        if self._distinct is None:
            if self._buckets is not None:
                self._distinct = as_codes(self._buckets.keys())
            else:
                self._distinct = dedup_sorted(self.sorted_keys)
        return self._distinct


# ----------------------------------------------------------------------
# Complements as range arithmetic over the interned universe
# ----------------------------------------------------------------------


def universe_ids(symbols: SymbolTable, universe: frozenset):
    """The sorted id vector of a universe, cached per generation."""
    cache = symbols.scratch()
    key = ("universe", universe)
    ids = cache.get(key)
    if ids is None:
        ids = as_codes(symbols.intern(v) for v in universe)
        # Interning may have widened the shift mid-build; re-read the
        # scratch cache afterwards so a stale dict is never populated.
        cache = symbols.scratch()
        cache[key] = ids
    return ids


def universe_product_codes(symbols: SymbolTable, universe: frozenset, k: int):
    """``A^k`` as mixed row codes, cached per (universe, k, generation).

    For a freshly interned database the universe ids are the contiguous
    range ``[0, |A|)`` and the product is pure range arithmetic — no
    tuple is ever materialised.
    """
    if k == 0:
        return as_codes((0,))
    ids = universe_ids(symbols, universe)
    if k == 1:
        return ids
    cache = symbols.scratch()
    key = ("product", universe, k)
    full = cache.get(key)
    if full is None:
        b = symbols.shift
        if isinstance(ids, CodeVector):
            vals = ids.data
            acc = vals
            for _ in range(k - 1):
                acc = array(
                    "q", [(a << b) | v for a in acc for v in vals]
                )
            full = CodeVector(acc)
        else:
            acc = ids
            for _ in range(k - 1):
                acc = (_np.repeat(acc << b, len(ids))
                       | _np.tile(ids, len(acc)))
            full = acc
        cache[key] = full
    return full


def complement_codes(symbols: SymbolTable, universe: frozenset, rel: RelationCodes):
    """``A^arity`` minus the relation, as codes (range arithmetic).

    Values the relation holds *outside* the universe simply never occur
    in the product, so the plain sorted difference is exact — mirroring
    the tuple path's semantics for out-of-universe constants.
    """
    full = universe_product_codes(symbols, universe, rel.arity)
    return codes_difference(full, rel.codes)


def semijoin_filter(rel: RelationCodes, key_columns, allowed: KeyMembership):
    """Rows of ``rel`` whose key code is in ``allowed`` (bitset filter).

    Returns a code vector of the surviving rows — the kernel face of
    the Yannakakis reduction step.
    """
    key = canon_columns(key_columns)
    keys = rel.key_codes(key)
    if isinstance(rel.codes, CodeVector):
        data = rel.codes.data
        kept = array("q", (data[i] for i in range(len(data)) if keys[i] in allowed))
        return CodeVector(kept)
    return rel.codes[allowed.mask(keys)]


def antijoin_codes(rel: RelationCodes, key_columns, excluded: "RelationCodes"):
    """Rows of ``rel`` with no key match in ``excluded`` (same columns)."""
    key = canon_columns(key_columns)
    keys = rel.key_codes(key)
    if isinstance(rel.codes, CodeVector):
        member = KeyMembership(as_codes(excluded.key_codes(key)))
        data = rel.codes.data
        kept = array(
            "q", (data[i] for i in range(len(data)) if keys[i] not in member)
        )
        return CodeVector(kept)
    excl = sorted_unique(_np.asarray(excluded.key_codes(key)))
    return rel.codes[~_sorted_isin(keys, excl)]


_DENSE_JOIN_LIMIT = 1 << 18
"""Largest key-code span the numpy join direct-addresses (two int64
tables of that span, ~2 MiB each, beat binary search comfortably)."""

_DENSE_JOIN_FLOOR = 1 << 12
"""Spans this small are always worth direct-addressing — the tables fit
in L1/L2 regardless of how few keys occupy them."""

_DENSE_JOIN_RATIO = 16
"""Above the floor, direct-address only while the span stays within
this factor of the distinct-key cardinality.  Interned ids are dense,
so well-used keys sit near ratio 1; a sparse-but-wide key set (packed
multi-column keys, or a join on a nearly-empty relation) would allocate
and zero a span-sized table to serve a handful of probes."""


def dense_join_eligible(span: int, cardinality: int) -> bool:
    """Whether ``join_codes`` may build span-sized start/count tables.

    ``span`` is ``max_key + 1`` over the build side's key codes and
    ``cardinality`` the number of *rows* on that side (an upper bound on
    distinct keys, which is all the guard needs).  Dense addressing pays
    off only when the tables stay small in absolute terms *and* are
    reasonably occupied — otherwise sorted-run probing wins.
    """
    if span <= _DENSE_JOIN_FLOOR:
        return True
    if span > _DENSE_JOIN_LIMIT:
        return False
    return span <= _DENSE_JOIN_RATIO * cardinality


def join_codes(left: RelationCodes, right: RelationCodes, on):
    """Matched row indices of an equi-join (kernel microbench op).

    ``on`` is ``[(left_col, right_col), ...]``; returns a pair of
    backend-native index vectors ``(left_rows, right_rows)`` — the
    engine's shape: no tuple is ever materialised, callers project
    whichever columns they need.  When the key codes span a dense range
    (the normal case — interned ids *are* dense), the numpy path joins
    by direct addressing into per-key start/count tables instead of one
    binary search per probe: the payoff of interning to dense ints.
    """
    lcols = canon_columns(c for c, _ in on)
    rcols = canon_columns(c for _, c in on)
    run = right.sorted_run(rcols)
    lkeys = left.key_codes(lcols)
    if isinstance(left.codes, CodeVector):
        li, ri = array("q"), array("q")
        for i in range(len(lkeys)):
            for j in run.lookup_rows(lkeys[i]):
                li.append(i)
                ri.append(j)
        return li, ri
    sk = run.sorted_keys
    empty = _np.empty(0, dtype=_np.int64)
    if len(sk) == 0 or len(lkeys) == 0:
        return empty, empty
    span = int(sk[-1]) + 1
    if dense_join_eligible(span, len(sk)):
        first = _np.empty(len(sk), dtype=bool)
        first[0] = True
        _np.not_equal(sk[1:], sk[:-1], out=first[1:])
        starts = _np.flatnonzero(first)
        lefts_t = _np.zeros(span, dtype=_np.int64)
        counts_t = _np.zeros(span, dtype=_np.int64)
        distinct = sk[starts]
        lefts_t[distinct] = starts
        counts_t[distinct] = _np.diff(starts, append=len(sk))
        # Probes above every right key clamp onto the last slot, whose
        # count they must not inherit — zero them explicitly.
        probe = _np.minimum(lkeys, span - 1)
        counts = _np.where(lkeys < span, counts_t[probe], 0)
        lefts = lefts_t[probe]
    else:
        lefts = sk.searchsorted(lkeys, side="left")
        counts = sk.searchsorted(lkeys, side="right") - lefts
    cum = counts.cumsum()
    total = int(cum[-1])
    if total == 0:
        return empty, empty
    rows = _np.arange(len(lkeys)).repeat(counts)
    pos = (lefts - (cum - counts)).repeat(counts) + _np.arange(total)
    return rows, run.order[pos]
