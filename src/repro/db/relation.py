"""Finite relations: the values DATALOG¬ programs map between.

A :class:`Relation` is an immutable finite set of equal-length tuples over an
arbitrary hashable value domain, together with a name and an arity.  Relations
are the carriers of both database (EDB) and nondatabase (IDB) predicates in
the paper's Section 2 formalism: the operator Theta of a program maps
sequences of relations to sequences of relations of the same arities.

Relations compare by *value* (name, arity and tuple set), so a fixpoint check
``theta(s) == s`` is a plain equality test.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Tuple

Tup = Tuple[Any, ...]


class Relation:
    """An immutable named finite relation of fixed arity.

    Parameters
    ----------
    name:
        The relational symbol, e.g. ``"E"``.
    arity:
        Number of columns.  Zero-ary relations are allowed (they behave as
        booleans: either empty or containing the empty tuple).
    tuples:
        Iterable of tuples, each of length ``arity``.

    Raises
    ------
    ValueError
        If some tuple's length differs from ``arity``.
    """

    __slots__ = (
        "name",
        "arity",
        "_tuples",
        "_hash",
        "_index_cache",
        "_complement_cache",
        "_keyed_complement_cache",
    )

    def __init__(self, name: str, arity: int, tuples: Iterable[Tup] = ()) -> None:
        if arity < 0:
            raise ValueError("arity must be non-negative, got %d" % arity)
        frozen = frozenset(tuple(t) for t in tuples)
        for t in frozen:
            if len(t) != arity:
                raise ValueError(
                    "tuple %r has length %d, expected arity %d for relation %s"
                    % (t, len(t), arity, name)
                )
        self.name = name
        self.arity = arity
        self._tuples = frozen
        self._hash = hash((name, arity, frozen))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def _from_frozenset(cls, name: str, arity: int, frozen: frozenset) -> "Relation":
        """Internal fast path: adopt an already-validated frozenset.

        Set operations on ``_tuples`` (union/difference/evolve) produce
        frozensets whose members are known-good tuples of the right
        arity; re-freezing and re-validating them through ``__init__``
        is the dominant cost of evolving big relations, so the derived
        constructors skip it.
        """
        self = object.__new__(cls)
        self.name = name
        self.arity = arity
        self._tuples = frozen
        self._hash = hash((name, arity, frozen))
        return self

    @classmethod
    def empty(cls, name: str, arity: int) -> "Relation":
        """Return the empty relation with the given signature."""
        return cls(name, arity, ())

    @classmethod
    def full(cls, name: str, arity: int, universe: Iterable[Any]) -> "Relation":
        """Return the full relation ``universe ** arity``.

        This is the relation ``A^n`` used by the paper's toggle gadget
        ("Q must be equal to A^n or else T would not be a fixpoint").
        """
        from itertools import product

        return cls(name, arity, product(tuple(universe), repeat=arity))

    # ------------------------------------------------------------------
    # Set-like protocol
    # ------------------------------------------------------------------

    @property
    def tuples(self) -> frozenset:
        """The underlying frozenset of tuples."""
        return self._tuples

    def index_on(self, columns) -> "HashIndex":
        """A hash index on the given key columns, cached on this relation.

        Because relations are immutable, an index built once is valid for
        the relation's whole lifetime; the cache (keyed by the column
        tuple) lets every fixpoint round after the first reuse the indexes
        of unchanged relations instead of rebuilding them.  Relations
        derived by ``union``/``difference``/:meth:`evolve` *inherit*
        their parent's materialised caches, patched with the tuple delta
        (:meth:`_inherit_caches`), so they rarely build here at all.
        """
        from .index import HashIndex

        cols = tuple(columns)
        try:
            cache = self._index_cache
        except AttributeError:
            cache = {}
            self._index_cache = cache
        index = cache.get(cols)
        if index is None:
            index = cache[cols] = HashIndex(self, cols)
        return index

    def _inherit_caches(self, parent: "Relation", added: frozenset, removed: frozenset) -> "Relation":
        """Patch ``parent``'s materialised caches into this relation.

        Called once, eagerly, by the derived constructors
        (``union``/``difference``/:meth:`evolve`): every index,
        complement and keyed complement the parent actually materialised
        is carried forward by patching it with the tuple delta —
        ``O(|delta| + #buckets)`` per structure instead of a rescan of
        the whole relation.  Eager transfer keeps no reference to the
        parent, so long update streams (a materialized view's lifetime)
        retain only the newest generation's caches — laziness here would
        mean an unbounded parent chain.
        """
        from .index import HashIndex

        parent_indexes = getattr(parent, "_index_cache", None)
        if parent_indexes:
            self._index_cache = {
                cols: HashIndex.patched(index, added, removed)
                for cols, index in parent_indexes.items()
            }
        parent_comps = getattr(parent, "_complement_cache", None)
        if parent_comps:
            from .algebra import universe_product

            cache = {}
            for universe, comp in parent_comps.items():
                # Tuples added here leave the complement; tuples removed
                # re-enter it (when they lie inside universe**arity at
                # all — relations may hold out-of-universe values).
                full = universe_product(universe, self.arity)
                cache[universe] = comp.evolve(removed & full, added)
            self._complement_cache = cache
        parent_keyed = getattr(parent, "_keyed_complement_cache", None)
        if parent_keyed:
            self._keyed_complement_cache = {
                key: keyed.derived(self, added, removed)
                for key, keyed in parent_keyed.items()
            }
        return self

    def complement_on(self, universe) -> "Relation":
        """The complement ``universe**arity - self``, cached on this relation.

        This is the *complement representation* of a negated literal whose
        variables are all completed over the universe: instead of
        enumerating ``|A|^arity`` candidate tuples and filtering each one,
        the batch executor joins directly against this relation.  Like
        :meth:`index_on`, the cache is sound because relations are
        immutable; it is keyed by the universe so the same relation value
        can serve databases with different universes.
        """
        from .algebra import universe_product

        key = universe if isinstance(universe, frozenset) else frozenset(universe)
        try:
            cache = self._complement_cache
        except AttributeError:
            cache = {}
            self._complement_cache = cache
        comp = cache.get(key)
        if comp is None:
            full = universe_product(key, self.arity)  # cached per (universe, arity)
            comp = cache[key] = Relation("!" + self.name, self.arity, full - self._tuples)
        return comp

    def keyed_complement_on(self, universe, bound_columns, free_positions) -> "KeyedComplement":
        """Per-key allowed-sets for a keyed negated completion, cached.

        For a :class:`~repro.core.planning.plan.ComplementJoin` with bound
        columns, the executor needs, per distinct key, the set
        ``universe**k`` minus the key's matched projections.  The returned
        :class:`~repro.db.index.KeyedComplement` memoises those allowed-sets
        lazily; because it is cached on the relation it survives across
        fixpoint rounds, and when this relation evolved from a parent
        (:meth:`union` / :meth:`difference` / :meth:`evolve`) the parent's
        allowed-sets are *patched* with the touched keys' tuples rather
        than recomputed — the ROADMAP's delta-aware keyed complement.
        """
        from .index import KeyedComplement

        uni = universe if isinstance(universe, frozenset) else frozenset(universe)
        cache_key = (uni, tuple(bound_columns), tuple(free_positions))
        try:
            cache = self._keyed_complement_cache
        except AttributeError:
            cache = {}
            self._keyed_complement_cache = cache
        keyed = cache.get(cache_key)
        if keyed is None:
            keyed = cache[cache_key] = KeyedComplement(
                self, uni, tuple(bound_columns), tuple(free_positions)
            )
        return keyed

    def __contains__(self, item: Tup) -> bool:
        return tuple(item) in self._tuples

    def __iter__(self) -> Iterator[Tup]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __bool__(self) -> bool:
        return bool(self._tuples)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.name == other.name
            and self.arity == other.arity
            and self._tuples == other._tuples
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        shown = sorted(self._tuples, key=repr)[:8]
        suffix = ", ..." if len(self._tuples) > 8 else ""
        inner = ", ".join(repr(t) for t in shown)
        return "Relation(%s/%d, {%s%s})" % (self.name, self.arity, inner, suffix)

    # ------------------------------------------------------------------
    # Value operations (all return new relations, preserving the name)
    # ------------------------------------------------------------------

    def with_name(self, name: str) -> "Relation":
        """Return the same relation under a different symbol.

        Returns ``self`` when the name already matches, so round-to-round
        renames of unchanged relations keep their cached indexes.
        """
        if name == self.name:
            return self
        return Relation._from_frozenset(name, self.arity, self._tuples)

    def with_tuples(self, tuples: Iterable[Tup]) -> "Relation":
        """Return a relation with this signature but the given tuples."""
        return Relation(self.name, self.arity, tuples)

    def evolve(self, inserts: Iterable[Tup] = (), deletes: Iterable[Tup] = ()) -> "Relation":
        """Return ``(self - deletes) | inserts``, caches carried forward.

        This is the delta-update face of the value operations: the
        result inherits this relation's materialised indexes,
        complements and keyed complements, patched with the effective
        changes (:meth:`_inherit_caches`).  Tuples on either side that
        do not match the arity raise; no-op deltas return ``self`` with
        every cache intact.
        """
        arity = self.arity

        def checked(tuples: Iterable[Tup]) -> frozenset:
            if not isinstance(tuples, frozenset):
                tuples = frozenset(tuple(t) for t in tuples)
            for t in tuples:
                if type(t) is not tuple or len(t) != arity:
                    raise ValueError(
                        "tuple %r does not have arity %d for relation %s"
                        % (t, arity, self.name)
                    )
            return tuples

        ins = checked(inserts) - self._tuples
        dels = checked(deletes) & self._tuples
        if not ins and not dels:
            return self
        out = Relation._from_frozenset(
            self.name, arity, (self._tuples - dels) | ins
        )
        return out._inherit_caches(self, ins, dels)

    def add(self, *tuples: Tup) -> "Relation":
        """Return this relation extended with the given tuples."""
        return Relation(self.name, self.arity, self._tuples.union(tuples))

    def union(self, other: "Relation") -> "Relation":
        """Set union; the operand must have the same arity.

        Returns ``self`` unchanged when the operand adds nothing, so a
        converged IDB relation keeps its cached indexes across the
        remaining fixpoint rounds.
        """
        self._check_compatible(other, "union")
        if not other._tuples or other._tuples <= self._tuples:
            return self
        out = Relation._from_frozenset(
            self.name, self.arity, self._tuples | other._tuples
        )
        return out._inherit_caches(self, other._tuples - self._tuples, frozenset())

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection; the operand must have the same arity."""
        self._check_compatible(other, "intersection")
        return Relation(self.name, self.arity, self._tuples & other._tuples)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference; the operand must have the same arity.

        Returns ``self`` unchanged (cached indexes intact) when the
        operand removes nothing.
        """
        self._check_compatible(other, "difference")
        if not other._tuples or self._tuples.isdisjoint(other._tuples):
            return self
        out = Relation._from_frozenset(
            self.name, self.arity, self._tuples - other._tuples
        )
        return out._inherit_caches(self, frozenset(), self._tuples & other._tuples)

    def complement(self, universe: Iterable[Any]) -> "Relation":
        """Return ``universe**arity`` minus this relation."""
        full = Relation.full(self.name, self.arity, universe)
        return full.difference(self)

    def issubset(self, other: "Relation") -> bool:
        """True when every tuple of this relation is in ``other``."""
        self._check_compatible(other, "issubset")
        return self._tuples <= other._tuples

    def filter(self, predicate: Callable[[Tup], bool]) -> "Relation":
        """Return the sub-relation of tuples satisfying ``predicate``."""
        return Relation(self.name, self.arity, (t for t in self._tuples if predicate(t)))

    def _check_compatible(self, other: "Relation", op: str) -> None:
        if self.arity != other.arity:
            raise ValueError(
                "%s between arity %d (%s) and arity %d (%s)"
                % (op, self.arity, self.name, other.arity, other.name)
            )
