"""Finite relations: the values DATALOG¬ programs map between.

A :class:`Relation` is an immutable finite set of equal-length tuples over an
arbitrary hashable value domain, together with a name and an arity.  Relations
are the carriers of both database (EDB) and nondatabase (IDB) predicates in
the paper's Section 2 formalism: the operator Theta of a program maps
sequences of relations to sequences of relations of the same arities.

Relations compare by *value* (name, arity and tuple set), so a fixpoint check
``theta(s) == s`` is a plain equality test.

Since the interned columnar kernel (:mod:`repro.db.kernel`) a relation has
*two* representations it moves between lazily:

* the **row form** — the frozenset of Python tuples this docstring
  describes, still the canonical value for equality, hashing and every
  consumer that iterates tuples;
* the **columnar form** — a :class:`~repro.db.kernel.RelationCodes`:
  one sorted int64 row-code vector under a database's
  :class:`~repro.db.kernel.SymbolTable`, cached per table via
  :meth:`codes_on`.

A relation built by the columnar executor (:meth:`_from_codes`) does not
materialise its frozenset until someone actually asks for tuples; set
operations and comparisons between two code-backed relations under the
same symbol table run on the int vectors directly, so a whole fixpoint
can converge without ever re-constructing a Python tuple.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Tuple

Tup = Tuple[Any, ...]


class Relation:
    """An immutable named finite relation of fixed arity.

    Parameters
    ----------
    name:
        The relational symbol, e.g. ``"E"``.
    arity:
        Number of columns.  Zero-ary relations are allowed (they behave as
        booleans: either empty or containing the empty tuple).
    tuples:
        Iterable of tuples, each of length ``arity``.

    Raises
    ------
    ValueError
        If some tuple's length differs from ``arity``.
    """

    __slots__ = (
        "name",
        "arity",
        "_tuples",
        "_hash",
        "_kernel_cache",
        "_index_cache",
        "_complement_cache",
        "_keyed_complement_cache",
    )

    def __init__(self, name: str, arity: int, tuples: Iterable[Tup] = ()) -> None:
        if arity < 0:
            raise ValueError("arity must be non-negative, got %d" % arity)
        frozen = frozenset(tuple(t) for t in tuples)
        for t in frozen:
            if len(t) != arity:
                raise ValueError(
                    "tuple %r has length %d, expected arity %d for relation %s"
                    % (t, len(t), arity, name)
                )
        self.name = name
        self.arity = arity
        self._tuples = frozen
        self._hash = None
        self._kernel_cache = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def _from_frozenset(cls, name: str, arity: int, frozen: frozenset) -> "Relation":
        """Internal fast path: adopt an already-validated frozenset.

        Set operations on tuple sets (union/difference/evolve) produce
        frozensets whose members are known-good tuples of the right
        arity; re-freezing and re-validating them through ``__init__``
        is the dominant cost of evolving big relations, so the derived
        constructors skip it.
        """
        self = object.__new__(cls)
        self.name = name
        self.arity = arity
        self._tuples = frozen
        self._hash = None
        self._kernel_cache = None
        return self

    @classmethod
    def _from_codes(cls, name: str, arity: int, codes) -> "Relation":
        """Internal fast path: adopt a columnar payload, rows deferred.

        ``codes`` is a :class:`~repro.db.kernel.RelationCodes` whose
        vector *is* the tuple set; the frozenset is only decoded
        (:attr:`tuples`) when a consumer genuinely needs Python tuples.
        Comparisons, sizes and set algebra against other code-backed
        relations under the same symbol table never do.
        """
        self = object.__new__(cls)
        self.name = name
        self.arity = arity
        self._tuples = None
        self._hash = None
        self._kernel_cache = {id(codes.symbols): codes}
        return self

    @classmethod
    def empty(cls, name: str, arity: int) -> "Relation":
        """Return the empty relation with the given signature."""
        return cls(name, arity, ())

    @classmethod
    def full(cls, name: str, arity: int, universe: Iterable[Any]) -> "Relation":
        """Return the full relation ``universe ** arity``.

        This is the relation ``A^n`` used by the paper's toggle gadget
        ("Q must be equal to A^n or else T would not be a fixpoint").
        """
        from itertools import product

        return cls(name, arity, product(tuple(universe), repeat=arity))

    # ------------------------------------------------------------------
    # Columnar form
    # ------------------------------------------------------------------

    def codes_on(self, symbols):
        """This relation as row codes under ``symbols``, cached.

        Returns the cached :class:`~repro.db.kernel.RelationCodes` when
        one is already held for this symbol table (and its field width
        has not widened since), else encodes once and caches.  Returns
        ``None`` when the arity cannot pack into a 64-bit code under the
        table's current width — callers fall back to the row form.
        """
        cache = self._kernel_cache
        if cache is None:
            cache = self._kernel_cache = {}
        rc = cache.get(id(symbols))
        if rc is not None and rc.symbols is symbols and rc.valid():
            return rc
        if not symbols.fits(self.arity):
            return None
        from .kernel import RelationCodes

        rc = RelationCodes.encode(symbols, self.arity, self.tuples)
        if not symbols.fits(self.arity):
            return None  # encoding widened the field width past 64 bits
        cache[id(symbols)] = rc
        return rc

    def _any_codes(self):
        """Any held codes payload (possibly of a widened generation)."""
        cache = self._kernel_cache
        if cache:
            for rc in cache.values():
                return rc
        return None

    def _codes_pair(self, other: "Relation"):
        """Both relations' codes under a shared table, if already held.

        Only consults payloads that are *already* cached on both sides —
        this is a fast-path probe, never a reason to encode — and only
        under the same symbol table at the same field width, so equal
        code vectors mean equal tuple sets.
        """
        mine = self._kernel_cache
        theirs = other._kernel_cache
        if not mine or not theirs:
            return None
        for key, rc in mine.items():
            oc = theirs.get(key)
            if (
                oc is not None
                and oc.symbols is rc.symbols
                and rc.shift == oc.shift
            ):
                return rc, oc
        return None

    # ------------------------------------------------------------------
    # Set-like protocol
    # ------------------------------------------------------------------

    @property
    def tuples(self) -> frozenset:
        """The underlying frozenset of tuples (decoded on first use)."""
        frozen = self._tuples
        if frozen is None:
            frozen = self._any_codes().decode()
            self._tuples = frozen
        return frozen

    def index_on(self, columns) -> "HashIndex":
        """A hash index on the given key columns, cached on this relation.

        Because relations are immutable, an index built once is valid for
        the relation's whole lifetime; the cache (keyed by the column
        tuple, normalised once at this boundary via
        :func:`~repro.db.kernel.canon_columns`) lets every fixpoint round
        after the first reuse the indexes of unchanged relations instead
        of rebuilding them.  Relations derived by
        ``union``/``difference``/:meth:`evolve` *inherit* their parent's
        materialised caches, patched with the tuple delta
        (:meth:`_inherit_caches`), so they rarely build here at all.
        """
        from .index import HashIndex
        from .kernel import canon_columns

        cols = canon_columns(columns)
        try:
            cache = self._index_cache
        except AttributeError:
            cache = {}
            self._index_cache = cache
        index = cache.get(cols)
        if index is None:
            index = cache[cols] = HashIndex(self, cols)
        return index

    def _inherit_caches(self, parent: "Relation", added: frozenset, removed: frozenset) -> "Relation":
        """Patch ``parent``'s materialised caches into this relation.

        Called once, eagerly, by the derived constructors
        (``union``/``difference``/:meth:`evolve`): every index,
        complement, keyed complement *and columnar payload* the parent
        actually materialised is carried forward by patching it with the
        tuple delta — ``O(|delta| + #buckets)`` per structure instead of
        a rescan of the whole relation.  Eager transfer keeps no
        reference to the parent, so long update streams (a materialized
        view's lifetime) retain only the newest generation's caches —
        laziness here would mean an unbounded parent chain.
        """
        from .index import HashIndex

        parent_indexes = getattr(parent, "_index_cache", None)
        if parent_indexes:
            self._index_cache = {
                cols: HashIndex.patched(index, added, removed)
                for cols, index in parent_indexes.items()
            }
        parent_comps = getattr(parent, "_complement_cache", None)
        if parent_comps:
            from .algebra import universe_product

            cache = {}
            for universe, comp in parent_comps.items():
                # Tuples added here leave the complement; tuples removed
                # re-enter it (when they lie inside universe**arity at
                # all — relations may hold out-of-universe values).
                full = universe_product(universe, self.arity)
                cache[universe] = comp.evolve(removed & full, added)
            self._complement_cache = cache
        parent_keyed = getattr(parent, "_keyed_complement_cache", None)
        if parent_keyed:
            self._keyed_complement_cache = {
                key: keyed.derived(self, added, removed)
                for key, keyed in parent_keyed.items()
            }
        parent_kernel = parent._kernel_cache
        if parent_kernel:
            from .kernel import RelationCodes

            patched = {}
            for key, rc in parent_kernel.items():
                if not rc.valid():
                    continue
                sym = rc.symbols
                add_rc = RelationCodes.encode(sym, self.arity, added)
                rem_rc = RelationCodes.encode(sym, self.arity, removed)
                if not rc.valid():
                    continue  # the delta's fresh values widened the width
                patched[key] = rc.evolved(add_rc, rem_rc)
            if patched:
                if self._kernel_cache:
                    self._kernel_cache.update(patched)
                else:
                    self._kernel_cache = patched
        return self

    def complement_on(self, universe) -> "Relation":
        """The complement ``universe**arity - self``, cached on this relation.

        This is the *complement representation* of a negated literal whose
        variables are all completed over the universe: instead of
        enumerating ``|A|^arity`` candidate tuples and filtering each one,
        the batch executor joins directly against this relation.  Like
        :meth:`index_on`, the cache is sound because relations are
        immutable; it is keyed by the universe so the same relation value
        can serve databases with different universes.
        """
        from .algebra import universe_product

        key = universe if isinstance(universe, frozenset) else frozenset(universe)
        try:
            cache = self._complement_cache
        except AttributeError:
            cache = {}
            self._complement_cache = cache
        comp = cache.get(key)
        if comp is None:
            full = universe_product(key, self.arity)  # cached per (universe, arity)
            comp = cache[key] = Relation("!" + self.name, self.arity, full - self.tuples)
        return comp

    def keyed_complement_on(self, universe, bound_columns, free_positions) -> "KeyedComplement":
        """Per-key allowed-sets for a keyed negated completion, cached.

        For a :class:`~repro.core.planning.plan.ComplementJoin` with bound
        columns, the executor needs, per distinct key, the set
        ``universe**k`` minus the key's matched projections.  The returned
        :class:`~repro.db.index.KeyedComplement` memoises those allowed-sets
        lazily; because it is cached on the relation it survives across
        fixpoint rounds, and when this relation evolved from a parent
        (:meth:`union` / :meth:`difference` / :meth:`evolve`) the parent's
        allowed-sets are *patched* with the touched keys' tuples rather
        than recomputed — the ROADMAP's delta-aware keyed complement.
        """
        from .index import KeyedComplement
        from .kernel import canon_columns

        uni = universe if isinstance(universe, frozenset) else frozenset(universe)
        cache_key = (uni, canon_columns(bound_columns), canon_columns(free_positions))
        try:
            cache = self._keyed_complement_cache
        except AttributeError:
            cache = {}
            self._keyed_complement_cache = cache
        keyed = cache.get(cache_key)
        if keyed is None:
            keyed = cache[cache_key] = KeyedComplement(
                self, uni, cache_key[1], cache_key[2]
            )
        return keyed

    def __contains__(self, item: Tup) -> bool:
        if self._tuples is None:
            return self._any_codes().contains_tuple(tuple(item))
        return tuple(item) in self._tuples

    def __iter__(self) -> Iterator[Tup]:
        return iter(self.tuples)

    def __len__(self) -> int:
        if self._tuples is None:
            return len(self._any_codes())
        return len(self._tuples)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        if self.name != other.name or self.arity != other.arity:
            return False
        pair = self._codes_pair(other)
        if pair is not None:
            from .kernel import codes_equal

            return codes_equal(pair[0].codes, pair[1].codes)
        return self.tuples == other.tuples

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = self._hash = hash((self.name, self.arity, self.tuples))
        return h

    def __repr__(self) -> str:
        shown = sorted(self.tuples, key=repr)[:8]
        suffix = ", ..." if len(self.tuples) > 8 else ""
        inner = ", ".join(repr(t) for t in shown)
        return "Relation(%s/%d, {%s%s})" % (self.name, self.arity, inner, suffix)

    # ------------------------------------------------------------------
    # Value operations (all return new relations, preserving the name)
    # ------------------------------------------------------------------

    def with_name(self, name: str) -> "Relation":
        """Return the same relation under a different symbol.

        Returns ``self`` when the name already matches, so round-to-round
        renames of unchanged relations keep their cached indexes.  A
        code-backed relation renames without decoding — the payload is
        shared (codes carry no name).
        """
        if name == self.name:
            return self
        if self._tuples is None:
            out = Relation._from_codes(name, self.arity, self._any_codes())
            out._kernel_cache = dict(self._kernel_cache)
            return out
        out = Relation._from_frozenset(name, self.arity, self._tuples)
        if self._kernel_cache:
            out._kernel_cache = dict(self._kernel_cache)
        return out

    def with_tuples(self, tuples: Iterable[Tup]) -> "Relation":
        """Return a relation with this signature but the given tuples."""
        return Relation(self.name, self.arity, tuples)

    def evolve(self, inserts: Iterable[Tup] = (), deletes: Iterable[Tup] = ()) -> "Relation":
        """Return ``(self - deletes) | inserts``, caches carried forward.

        This is the delta-update face of the value operations: the
        result inherits this relation's materialised indexes,
        complements, keyed complements and columnar payloads, patched
        with the effective changes (:meth:`_inherit_caches`) — deltas
        flow into the interned columns without a re-encode.  Tuples on
        either side that do not match the arity raise; no-op deltas
        return ``self`` with every cache intact.
        """
        arity = self.arity

        def checked(tuples: Iterable[Tup]) -> frozenset:
            if not isinstance(tuples, frozenset):
                tuples = frozenset(tuple(t) for t in tuples)
            for t in tuples:
                if type(t) is not tuple or len(t) != arity:
                    raise ValueError(
                        "tuple %r does not have arity %d for relation %s"
                        % (t, arity, self.name)
                    )
            return tuples

        ins = checked(inserts) - self.tuples
        dels = checked(deletes) & self.tuples
        if not ins and not dels:
            return self
        out = Relation._from_frozenset(
            self.name, arity, (self.tuples - dels) | ins
        )
        return out._inherit_caches(self, ins, dels)

    def add(self, *tuples: Tup) -> "Relation":
        """Return this relation extended with the given tuples."""
        return Relation(self.name, self.arity, self.tuples.union(tuples))

    def union(self, other: "Relation") -> "Relation":
        """Set union; the operand must have the same arity.

        Returns ``self`` unchanged when the operand adds nothing, so a
        converged IDB relation keeps its cached indexes across the
        remaining fixpoint rounds.  When both operands are code-backed
        under the same symbol table the union runs on the int vectors.
        """
        self._check_compatible(other, "union")
        pair = self._codes_pair(other)
        if pair is not None and self._row_caches_empty():
            from .kernel import codes_union

            mine, theirs = pair
            merged = codes_union(mine.codes, theirs.codes)
            if merged is mine.codes:
                return self
            from .kernel import RelationCodes

            return Relation._from_codes(
                self.name, self.arity, RelationCodes(mine.symbols, self.arity, merged)
            )
        if not other.tuples or other.tuples <= self.tuples:
            return self
        out = Relation._from_frozenset(
            self.name, self.arity, self.tuples | other.tuples
        )
        return out._inherit_caches(self, other.tuples - self.tuples, frozenset())

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection; the operand must have the same arity."""
        self._check_compatible(other, "intersection")
        pair = self._codes_pair(other)
        if pair is not None:
            from .kernel import RelationCodes, codes_intersection

            mine, theirs = pair
            return Relation._from_codes(
                self.name,
                self.arity,
                RelationCodes(
                    mine.symbols, self.arity, codes_intersection(mine.codes, theirs.codes)
                ),
            )
        return Relation(self.name, self.arity, self.tuples & other.tuples)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference; the operand must have the same arity.

        Returns ``self`` unchanged (cached indexes intact) when the
        operand removes nothing.
        """
        self._check_compatible(other, "difference")
        pair = self._codes_pair(other)
        if pair is not None and self._row_caches_empty():
            from .kernel import RelationCodes, codes_difference

            mine, theirs = pair
            kept = codes_difference(mine.codes, theirs.codes)
            if kept is mine.codes:
                return self
            return Relation._from_codes(
                self.name, self.arity, RelationCodes(mine.symbols, self.arity, kept)
            )
        if not other.tuples or self.tuples.isdisjoint(other.tuples):
            return self
        out = Relation._from_frozenset(
            self.name, self.arity, self.tuples - other.tuples
        )
        return out._inherit_caches(self, frozenset(), self.tuples & other.tuples)

    def _row_caches_empty(self) -> bool:
        """Whether no row-form cache would be orphaned by a codes result.

        The codes fast paths return relations that have *only* a
        columnar payload; taking them when this relation holds
        materialised indexes/complements would silently drop structures
        a row-path consumer is about to need again, so those cases use
        the inheriting tuple path instead.
        """
        return (
            getattr(self, "_index_cache", None) is None
            and getattr(self, "_complement_cache", None) is None
            and getattr(self, "_keyed_complement_cache", None) is None
        )

    def complement(self, universe: Iterable[Any]) -> "Relation":
        """Return ``universe**arity`` minus this relation."""
        full = Relation.full(self.name, self.arity, universe)
        return full.difference(self)

    def issubset(self, other: "Relation") -> bool:
        """True when every tuple of this relation is in ``other``."""
        self._check_compatible(other, "issubset")
        pair = self._codes_pair(other)
        if pair is not None:
            from .kernel import codes_issubset

            return codes_issubset(pair[0].codes, pair[1].codes)
        return self.tuples <= other.tuples

    def filter(self, predicate: Callable[[Tup], bool]) -> "Relation":
        """Return the sub-relation of tuples satisfying ``predicate``."""
        return Relation(self.name, self.arity, (t for t in self.tuples if predicate(t)))

    def _check_compatible(self, other: "Relation", op: str) -> None:
        if self.arity != other.arity:
            raise ValueError(
                "%s between arity %d (%s) and arity %d (%s)"
                % (op, self.arity, self.name, other.arity, other.name)
            )
