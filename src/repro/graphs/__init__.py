"""Graph substrate: a tiny digraph type, generators, exact algorithms."""

from .digraph import Digraph
from .encode import database_to_graph, graph_to_database

__all__ = ["Digraph", "database_to_graph", "graph_to_database"]
