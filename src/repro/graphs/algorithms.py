"""Exact graph algorithms used as ground truth in tests and experiments.

Everything here is deliberately simple and obviously correct — BFS, brute
force, backtracking — because these answers validate the Datalog engines
and the SAT-backed fixpoint analysis (e.g. ``#fixpoints of pi_COL ==
#proper 3-colorings``).
"""

from __future__ import annotations

from collections import deque
from itertools import permutations
from typing import Any, Dict, FrozenSet, List, Set, Tuple

from .digraph import Digraph

INFINITY = float("inf")


def bfs_distances(graph: Digraph, source: Any) -> Dict[Any, int]:
    """Shortest path lengths (#edges, >= 1) from ``source``.

    Follows the paper's transitive-closure convention: a node reaches
    itself only through an actual cycle, so ``source`` appears in the
    result only if it lies on one.
    """
    succ: Dict[Any, List[Any]] = {}
    for u, v in graph.edges:
        succ.setdefault(u, []).append(v)
    dist: Dict[Any, int] = {}
    queue = deque((v, 1) for v in succ.get(source, ()))
    while queue:
        node, d = queue.popleft()
        if node in dist:
            continue
        dist[node] = d
        for nxt in succ.get(node, ()):
            if nxt not in dist:
                queue.append((nxt, d + 1))
    return dist


def distance(graph: Digraph, u: Any, v: Any) -> float:
    """Shortest path length from ``u`` to ``v`` (>= 1), or ``inf``."""
    return bfs_distances(graph, u).get(v, INFINITY)


def transitive_closure(graph: Digraph) -> FrozenSet[Tuple[Any, Any]]:
    """All pairs ``(u, v)`` with a path of length >= 1 from ``u`` to ``v``."""
    out: Set[Tuple[Any, Any]] = set()
    for u in graph.nodes:
        for v in bfs_distances(graph, u):
            out.add((u, v))
    return frozenset(out)


def distance_query(graph: Digraph) -> FrozenSet[Tuple[Any, Any, Any, Any]]:
    """The paper's distance query ``D(x, y, x*, y*)`` (Proposition 2).

    *"Is there a path from x to y that is shorter than or equal to any path
    from x* to y*?"* — yes whenever ``dist(x, y) <= dist(x*, y*)``, with
    the understanding that the answer is yes when x reaches y but x* does
    not reach y*.
    """
    dist: Dict[Any, Dict[Any, int]] = {
        u: bfs_distances(graph, u) for u in graph.nodes
    }
    nodes = sorted(graph.nodes, key=repr)
    out = set()
    for x in nodes:
        for y in nodes:
            dxy = dist[x].get(y, INFINITY)
            if dxy is INFINITY:
                continue
            for xs in nodes:
                for ys in nodes:
                    if dxy <= dist[xs].get(ys, INFINITY):
                        out.add((x, y, xs, ys))
    return frozenset(out)


# ----------------------------------------------------------------------
# 3-coloring (ground truth for pi_COL / Lemma 1)
# ----------------------------------------------------------------------


def enumerate_3colorings(graph: Digraph) -> List[Dict[Any, str]]:
    """All proper 3-colorings (colors ``"R" | "B" | "G"``), by backtracking.

    Proper: no *undirected* edge joins two nodes of the same color, every
    node gets exactly one color — matching the constraints the rules of
    ``pi_COL`` enforce.
    """
    nodes = sorted(graph.nodes, key=repr)
    adjacency: Dict[Any, Set[Any]] = {n: set() for n in nodes}
    for pair in graph.undirected_edges():
        u, v = tuple(pair)
        adjacency[u].add(v)
        adjacency[v].add(u)

    colorings: List[Dict[Any, str]] = []
    assignment: Dict[Any, str] = {}

    def backtrack(i: int) -> None:
        if i == len(nodes):
            colorings.append(dict(assignment))
            return
        node = nodes[i]
        for color in ("R", "B", "G"):
            if any(assignment.get(nb) == color for nb in adjacency[node]):
                continue
            assignment[node] = color
            backtrack(i + 1)
            del assignment[node]

    backtrack(0)
    return colorings


def count_3colorings(graph: Digraph) -> int:
    """Number of proper 3-colorings (counting color labels as distinct)."""
    return len(enumerate_3colorings(graph))


def is_3colorable(graph: Digraph) -> bool:
    """Whether any proper 3-coloring exists."""
    nodes = sorted(graph.nodes, key=repr)
    adjacency: Dict[Any, Set[Any]] = {n: set() for n in nodes}
    for pair in graph.undirected_edges():
        u, v = tuple(pair)
        adjacency[u].add(v)
        adjacency[v].add(u)

    assignment: Dict[Any, str] = {}

    def backtrack(i: int) -> bool:
        if i == len(nodes):
            return True
        node = nodes[i]
        for color in ("R", "B", "G"):
            if any(assignment.get(nb) == color for nb in adjacency[node]):
                continue
            assignment[node] = color
            if backtrack(i + 1):
                return True
            del assignment[node]
        return False

    return backtrack(0)


# ----------------------------------------------------------------------
# Hamilton circuits (the paper's "typical member of US")
# ----------------------------------------------------------------------


def hamilton_circuits(graph: Digraph) -> List[Tuple[Any, ...]]:
    """All directed Hamilton circuits, canonicalised to start at the
    smallest node (so each circuit is counted once)."""
    nodes = sorted(graph.nodes, key=repr)
    if not nodes:
        return []
    if len(nodes) == 1:
        start = nodes[0]
        return [(start,)] if (start, start) in graph.edges else []
    start = nodes[0]
    rest = nodes[1:]
    circuits = []
    for perm in permutations(rest):
        tour = (start,) + perm
        ok = all(
            (tour[i], tour[(i + 1) % len(tour)]) in graph.edges
            for i in range(len(tour))
        )
        if ok:
            circuits.append(tour)
    return circuits


def has_unique_hamilton_circuit(graph: Digraph) -> bool:
    """Exactly one Hamilton circuit — the paper's example of a US problem."""
    return len(hamilton_circuits(graph)) == 1
