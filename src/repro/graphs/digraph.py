"""A minimal directed-graph value type used by generators and encodings.

The paper's examples live on directed graphs (paths ``L_n``, cycles ``C_n``,
disjoint unions ``G_n``); this class is deliberately tiny — generators build
them, :mod:`repro.graphs.encode` turns them into databases with a binary
``E`` relation, and :mod:`repro.graphs.algorithms` provides the exact
solvers used as ground truth in experiments.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable, Tuple

Edge = Tuple[Any, Any]


class Digraph:
    """An immutable directed graph (loops allowed, no multi-edges)."""

    __slots__ = ("nodes", "edges")

    def __init__(self, nodes: Iterable[Any], edges: Iterable[Edge] = ()) -> None:
        self.nodes: FrozenSet[Any] = frozenset(nodes)
        edge_set = frozenset((u, v) for u, v in edges)
        for u, v in edge_set:
            if u not in self.nodes or v not in self.nodes:
                raise ValueError("edge (%r, %r) uses an unknown node" % (u, v))
        self.edges: FrozenSet[Edge] = edge_set

    def successors(self, node: Any) -> FrozenSet[Any]:
        """Out-neighbours of ``node``."""
        return frozenset(v for u, v in self.edges if u == node)

    def predecessors(self, node: Any) -> FrozenSet[Any]:
        """In-neighbours of ``node``."""
        return frozenset(u for u, v in self.edges if v == node)

    def reversed(self) -> "Digraph":
        """The graph with every edge flipped."""
        return Digraph(self.nodes, ((v, u) for u, v in self.edges))

    def undirected_edges(self) -> FrozenSet[FrozenSet]:
        """Edges as unordered pairs (for coloring problems)."""
        return frozenset(frozenset((u, v)) for u, v in self.edges if u != v)

    def union(self, other: "Digraph") -> "Digraph":
        """Disjoint-union-friendly union (node sets may overlap)."""
        return Digraph(self.nodes | other.nodes, self.edges | other.edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Digraph):
            return NotImplemented
        return self.nodes == other.nodes and self.edges == other.edges

    def __hash__(self) -> int:
        return hash((self.nodes, self.edges))

    def __repr__(self) -> str:
        return "Digraph(|V|=%d, |E|=%d)" % (len(self.nodes), len(self.edges))
