"""Graph <-> database conversions (the ``E`` binary relation)."""

from __future__ import annotations


from ..db.database import Database
from ..db.relation import Relation
from .digraph import Digraph

EDGE_RELATION = "E"


def graph_to_database(graph: Digraph, edge_name: str = EDGE_RELATION) -> Database:
    """A database whose universe is the node set with one binary relation.

    Isolated nodes stay in the universe even though they appear in no
    tuple — the paper's semantics quantifies over the whole universe, so
    this distinction matters (e.g. for ``T(x) :- !T(y)``).
    """
    return Database(graph.nodes, [Relation(edge_name, 2, graph.edges)])


def database_to_graph(db: Database, edge_name: str = EDGE_RELATION) -> Digraph:
    """Rebuild a digraph from a database's edge relation."""
    rel = db[edge_name]
    if rel.arity != 2:
        raise ValueError("relation %s has arity %d, expected 2" % (edge_name, rel.arity))
    return Digraph(db.universe, rel.tuples)
