"""Graph families used throughout the paper and the experiments.

Section 2 of the paper works with the directed path ``L_n``, the directed
cycle ``C_n``, and ``G_n``, the disjoint union of ``n`` copies of an even
cycle — the family witnessing exponentially many pairwise-incomparable
fixpoints.  The remaining generators supply workloads for the coloring and
distance experiments.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from .digraph import Digraph


def path(n: int) -> Digraph:
    """The paper's ``L_n``: vertices ``1..n``, edges ``(i, i+1)``."""
    if n < 1:
        raise ValueError("a path needs at least one vertex")
    return Digraph(range(1, n + 1), [(i, i + 1) for i in range(1, n)])


def cycle(n: int) -> Digraph:
    """The paper's ``C_n``: vertices ``1..n``, edges ``(i, i+1)`` and ``(n, 1)``."""
    if n < 1:
        raise ValueError("a cycle needs at least one vertex")
    edges = [(i, i + 1) for i in range(1, n)]
    edges.append((n, 1))
    return Digraph(range(1, n + 1), edges)


def disjoint_cycles(copies: int, length: int = 4) -> Digraph:
    """The paper's ``G_n``: ``copies`` disjoint directed cycles.

    With an even ``length`` (default 4, the smallest even cycle), the
    program ``pi_1`` has exactly ``2**copies`` pairwise-incomparable
    fixpoints on this graph and hence no least fixpoint.
    """
    if copies < 1:
        raise ValueError("need at least one copy")
    nodes: List[int] = []
    edges: List[Tuple[int, int]] = []
    for c in range(copies):
        base = c * length
        ring = list(range(base + 1, base + length + 1))
        nodes.extend(ring)
        edges.extend((ring[i], ring[(i + 1) % length]) for i in range(length))
    return Digraph(nodes, edges)


def complete(n: int) -> Digraph:
    """``K_n`` with both edge directions (used as a non-3-colorable case
    for n >= 4)."""
    nodes = range(1, n + 1)
    return Digraph(nodes, [(u, v) for u in nodes for v in nodes if u != v])


def wheel(spokes: int) -> Digraph:
    """A wheel: a hub (node 0) joined to an outer cycle ``1..spokes``.

    Odd-spoke wheels are not 3-colorable; even-spoke wheels are.
    """
    if spokes < 3:
        raise ValueError("a wheel needs at least 3 spokes")
    edges = []
    for i in range(1, spokes + 1):
        j = i % spokes + 1
        edges += [(i, j), (j, i), (0, i), (i, 0)]
    return Digraph(range(0, spokes + 1), edges)


def petersen() -> Digraph:
    """The Petersen graph (3-colorable, both directions per edge)."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    spokes = [(i, 5 + i) for i in range(5)]
    undirected = outer + inner + spokes
    edges = [(u, v) for u, v in undirected] + [(v, u) for u, v in undirected]
    return Digraph(range(10), edges)


def bipartite_complete(left: int, right: int) -> Digraph:
    """``K_{left,right}`` with both directions (always 2-colorable)."""
    lnodes = ["l%d" % i for i in range(left)]
    rnodes = ["r%d" % i for i in range(right)]
    edges = [(u, v) for u in lnodes for v in rnodes]
    edges += [(v, u) for u in lnodes for v in rnodes]
    return Digraph(lnodes + rnodes, edges)


def grid(rows: int, cols: int) -> Digraph:
    """A directed grid: edges rightwards and downwards."""
    nodes = [(r, c) for r in range(rows) for c in range(cols)]
    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append(((r, c), (r, c + 1)))
            if r + 1 < rows:
                edges.append(((r, c), (r + 1, c)))
    return Digraph(nodes, edges)


def random_digraph(n: int, edge_probability: float, seed: int) -> Digraph:
    """A seeded G(n, p) directed graph without self-loops."""
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must be in [0, 1]")
    rng = random.Random(seed)
    nodes = range(1, n + 1)
    edges = [
        (u, v)
        for u in nodes
        for v in nodes
        if u != v and rng.random() < edge_probability
    ]
    return Digraph(nodes, edges)


def random_dag(n: int, edge_probability: float, seed: int) -> Digraph:
    """A seeded random DAG (edges only from lower to higher labels)."""
    rng = random.Random(seed)
    nodes = range(1, n + 1)
    edges = [
        (u, v)
        for u in nodes
        for v in nodes
        if u < v and rng.random() < edge_probability
    ]
    return Digraph(nodes, edges)


def hypercube(dimension: int) -> Digraph:
    """The ``dimension``-cube on bit-string nodes, both edge directions."""
    if dimension < 1:
        raise ValueError("dimension must be positive")
    nodes = [tuple((i >> b) & 1 for b in range(dimension)) for i in range(2 ** dimension)]
    edges = []
    for u in nodes:
        for b in range(dimension):
            v = tuple(bit ^ 1 if i == b else bit for i, bit in enumerate(u))
            edges.append((u, v))
    return Digraph(nodes, edges)
