"""Logic substrate: FO model checking, ESO, Skolem NF, FO+IFP, EF games."""

from .ef import ef_equivalent
from .eso import ESOFormula, count_witnesses, eso_holds, witnesses
from .fo import (
    AtomF,
    And,
    Bottom,
    EqF,
    Exists,
    ForAll,
    Formula,
    IFP,
    Not,
    Or,
    Top,
    and_,
    evaluate,
    exists_all,
    forall_all,
    free_variables,
    iff,
    implies,
    or_,
    query,
)
from .ifp import simultaneous_ifp
from .skolem import SkolemNormalForm, skolemize

__all__ = [
    "And",
    "AtomF",
    "Bottom",
    "ESOFormula",
    "EqF",
    "Exists",
    "ForAll",
    "Formula",
    "IFP",
    "Not",
    "Or",
    "SkolemNormalForm",
    "Top",
    "and_",
    "count_witnesses",
    "ef_equivalent",
    "eso_holds",
    "evaluate",
    "exists_all",
    "forall_all",
    "free_variables",
    "iff",
    "implies",
    "or_",
    "query",
    "simultaneous_ifp",
    "skolemize",
    "witnesses",
]
