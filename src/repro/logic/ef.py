"""Ehrenfeucht–Fraïssé games: rank-r elementary equivalence.

Used by experiment E8 to back the paper's inexpressibility statements: the
transitive-closure (and hence distance) query is not first-order definable
(the paper cites [AU79]).  Two finite structures satisfy the same FO
sentences of quantifier rank ``r`` iff Duplicator wins the ``r``-round EF
game; the classic corollary is that long enough linear orders/paths are
rank-``r`` equivalent even when their reachability facts differ, so no
fixed FO sentence defines reachability on all graphs.

The recursive win-checker below is exponential in ``r`` — fine for the
small ranks the experiments use — and memoised on game positions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..db.database import Database

Position = Tuple[Tuple, Tuple]


def _is_partial_isomorphism(
    left: Database, right: Database, la: Tuple, ra: Tuple
) -> bool:
    """Do the pinned tuples induce a partial isomorphism?

    Checks the equality pattern and every relation of the (shared)
    vocabulary on all argument tuples drawn from the pinned elements.
    """
    n = len(la)
    for i in range(n):
        for j in range(n):
            if (la[i] == la[j]) != (ra[i] == ra[j]):
                return False
    names = set(left.relation_names()) | set(right.relation_names())
    for name in names:
        lrel = left.get(name)
        rrel = right.get(name)
        arity = lrel.arity if lrel is not None else rrel.arity
        if lrel is not None and rrel is not None and lrel.arity != rrel.arity:
            raise ValueError("relation %s has mismatched arities" % name)
        if n == 0:
            continue

        def tuples(indexes: List[int], base: Tuple) -> Tuple:
            return tuple(base[i] for i in indexes)

        # Enumerate index vectors over the pinned positions.
        stack: List[List[int]] = [[]]
        for _ in range(arity):
            stack = [s + [i] for s in stack for i in range(n)]
        for indexes in stack:
            lt = tuples(indexes, la)
            rt = tuples(indexes, ra)
            in_l = lrel is not None and lt in lrel
            in_r = rrel is not None and rt in rrel
            if in_l != in_r:
                return False
    return True


def ef_equivalent(
    left: Database,
    right: Database,
    rank: int,
    pinned_left: Tuple = (),
    pinned_right: Tuple = (),
    _memo: Optional[Dict[Tuple[int, Position], bool]] = None,
) -> bool:
    """Does Duplicator win the ``rank``-round EF game?

    ``True`` means the two structures (with the pinned parameters) agree on
    every FO formula of quantifier rank at most ``rank``.
    """
    memo = _memo if _memo is not None else {}
    key = (rank, (tuple(pinned_left), tuple(pinned_right)))
    cached = memo.get(key)
    if cached is not None:
        return cached

    if not _is_partial_isomorphism(left, right, tuple(pinned_left), tuple(pinned_right)):
        memo[key] = False
        return False
    if rank == 0:
        memo[key] = True
        return True

    lu = sorted(left.universe, key=repr)
    ru = sorted(right.universe, key=repr)

    # Spoiler plays in the left structure.
    for a in lu:
        if not any(
            ef_equivalent(
                left, right, rank - 1,
                tuple(pinned_left) + (a,), tuple(pinned_right) + (b,), memo,
            )
            for b in ru
        ):
            memo[key] = False
            return False
    # Spoiler plays in the right structure.
    for b in ru:
        if not any(
            ef_equivalent(
                left, right, rank - 1,
                tuple(pinned_left) + (a,), tuple(pinned_right) + (b,), memo,
            )
            for a in lu
        ):
            memo[key] = False
            return False
    memo[key] = True
    return True
