"""Existential second-order formulas and Fagin's theorem, small scale.

*"An existential second-order formula Psi over the vocabulary sigma is an
expression of the form exists-S phi(S) ... Fagin's theorem: a collection C
of finite databases over sigma is in NP if and only if it is definable by
an existential second-order formula over sigma."*

We cannot iterate over Turing machines, but on laptop-scale databases we
*can* decide ESO satisfaction by brute force over all candidate relations —
which is precisely the "guess" in NP's guess-and-verify.  That brute-force
check is the ground truth against which the Theorem 1 compiler
(:mod:`repro.reductions.fagin`) is validated.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product
from typing import Dict, Iterator, List, Sequence, Tuple

from ..db.database import Database
from ..db.relation import Relation
from .fo import Formula, evaluate, free_variables


@dataclass(frozen=True)
class ESOFormula:
    """``exists S_1 ... S_m . matrix`` with ``matrix`` first-order.

    ``so_signature`` lists the quantified relation symbols with their
    arities; the matrix may mention both the database vocabulary and the
    quantified symbols.
    """

    so_signature: Tuple[Tuple[str, int], ...]
    matrix: Formula

    def __post_init__(self) -> None:
        if free_variables(self.matrix):
            raise ValueError(
                "an ESO sentence may not have free first-order variables: %s"
                % sorted(v.name for v in free_variables(self.matrix))
            )
        names = [name for name, _ in self.so_signature]
        if len(names) != len(set(names)):
            raise ValueError("duplicate second-order variable names")


class ESOSearchLimit(RuntimeError):
    """The witness space is too large for brute-force search."""


def _witness_space_size(db: Database, signature: Sequence[Tuple[str, int]]) -> int:
    n = len(db.universe)
    total = 1
    for _, arity in signature:
        total *= 2 ** (n ** arity)
    return total


def witnesses(
    eso: ESOFormula, db: Database, limit: int = 2 ** 22
) -> Iterator[Dict[str, Relation]]:
    """Yield every second-order witness ``{name: Relation}`` for ``eso``.

    Raises
    ------
    ESOSearchLimit
        When the number of candidate relation tuples exceeds ``limit``.
    """
    space = _witness_space_size(db, eso.so_signature)
    if space > limit:
        raise ESOSearchLimit(
            "witness space has %d candidates (> %d); use a smaller database"
            % (space, limit)
        )
    universe = sorted(db.universe, key=repr)
    per_symbol: List[List[Relation]] = []
    for name, arity in eso.so_signature:
        all_tuples = list(product(universe, repeat=arity))
        candidates = []
        for size in range(len(all_tuples) + 1):
            for chosen in combinations(all_tuples, size):
                candidates.append(Relation(name, arity, chosen))
        per_symbol.append(candidates)
    for combo in product(*per_symbol):
        extended = db.with_relations(combo)
        if evaluate(eso.matrix, extended):
            yield {rel.name: rel for rel in combo}


def eso_holds(eso: ESOFormula, db: Database, limit: int = 2 ** 22) -> bool:
    """Brute-force ESO model checking: does some witness exist?"""
    for _ in witnesses(eso, db, limit):
        return True
    return False


def count_witnesses(eso: ESOFormula, db: Database, limit: int = 2 ** 22) -> int:
    """Number of second-order witnesses (used by the uniqueness tests)."""
    return sum(1 for _ in witnesses(eso, db, limit))
