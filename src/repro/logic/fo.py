"""First-order logic over finite databases, plus the IFP operator.

The paper leans on logic throughout: the operator Theta is *"definable
using existential first-order formulas"* (Section 2); Theorem 1 goes
through Fagin's theorem and Skolem normal form for existential second-order
formulas; Section 4 relates Inflationary DATALOG to FO + IFP.  This module
supplies the formula AST, model checking on :class:`~repro.db.Database`
values, and the classical transformations (NNF, prenex, DNF) that the
Skolemizer and the Proposition 1 translations build on.

Formulas are immutable; variables and constants are the same
:mod:`repro.core.terms` values used by programs, so conversions between
rules and formulas are direct.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..core.terms import Constant, Term, Variable, term
from ..db.database import Database

Binding = Dict[Variable, Any]


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AtomF:
    """An atomic formula ``pred(args)``."""

    pred: str
    args: Tuple[Term, ...]

    def __init__(self, pred: str, args: Sequence[Any]) -> None:
        object.__setattr__(self, "pred", pred)
        object.__setattr__(self, "args", tuple(term(a) for a in args))

    def __str__(self) -> str:
        return "%s(%s)" % (self.pred, ", ".join(str(a) for a in self.args))


@dataclass(frozen=True)
class EqF:
    """An equality ``left = right`` between terms."""

    left: Term
    right: Term

    def __init__(self, left: Any, right: Any) -> None:
        object.__setattr__(self, "left", term(left))
        object.__setattr__(self, "right", term(right))

    def __str__(self) -> str:
        return "%s = %s" % (self.left, self.right)


@dataclass(frozen=True)
class Top:
    """The true constant."""

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class Bottom:
    """The false constant."""

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Not:
    """Negation."""

    sub: "Formula"

    def __str__(self) -> str:
        return "!(%s)" % (self.sub,)


@dataclass(frozen=True)
class And:
    """N-ary conjunction."""

    subs: Tuple["Formula", ...]

    def __init__(self, subs: Sequence["Formula"]) -> None:
        object.__setattr__(self, "subs", tuple(subs))

    def __str__(self) -> str:
        return "(%s)" % " & ".join(str(s) for s in self.subs)


@dataclass(frozen=True)
class Or:
    """N-ary disjunction."""

    subs: Tuple["Formula", ...]

    def __init__(self, subs: Sequence["Formula"]) -> None:
        object.__setattr__(self, "subs", tuple(subs))

    def __str__(self) -> str:
        return "(%s)" % " | ".join(str(s) for s in self.subs)


@dataclass(frozen=True)
class Exists:
    """Existential quantification over one variable."""

    var: Variable
    sub: "Formula"

    def __str__(self) -> str:
        return "exists %s. %s" % (self.var, self.sub)


@dataclass(frozen=True)
class ForAll:
    """Universal quantification over one variable."""

    var: Variable
    sub: "Formula"

    def __str__(self) -> str:
        return "forall %s. %s" % (self.var, self.sub)


@dataclass(frozen=True)
class IFP:
    """The inductive-fixpoint operator ``[IFP_{pred, vars} formula](args)``.

    Gurevich–Shelah [GS86] / Section 4 of the paper: iterate

        S_0 = empty,   S_{k+1} = S_k  union  {a : formula(a, S_k)}

    to its (inflationary) fixpoint and test ``args`` for membership.  The
    bound predicate ``pred`` may occur in ``formula`` with any polarity —
    that is the whole point of *inflationary* (as opposed to least)
    fixpoints.
    """

    pred: str
    vars: Tuple[Variable, ...]
    formula: "Formula"
    args: Tuple[Term, ...]

    def __init__(
        self,
        pred: str,
        vars: Sequence[Variable],
        formula: "Formula",
        args: Sequence[Any],
    ) -> None:
        object.__setattr__(self, "pred", pred)
        object.__setattr__(self, "vars", tuple(vars))
        object.__setattr__(self, "formula", formula)
        object.__setattr__(self, "args", tuple(term(a) for a in args))
        if len(self.vars) != len(self.args):
            raise ValueError(
                "IFP binds %d variables but is applied to %d terms"
                % (len(self.vars), len(self.args))
            )

    def __str__(self) -> str:
        return "[IFP_{%s,%s} %s](%s)" % (
            self.pred,
            ",".join(str(v) for v in self.vars),
            self.formula,
            ", ".join(str(a) for a in self.args),
        )


Formula = Union[AtomF, EqF, Top, Bottom, Not, And, Or, Exists, ForAll, IFP]


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------


def and_(*subs: Formula) -> Formula:
    """Flattening conjunction; empty -> Top, singleton -> itself."""
    flat: List[Formula] = []
    for s in subs:
        if isinstance(s, And):
            flat.extend(s.subs)
        elif isinstance(s, Top):
            continue
        else:
            flat.append(s)
    if not flat:
        return Top()
    if len(flat) == 1:
        return flat[0]
    return And(flat)


def or_(*subs: Formula) -> Formula:
    """Flattening disjunction; empty -> Bottom, singleton -> itself."""
    flat: List[Formula] = []
    for s in subs:
        if isinstance(s, Or):
            flat.extend(s.subs)
        elif isinstance(s, Bottom):
            continue
        else:
            flat.append(s)
    if not flat:
        return Bottom()
    if len(flat) == 1:
        return flat[0]
    return Or(flat)


def implies(antecedent: Formula, consequent: Formula) -> Formula:
    """``antecedent -> consequent``."""
    return or_(Not(antecedent), consequent)


def iff(left: Formula, right: Formula) -> Formula:
    """``left <-> right``."""
    return and_(implies(left, right), implies(right, left))


def exists_all(vars: Sequence[Variable], sub: Formula) -> Formula:
    """Nest ``Exists`` over several variables (first var outermost)."""
    out = sub
    for v in reversed(list(vars)):
        out = Exists(v, out)
    return out


def forall_all(vars: Sequence[Variable], sub: Formula) -> Formula:
    """Nest ``ForAll`` over several variables (first var outermost)."""
    out = sub
    for v in reversed(list(vars)):
        out = ForAll(v, out)
    return out


# ----------------------------------------------------------------------
# Inspection
# ----------------------------------------------------------------------


def free_variables(formula: Formula) -> FrozenSet[Variable]:
    """The free variables of a formula."""
    if isinstance(formula, AtomF):
        return frozenset(a for a in formula.args if isinstance(a, Variable))
    if isinstance(formula, EqF):
        return frozenset(
            t for t in (formula.left, formula.right) if isinstance(t, Variable)
        )
    if isinstance(formula, (Top, Bottom)):
        return frozenset()
    if isinstance(formula, Not):
        return free_variables(formula.sub)
    if isinstance(formula, (And, Or)):
        out: Set[Variable] = set()
        for s in formula.subs:
            out |= free_variables(s)
        return frozenset(out)
    if isinstance(formula, (Exists, ForAll)):
        return free_variables(formula.sub) - {formula.var}
    if isinstance(formula, IFP):
        inner = free_variables(formula.formula) - set(formula.vars)
        outer = frozenset(a for a in formula.args if isinstance(a, Variable))
        return inner | outer
    raise TypeError("not a formula: %r" % (formula,))


def predicates_of(formula: Formula) -> FrozenSet[str]:
    """Every predicate symbol occurring in the formula."""
    if isinstance(formula, AtomF):
        return frozenset((formula.pred,))
    if isinstance(formula, (EqF, Top, Bottom)):
        return frozenset()
    if isinstance(formula, Not):
        return predicates_of(formula.sub)
    if isinstance(formula, (And, Or)):
        out: Set[str] = set()
        for s in formula.subs:
            out |= predicates_of(s)
        return frozenset(out)
    if isinstance(formula, (Exists, ForAll)):
        return predicates_of(formula.sub)
    if isinstance(formula, IFP):
        return predicates_of(formula.formula) | {formula.pred}
    raise TypeError("not a formula: %r" % (formula,))


# ----------------------------------------------------------------------
# Evaluation (finite model checking)
# ----------------------------------------------------------------------


def evaluate(formula: Formula, db: Database, binding: Optional[Binding] = None) -> bool:
    """Model checking: does ``db, binding |= formula``?

    Quantifiers range over ``db.universe``.  All free variables must be
    bound.  IFP subformulas are evaluated by inflationary iteration (the
    relation computed for ``pred`` shadows any same-named relation for the
    duration of the subformula).
    """
    env = binding or {}

    def value(t: Term) -> Any:
        if isinstance(t, Constant):
            return t.value
        try:
            return env[t]
        except KeyError:
            raise ValueError("unbound variable %s" % t) from None

    if isinstance(formula, Top):
        return True
    if isinstance(formula, Bottom):
        return False
    if isinstance(formula, AtomF):
        rel = db.get(formula.pred)
        if rel is None:
            return False
        return tuple(value(a) for a in formula.args) in rel
    if isinstance(formula, EqF):
        return value(formula.left) == value(formula.right)
    if isinstance(formula, Not):
        return not evaluate(formula.sub, db, env)
    if isinstance(formula, And):
        return all(evaluate(s, db, env) for s in formula.subs)
    if isinstance(formula, Or):
        return any(evaluate(s, db, env) for s in formula.subs)
    if isinstance(formula, Exists):
        for element in db.universe:
            extended = dict(env)
            extended[formula.var] = element
            if evaluate(formula.sub, db, extended):
                return True
        return False
    if isinstance(formula, ForAll):
        for element in db.universe:
            extended = dict(env)
            extended[formula.var] = element
            if not evaluate(formula.sub, db, extended):
                return False
        return True
    if isinstance(formula, IFP):
        closed = ifp_relation(formula, db, env)
        return tuple(value(a) for a in formula.args) in closed
    raise TypeError("not a formula: %r" % (formula,))


def ifp_relation(node: IFP, db: Database, binding: Optional[Binding] = None) -> FrozenSet[Tuple]:
    """The inductive fixpoint relation computed by an IFP node.

    Iterates ``S := S union {a : formula(a, S)}`` to stability; the result
    depends on the outer ``binding`` for any free variables of the body
    beyond the bound tuple.
    """
    from ..db.relation import Relation

    env = binding or {}
    universe = sorted(db.universe, key=repr)
    current: Set[Tuple] = set()
    arity = len(node.vars)
    while True:
        shadow = db.with_relation(Relation(node.pred, arity, current))
        added: Set[Tuple] = set()
        for values in product(universe, repeat=arity):
            if values in current:
                continue
            extended = dict(env)
            for v, val in zip(node.vars, values):
                extended[v] = val
            if evaluate(node.formula, shadow, extended):
                added.add(values)
        if not added:
            return frozenset(current)
        current |= added


def query(
    formula: Formula, db: Database, free_order: Sequence[Variable]
) -> FrozenSet[Tuple]:
    """All tuples over the universe satisfying a formula with free variables.

    ``free_order`` fixes the output column order and must cover every free
    variable of the formula.
    """
    missing = free_variables(formula) - set(free_order)
    if missing:
        raise ValueError(
            "free variables %s not covered by free_order"
            % sorted(v.name for v in missing)
        )
    universe = sorted(db.universe, key=repr)
    out: Set[Tuple] = set()
    for values in product(universe, repeat=len(free_order)):
        binding = dict(zip(free_order, values))
        if evaluate(formula, db, binding):
            out.add(values)
    return frozenset(out)


# ----------------------------------------------------------------------
# Normal forms
# ----------------------------------------------------------------------


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form (negations pushed to atoms/equalities).

    IFP nodes are treated as atomic (negation stays in front of them).
    """
    def push(f: Formula, negated: bool) -> Formula:
        if isinstance(f, (AtomF, EqF, IFP)):
            return Not(f) if negated else f
        if isinstance(f, Top):
            return Bottom() if negated else f
        if isinstance(f, Bottom):
            return Top() if negated else f
        if isinstance(f, Not):
            return push(f.sub, not negated)
        if isinstance(f, And):
            subs = [push(s, negated) for s in f.subs]
            return or_(*subs) if negated else and_(*subs)
        if isinstance(f, Or):
            subs = [push(s, negated) for s in f.subs]
            return and_(*subs) if negated else or_(*subs)
        if isinstance(f, Exists):
            inner = push(f.sub, negated)
            return ForAll(f.var, inner) if negated else Exists(f.var, inner)
        if isinstance(f, ForAll):
            inner = push(f.sub, negated)
            return Exists(f.var, inner) if negated else ForAll(f.var, inner)
        raise TypeError("not a formula: %r" % (f,))

    return push(formula, False)


def substitute_term(formula: Formula, mapping: Dict[Variable, Term]) -> Formula:
    """Capture-naive substitution of terms for free variables.

    Callers must ensure bound variables do not clash with the mapping
    (use :func:`rename_apart` first).
    """
    def sub_term(t: Term) -> Term:
        return mapping.get(t, t) if isinstance(t, Variable) else t

    if isinstance(formula, AtomF):
        return AtomF(formula.pred, [sub_term(a) for a in formula.args])
    if isinstance(formula, EqF):
        return EqF(sub_term(formula.left), sub_term(formula.right))
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return Not(substitute_term(formula.sub, mapping))
    if isinstance(formula, And):
        return And([substitute_term(s, mapping) for s in formula.subs])
    if isinstance(formula, Or):
        return Or([substitute_term(s, mapping) for s in formula.subs])
    if isinstance(formula, (Exists, ForAll)):
        inner_map = {k: v for k, v in mapping.items() if k != formula.var}
        cls = Exists if isinstance(formula, Exists) else ForAll
        return cls(formula.var, substitute_term(formula.sub, inner_map))
    if isinstance(formula, IFP):
        inner_map = {k: v for k, v in mapping.items() if k not in formula.vars}
        return IFP(
            formula.pred,
            formula.vars,
            substitute_term(formula.formula, inner_map),
            [sub_term(a) for a in formula.args],
        )
    raise TypeError("not a formula: %r" % (formula,))


class FreshVars:
    """A generator of globally fresh variables with a common prefix."""

    def __init__(self, prefix: str = "_v") -> None:
        self._prefix = prefix
        self._count = 0

    def next(self) -> Variable:
        """A brand-new variable."""
        self._count += 1
        return Variable("%s%d" % (self._prefix, self._count))


def rename_apart(formula: Formula, fresh: Optional[FreshVars] = None) -> Formula:
    """Rename every bound variable to a fresh name (no shadowing left)."""
    fresh = fresh or FreshVars()

    def walk(f: Formula, renaming: Dict[Variable, Variable]) -> Formula:
        if isinstance(f, AtomF):
            return AtomF(
                f.pred,
                [renaming.get(a, a) if isinstance(a, Variable) else a for a in f.args],
            )
        if isinstance(f, EqF):
            def r(t: Term) -> Term:
                return renaming.get(t, t) if isinstance(t, Variable) else t

            return EqF(r(f.left), r(f.right))
        if isinstance(f, (Top, Bottom)):
            return f
        if isinstance(f, Not):
            return Not(walk(f.sub, renaming))
        if isinstance(f, And):
            return And([walk(s, renaming) for s in f.subs])
        if isinstance(f, Or):
            return Or([walk(s, renaming) for s in f.subs])
        if isinstance(f, (Exists, ForAll)):
            new_var = fresh.next()
            extended = dict(renaming)
            extended[f.var] = new_var
            cls = Exists if isinstance(f, Exists) else ForAll
            return cls(new_var, walk(f.sub, extended))
        if isinstance(f, IFP):
            new_vars = [fresh.next() for _ in f.vars]
            extended = dict(renaming)
            extended.update(zip(f.vars, new_vars))
            return IFP(
                f.pred,
                new_vars,
                walk(f.formula, extended),
                [renaming.get(a, a) if isinstance(a, Variable) else a for a in f.args],
            )
        raise TypeError("not a formula: %r" % (f,))

    return walk(formula, {})


def to_prenex(formula: Formula) -> Tuple[List[Tuple[str, Variable]], Formula]:
    """Prenex form of an IFP-free formula.

    Returns ``(prefix, matrix)`` where ``prefix`` is a list of
    ``("forall" | "exists", variable)`` pairs, outermost first, and
    ``matrix`` is quantifier-free.  The input is first normalised (NNF,
    bound variables renamed apart).
    """
    normal = rename_apart(to_nnf(formula))

    def pull(f: Formula) -> Tuple[List[Tuple[str, Variable]], Formula]:
        if isinstance(f, (AtomF, EqF, Top, Bottom)):
            return [], f
        if isinstance(f, Not):
            # NNF: negation only sits on atoms.
            return [], f
        if isinstance(f, Exists):
            prefix, matrix = pull(f.sub)
            return [("exists", f.var)] + prefix, matrix
        if isinstance(f, ForAll):
            prefix, matrix = pull(f.sub)
            return [("forall", f.var)] + prefix, matrix
        if isinstance(f, (And, Or)):
            prefix: List[Tuple[str, Variable]] = []
            matrices: List[Formula] = []
            for s in f.subs:
                p, m = pull(s)
                prefix.extend(p)
                matrices.append(m)
            joined = and_(*matrices) if isinstance(f, And) else or_(*matrices)
            return prefix, joined
        if isinstance(f, IFP):
            raise TypeError("prenex form is not defined for IFP formulas")
        raise TypeError("not a formula: %r" % (f,))

    return pull(normal)


Lit = Tuple[bool, Union[AtomF, EqF]]
"""A DNF literal: ``(is_positive, atom-or-equality)``."""


def matrix_to_dnf(matrix: Formula) -> List[List[Lit]]:
    """DNF of a quantifier-free NNF matrix, as lists of literals.

    Disjuncts containing complementary literals are dropped; an empty
    result means the matrix is unsatisfiable, a result containing an empty
    disjunct means it is valid on that branch.
    """
    def walk(f: Formula) -> List[List[Lit]]:
        if isinstance(f, (AtomF, EqF)):
            return [[(True, f)]]
        if isinstance(f, Not):
            if not isinstance(f.sub, (AtomF, EqF)):
                raise TypeError("matrix is not in NNF: %r" % (f,))
            return [[(False, f.sub)]]
        if isinstance(f, Top):
            return [[]]
        if isinstance(f, Bottom):
            return []
        if isinstance(f, Or):
            out: List[List[Lit]] = []
            for s in f.subs:
                out.extend(walk(s))
            return out
        if isinstance(f, And):
            parts = [walk(s) for s in f.subs]
            out = [[]]
            for p in parts:
                out = [a + b for a in out for b in p]
            return out
        raise TypeError("unexpected connective in matrix: %r" % (f,))

    dnf = []
    for disjunct in walk(matrix):
        seen = set()
        contradictory = False
        deduped: List[Lit] = []
        for sign, atom in disjunct:
            key = (sign, atom)
            if (not sign, atom) in seen:
                contradictory = True
                break
            if key not in seen:
                seen.add(key)
                deduped.append(key)
        if not contradictory:
            dnf.append(deduped)
    return dnf
