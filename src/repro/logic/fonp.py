"""FO(NP): the first-order closure of NP (Theorem 3's upper-bound class).

*"We say that a collection C of finite databases over sigma is in FONP
(first-order with NP oracles) if it is definable by a first-order formula
involving NP predicates. ... FONP can be described succinctly as the
first-order closure of NP."*

We make the class executable on laptop-scale inputs: a
:class:`FONPQuery` is an FO formula whose atoms may name *oracle
predicates*, each backed by an NP decision procedure (here: the package's
exact solvers).  Evaluation is plain FO model checking with oracle calls —
the Delta_2^p shape of the class, literally.

The module also ships the paper's own example of a (presumably)
beyond-Boolean-hierarchy FONP query: *"Given a graph G = (V, E), is there
an edge E(x, y) such that if this edge is removed, then the resulting
graph is 3-colorable, but not Hamiltonian?"*
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..db.database import Database
from ..core.terms import Constant, Variable
from ..graphs.algorithms import hamilton_circuits, is_3colorable
from ..graphs.digraph import Digraph
from ..graphs.encode import database_to_graph
from .fo import (
    And,
    AtomF,
    Binding,
    Bottom,
    EqF,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    Top,
)

Oracle = Callable[[Database, Tuple], bool]
"""An NP predicate: ``oracle(db, argument_tuple) -> bool``."""


@dataclass
class FONPQuery:
    """An FO formula over database relations *and* named NP oracles.

    Atoms whose predicate appears in ``oracles`` are decided by the oracle
    callable; all other atoms are looked up in the database as usual.
    ``calls`` counts oracle invocations (memoised per argument tuple), so
    experiments can report the "polynomially many NP queries" cost.
    """

    formula: Formula
    oracles: Dict[str, Oracle]
    calls: int = 0
    _memo: Dict[Tuple[str, Tuple], bool] = field(default_factory=dict)

    def reset(self) -> None:
        """Clear the oracle-call counter and memo table."""
        self.calls = 0
        self._memo.clear()

    def _ask(self, db: Database, pred: str, args: Tuple) -> bool:
        key = (pred, args)
        if key not in self._memo:
            self.calls += 1
            self._memo[key] = self.oracles[pred](db, args)
        return self._memo[key]

    def holds(self, db: Database, binding: Optional[Binding] = None) -> bool:
        """Model checking with oracle dispatch."""
        env = binding or {}

        def value(t, env: Binding):
            if isinstance(t, Constant):
                return t.value
            try:
                return env[t]
            except KeyError:
                raise ValueError("unbound variable %s" % t) from None

        def walk(f: Formula, env: Binding) -> bool:
            if isinstance(f, Top):
                return True
            if isinstance(f, Bottom):
                return False
            if isinstance(f, AtomF):
                args = tuple(value(a, env) for a in f.args)
                if f.pred in self.oracles:
                    return self._ask(db, f.pred, args)
                rel = db.get(f.pred)
                return rel is not None and args in rel
            if isinstance(f, EqF):
                return value(f.left, env) == value(f.right, env)
            if isinstance(f, Not):
                return not walk(f.sub, env)
            if isinstance(f, And):
                return all(walk(s, env) for s in f.subs)
            if isinstance(f, Or):
                return any(walk(s, env) for s in f.subs)
            if isinstance(f, Exists):
                for element in db.universe:
                    extended = dict(env)
                    extended[f.var] = element
                    if walk(f.sub, extended):
                        return True
                return False
            if isinstance(f, ForAll):
                for element in db.universe:
                    extended = dict(env)
                    extended[f.var] = element
                    if not walk(f.sub, extended):
                        return False
                return True
            raise TypeError("FONP formulas do not support %r nodes" % type(f).__name__)

        return walk(self.formula, env)


# ----------------------------------------------------------------------
# Ready-made NP oracles over the edge relation E
# ----------------------------------------------------------------------


def _graph_without_edge(db: Database, edge: Tuple) -> Digraph:
    graph = database_to_graph(db)
    u, v = edge
    remaining = [e for e in graph.edges if e != (u, v) and e != (v, u)]
    return Digraph(graph.nodes, remaining)


def oracle_3colorable_without(db: Database, args: Tuple) -> bool:
    """NP oracle: is the graph minus the (undirected) edge args 3-colorable?"""
    return is_3colorable(_graph_without_edge(db, args))


def oracle_hamiltonian_without(db: Database, args: Tuple) -> bool:
    """NP oracle: does the graph minus the edge args have a Hamilton circuit?"""
    return bool(hamilton_circuits(_graph_without_edge(db, args)))


def paper_example_query() -> FONPQuery:
    """The paper's FONP example, verbatim:

    ``exists x exists y ( E(x, y) and COL3-(x, y) and not HAM-(x, y) )``

    where ``COL3-``/``HAM-`` are the NP predicates "the graph with edge
    (x, y) removed is 3-colorable / Hamiltonian".
    """
    X, Y = Variable("X"), Variable("Y")
    formula = Exists(
        X,
        Exists(
            Y,
            And(
                (
                    AtomF("E", [X, Y]),
                    AtomF("COL3_WITHOUT", [X, Y]),
                    Not(AtomF("HAM_WITHOUT", [X, Y])),
                )
            ),
        ),
    )
    return FONPQuery(
        formula,
        {
            "COL3_WITHOUT": oracle_3colorable_without,
            "HAM_WITHOUT": oracle_hamiltonian_without,
        },
    )
