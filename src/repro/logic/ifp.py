"""FO + IFP utilities: simultaneous induction and query evaluation.

Section 4: *"Gurevich and Shelah studied the expressive power of the logic
FO + IFP (first-order + inductive fixpoint) on finite structures"*; the
paper's Proposition 1 identifies Inflationary DATALOG with the existential
fragment of FO + IFP.  Single IFP applications live in
:class:`repro.logic.fo.IFP`; this module adds the *simultaneous* induction
needed for programs with several nondatabase relations ("the inflationary
semantics is defined in a similar way by simultaneous induction in the
defining equations").
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Optional, Sequence, Set, Tuple

from ..core.terms import Variable
from ..db.database import Database
from ..db.relation import Relation
from .fo import Binding, Formula, evaluate


def simultaneous_ifp(
    db: Database,
    definitions: Dict[str, Tuple[Sequence[Variable], Formula]],
    binding: Optional[Binding] = None,
    max_rounds: Optional[int] = None,
) -> Dict[str, Relation]:
    """Inductive fixpoint of a system ``S_i := S_i u {a : phi_i(a, S)}``.

    ``definitions`` maps each inductively defined predicate to its bound
    variable tuple and body formula; bodies may mention every defined
    predicate with any polarity.  Returns the stabilised relations.
    """
    env = binding or {}
    universe = sorted(db.universe, key=repr)
    current: Dict[str, Set[Tuple]] = {name: set() for name in definitions}
    arities = {name: len(vars) for name, (vars, _) in definitions.items()}
    bound = sum(len(universe) ** a for a in arities.values()) + 1
    limit = bound if max_rounds is None else max_rounds

    for _ in range(limit):
        shadow = db.with_relations(
            Relation(name, arities[name], tuples) for name, tuples in current.items()
        )
        added = False
        new: Dict[str, Set[Tuple]] = {}
        for name, (vars, body) in definitions.items():
            gained: Set[Tuple] = set()
            for values in product(universe, repeat=arities[name]):
                if values in current[name]:
                    continue
                extended = dict(env)
                extended.update(zip(vars, values))
                if evaluate(body, shadow, extended):
                    gained.add(values)
            new[name] = gained
            added = added or bool(gained)
        if not added:
            return {
                name: Relation(name, arities[name], tuples)
                for name, tuples in current.items()
            }
        for name in current:
            current[name] |= new[name]
    raise AssertionError("simultaneous IFP exceeded its theoretical bound")


def ifp_stage_count(
    db: Database,
    definitions: Dict[str, Tuple[Sequence[Variable], Formula]],
) -> int:
    """Number of rounds until the simultaneous induction stabilises."""
    env: Binding = {}
    universe = sorted(db.universe, key=repr)
    current: Dict[str, Set[Tuple]] = {name: set() for name in definitions}
    arities = {name: len(vars) for name, (vars, _) in definitions.items()}
    rounds = 0
    while True:
        shadow = db.with_relations(
            Relation(name, arities[name], tuples) for name, tuples in current.items()
        )
        added = False
        for name, (vars, body) in definitions.items():
            for values in product(universe, repeat=arities[name]):
                if values in current[name]:
                    continue
                extended = dict(env)
                extended.update(zip(vars, values))
                if evaluate(body, shadow, extended):
                    current[name].add(values)
                    added = True
        if not added:
            return rounds
        rounds += 1
