"""Skolem normal form for existential second-order formulas (Theorem 1).

*"Every existential second-order formula is equivalent to one of the form
(exists S)(forall x)(exists y)(theta_1 v ... v theta_k), where the theta_i
are conjunctions of literals ...  It is established by first bringing the
first-order part in prenex normal form and then applying repeatedly the
equivalence*

    (forall u)(exists v) chi(u, v)   <=>
    (exists X){ (forall u)(forall v)[X(u, v) -> chi(u, v)]
                and (forall u)(exists v) X(u, v) }

*In effect, this transformation 'Skolemizes' the first-order part ...
instead of function symbols we encode functions by their graphs."*

The implementation follows the proof literally: prenex the matrix, then —
while some existential still precedes a universal — take the leading
universal block ``u``, the first existential ``v``, introduce a fresh graph
relation ``X(u, v)``, convert ``exists v`` into ``forall v`` guarded by
``X``, and append a totality conjunct ``forall u' exists v' X(u', v')``
whose universals are inserted *before* the remaining prefix (keeping
already-trailing existentials trailing, which guarantees termination).
Finally the matrix is put in DNF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.terms import Variable
from .eso import ESOFormula
from .fo import (
    AtomF,
    Formula,
    FreshVars,
    Lit,
    Not,
    and_,
    matrix_to_dnf,
    or_,
    to_prenex,
)


@dataclass(frozen=True)
class SkolemNormalForm:
    """``exists SO-relations  forall universals  exists existentials  DNF``.

    ``so_signature`` lists *all* second-order symbols: the original ones
    followed by the introduced Skolem-graph relations.
    """

    so_signature: Tuple[Tuple[str, int], ...]
    universals: Tuple[Variable, ...]
    existentials: Tuple[Variable, ...]
    disjuncts: Tuple[Tuple[Lit, ...], ...]

    def matrix_formula(self) -> Formula:
        """The DNF matrix rebuilt as a formula (for model checking)."""
        out = []
        for disjunct in self.disjuncts:
            lits = [atom if sign else Not(atom) for sign, atom in disjunct]
            out.append(and_(*lits))
        return or_(*out)

    def to_eso(self) -> ESOFormula:
        """Rebuild the whole sentence as an :class:`ESOFormula`."""
        from .fo import exists_all, forall_all

        body = exists_all(
            list(self.existentials), self.matrix_formula()
        )
        body = forall_all(list(self.universals), body)
        return ESOFormula(self.so_signature, body)


def skolemize(
    eso: ESOFormula, graph_prefix: str = "SK", fresh: Optional[FreshVars] = None
) -> SkolemNormalForm:
    """Transform an ESO sentence into Skolem normal form.

    ``graph_prefix`` names the introduced Skolem-graph relations
    (``SK1``, ``SK2``, ...); the prefix must not collide with existing
    predicate names — callers supplying custom matrices should pick a safe
    prefix.
    """
    fresh = fresh or FreshVars("_sk")
    prefix, matrix = to_prenex(eso.matrix)
    so_signature: List[Tuple[str, int]] = list(eso.so_signature)
    graph_count = 0

    def first_offender(p: List[Tuple[str, Variable]]) -> Optional[int]:
        """Index of the first 'exists' with a 'forall' somewhere after."""
        last_forall = -1
        for i in range(len(p) - 1, -1, -1):
            if p[i][0] == "forall":
                last_forall = i
                break
        if last_forall < 0:
            return None
        for i in range(last_forall):
            if p[i][0] == "exists":
                return i
        return None

    while True:
        offender = first_offender(prefix)
        if offender is None:
            break
        leading = [var for _, var in prefix[:offender]]  # all universal
        v = prefix[offender][1]
        rest = prefix[offender + 1:]

        graph_count += 1
        graph_name = "%s%d" % (graph_prefix, graph_count)
        so_signature.append((graph_name, len(leading) + 1))

        guard_args = leading + [v]
        # Totality conjunct with disjoint fresh variables.
        fresh_universals = [fresh.next() for _ in leading]
        fresh_existential = fresh.next()
        totality_atom = AtomF(graph_name, fresh_universals + [fresh_existential])

        matrix = and_(or_(Not(AtomF(graph_name, guard_args)), matrix), totality_atom)
        prefix = (
            prefix[:offender]
            + [("forall", v)]
            + [("forall", u) for u in fresh_universals]
            + rest
            + [("exists", fresh_existential)]
        )

    universals = tuple(var for kind, var in prefix if kind == "forall")
    existentials = tuple(var for kind, var in prefix if kind == "exists")
    disjuncts = tuple(tuple(d) for d in matrix_to_dnf(matrix))
    return SkolemNormalForm(
        so_signature=tuple(so_signature),
        universals=universals,
        existentials=existentials,
        disjuncts=disjuncts,
    )
