"""Proposition 1: Inflationary DATALOG  <->  existential FO + IFP.

*"A query is expressible in Inflationary DATALOG if and only if it is
expressible in FO + IFP using operators definable by existential
first-order formulas."*

Both directions are implemented:

* :func:`theta_formula` — the existential first-order formula defining the
  operator Theta of a program for one IDB predicate (Section 2's
  ``phi_i(x_i, S)``).
* :func:`program_to_ifp_definitions` / :func:`program_to_ifp` — a program
  as a (simultaneous) inductive-fixpoint system / a single IFP formula.
* :func:`existential_fo_to_program` — an existential first-order operator
  back into DATALOG¬ rules ("obtained by bringing the existential formula
  phi in disjunctive normal form and associating a DATALOG¬ rule with
  every disjunct").
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.literals import Atom, Eq, Negation, Neq
from ..core.program import Program
from ..core.rules import Rule
from ..core.terms import Constant, Variable
from .fo import (
    AtomF,
    EqF,
    Formula,
    FreshVars,
    IFP,
    Not,
    and_,
    exists_all,
    free_variables,
    matrix_to_dnf,
    or_,
    to_prenex,
)


def _literal_to_formula(lit) -> Formula:
    """Convert a rule body literal into an FO formula."""
    if isinstance(lit, Atom):
        return AtomF(lit.pred, lit.args)
    if isinstance(lit, Negation):
        return Not(AtomF(lit.atom.pred, lit.atom.args))
    if isinstance(lit, Eq):
        return EqF(lit.left, lit.right)
    if isinstance(lit, Neq):
        return Not(EqF(lit.left, lit.right))
    raise TypeError("not a literal: %r" % (lit,))


def theta_formula(
    program: Program, pred: str, head_vars: Sequence[Variable]
) -> Formula:
    """The existential FO formula ``phi_pred(head_vars, S)`` defining Theta.

    For each rule ``pred(t) :- body`` the contribution is
    ``exists (rule vars) [ head_vars = t  and  body ]``; the formula is the
    disjunction over the rules for ``pred``.  This is exactly Section 2's
    observation that Theta "is definable using existential first-order
    formulas".
    """
    head_vars = list(head_vars)
    if len(head_vars) != program.arity(pred):
        raise ValueError(
            "predicate %s has arity %d, got %d head variables"
            % (pred, program.arity(pred), len(head_vars))
        )
    fresh = FreshVars("_t")
    disjuncts: List[Formula] = []
    for rule in program.rules_for(pred):
        renaming = {v: fresh.next() for v in rule.variables()}
        equalities: List[Formula] = []
        for hv, arg in zip(head_vars, rule.head.args):
            if isinstance(arg, Constant):
                equalities.append(EqF(hv, arg))
            else:
                equalities.append(EqF(hv, renaming[arg]))
        body: List[Formula] = []
        for lit in rule.body:
            formula = _literal_to_formula(lit)
            mapping = {v: renaming[v] for v in renaming}
            from .fo import substitute_term

            body.append(substitute_term(formula, mapping))
        conjunction = and_(*(equalities + body))
        disjuncts.append(
            exists_all(sorted(renaming.values(), key=lambda v: v.name), conjunction)
        )
    return or_(*disjuncts)


def fixpoint_formula(program: Program) -> Formula:
    """Section 3's ``phi_pi(S)``: the first-order fixpoint condition.

    *"Let phi_pi(S) be the first-order formula
    AND_i (forall x_i)[S_i(x_i) <-> phi_i(x_i, S)].  This formula has the
    property that S is a fixpoint of (pi, D)  <=>  D |= phi_pi(S)."*

    Evaluating it on ``db.with_relations(candidate IDB values)`` decides
    fixpointhood; wrapping it in second-order quantifiers gives the ESO
    forms used for pi-UNIQUE-FIXPOINT (Theorem 2's discussion) and the
    FO(NP) membership argument (Theorem 3's proof).
    """
    from .fo import forall_all, iff

    conjuncts: List[Formula] = []
    for pred in sorted(program.idb_predicates):
        head_vars = [
            Variable("_fp%s_%d" % (pred, i)) for i in range(program.arity(pred))
        ]
        body = theta_formula(program, pred, head_vars)
        conjuncts.append(
            forall_all(head_vars, iff(AtomF(pred, head_vars), body))
        )
    return and_(*conjuncts)


def program_to_ifp_definitions(
    program: Program,
) -> Dict[str, Tuple[Tuple[Variable, ...], Formula]]:
    """The program as a simultaneous-IFP system ``{pred: (vars, phi)}``.

    Feeding this to :func:`repro.logic.ifp.simultaneous_ifp` computes the
    same relations as the inflationary engine (property-tested).
    """
    out: Dict[str, Tuple[Tuple[Variable, ...], Formula]] = {}
    for pred in sorted(program.idb_predicates):
        head_vars = tuple(
            Variable("_x%s_%d" % (pred, i)) for i in range(program.arity(pred))
        )
        out[pred] = (head_vars, theta_formula(program, pred, head_vars))
    return out


def program_to_ifp(program: Program, args: Sequence) -> IFP:
    """A single-IDB program as one FO + IFP formula applied to ``args``.

    Raises
    ------
    ValueError
        For programs with several IDB predicates (use
        :func:`program_to_ifp_definitions` and simultaneous induction).
    """
    preds = sorted(program.idb_predicates)
    if len(preds) != 1:
        raise ValueError(
            "single-IFP translation needs exactly one IDB predicate, got %s"
            % (preds,)
        )
    pred = preds[0]
    head_vars = tuple(
        Variable("_x%s_%d" % (pred, i)) for i in range(program.arity(pred))
    )
    return IFP(pred, head_vars, theta_formula(program, pred, head_vars), args)


def existential_fo_to_program(
    formula: Formula, head_pred: str, head_vars: Sequence[Variable]
) -> Program:
    """Compile an existential FO operator into a DATALOG¬ program.

    ``formula`` defines one inflationary step for ``head_pred`` over the
    free variables ``head_vars``; it may use negation on atoms and
    equalities but no universal quantifier (after NNF).  Each DNF disjunct
    of the prenexed matrix becomes one rule.

    Raises
    ------
    ValueError
        If the prenex form contains a universal quantifier, or the formula
        has free variables outside ``head_vars``.
    """
    head_vars = list(head_vars)
    extra = free_variables(formula) - set(head_vars)
    if extra:
        raise ValueError(
            "formula has free variables %s beyond the head"
            % sorted(v.name for v in extra)
        )
    prefix, matrix = to_prenex(formula)
    if any(kind == "forall" for kind, _ in prefix):
        raise ValueError("formula is not existential: universal quantifier found")
    rules: List[Rule] = []
    for disjunct in matrix_to_dnf(matrix):
        body = []
        for sign, atom in disjunct:
            if isinstance(atom, AtomF):
                core_atom = Atom(atom.pred, atom.args)
                body.append(core_atom if sign else Negation(core_atom))
            else:  # EqF
                if sign:
                    body.append(Eq(atom.left, atom.right))
                else:
                    body.append(Neq(atom.left, atom.right))
        rules.append(Rule(Atom(head_pred, head_vars), body))
    if not rules:
        # The formula is unsatisfiable; emit a rule that can never fire.
        dummy = Variable("_never")
        rules.append(
            Rule(Atom(head_pred, head_vars), (Neq(dummy, dummy),))
        )
    return Program(rules, carrier=head_pred)
