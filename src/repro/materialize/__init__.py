"""Materialized-view maintenance: fixpoints kept live under EDB deltas.

The paper defines its semantics by *iterating to a fixpoint from
scratch*; a serving system cannot afford that on every base-fact
change.  This package turns the batch evaluator into a serving engine:

* :class:`~repro.materialize.delta.Delta` — per-relation insert/delete
  sets, applied with :meth:`repro.db.database.Database.apply_delta`;
* :mod:`~repro.materialize.counting` — exact derivation counting for
  non-recursive predicates;
* :mod:`~repro.materialize.dred` — Delete/Rederive for recursive
  components under stratified negation;
* :mod:`~repro.materialize.wellfounded_maint` — incremental alternating
  fixpoint: the three-valued well-founded model maintained by patching
  the ground program and running a ground-level DRed inside every
  ``A``-application layer, which opens live views to the
  *non-stratifiable* programs (win–move, odd cycles) the paper's
  fixpoint pathology section is about;
* :class:`~repro.materialize.view.MaterializedView` — the façade:
  ``view.apply(delta)`` returns a :class:`~repro.materialize.view.ChangeSet`
  and keeps ``view.result`` equal to a from-scratch recomputation
  (property-tested in ``tests/test_materialize.py`` and
  ``tests/test_wellfounded_maintain.py``).  Batching and transactions:
  ``view.apply_many(deltas)`` folds a batch through the
  :meth:`~repro.materialize.delta.Delta.compose` monoid into one
  maintenance pass, and ``view.rollback(n)`` unwinds the undo log of
  composed effective inverses.

Maintenance runs stratum-by-stratum over the dependency condensation —
the algorithmic counterpart of the stratified fixed-point structure
non-monotone operators force (deletion is where non-monotonicity bites:
retracting an EDB tuple can *grow* a negated stratum).  The well-founded
path swaps strata for alternation layers: anti-monotone as a whole,
monotone per ``A``-application, so the same Delete/Rederive argument
applies layer by layer.
"""

from .counting import CountingState
from .delta import Delta
from .dred import RecursiveState
from .view import ChangeSet, MaterializedView
from .wellfounded_maint import AlternatingState, undef_name

__all__ = [
    "AlternatingState",
    "ChangeSet",
    "CountingState",
    "Delta",
    "MaterializedView",
    "RecursiveState",
    "undef_name",
]
