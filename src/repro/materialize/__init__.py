"""Materialized-view maintenance: fixpoints kept live under EDB deltas.

The paper defines its semantics by *iterating to a fixpoint from
scratch*; a serving system cannot afford that on every base-fact
change.  This package turns the batch evaluator into a serving engine:

* :class:`~repro.materialize.delta.Delta` — per-relation insert/delete
  sets, applied with :meth:`repro.db.database.Database.apply_delta`;
* :mod:`~repro.materialize.counting` — exact derivation counting for
  non-recursive predicates;
* :mod:`~repro.materialize.dred` — Delete/Rederive for recursive
  components under stratified negation;
* :class:`~repro.materialize.view.MaterializedView` — the façade:
  ``view.apply(delta)`` returns a :class:`~repro.materialize.view.ChangeSet`
  and keeps ``view.result`` equal to a from-scratch recomputation
  (property-tested in ``tests/test_materialize.py``).

Maintenance runs stratum-by-stratum over the dependency condensation —
the algorithmic counterpart of the stratified fixed-point structure
non-monotone operators force (deletion is where non-monotonicity bites:
retracting an EDB tuple can *grow* a negated stratum).
"""

from .counting import CountingState
from .delta import Delta
from .dred import RecursiveState
from .view import ChangeSet, MaterializedView

__all__ = [
    "ChangeSet",
    "CountingState",
    "Delta",
    "MaterializedView",
    "RecursiveState",
]
