"""Counting-based maintenance for non-recursive predicates.

The classical counting algorithm (Gupta–Mumick–Subrahmanian): for a
predicate defined without recursion, keep for every derivable tuple the
*number of derivations* — pairs of a rule and a total assignment of the
rule's variables satisfying its body.  A change to the inputs then
maintains the counts exactly:

* derivations gained/lost are enumerated by the telescoping delta
  variants of :mod:`repro.materialize.variants`, each evaluated under a
  *total-binding* pseudo-head so the batch executor cannot collapse
  multiplicities with an existence-only projection;
* a tuple enters the view when its count rises from zero and leaves it
  when its count returns to zero — no over-deletion, no rederivation.

Counts are exact for negation too (through lower strata): a negated
literal is differentiated via the complement, so ``!P`` contributes a
gained derivation where ``P`` lost a tuple and vice versa.  What
counting cannot absorb is a change of the *universe* — every completion
variable quantifies over it, so universe growth multiplies derivation
spaces behind the literals' backs; the view layer detects that and
recomputes instead.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, List, Tuple

from ..core.planning.batch import solve_plan_table
from ..core.rules import Rule
from ..db.database import Database
from ..obs import TRACER
from ..parallel.shard import SHARD
from .delta import Tup
from .variants import (
    PlanCache,
    changeable_positions,
    delta_variant,
    head_projector,
    with_bindings_head,
)

Counts = Dict[Tup, int]


class CountingState:
    """Derivation counts for one non-recursively defined predicate.

    Parameters
    ----------
    pred, arity:
        The maintained predicate.
    rules:
        Its rules (every body predicate is EDB or strictly earlier in
        the maintenance order — never ``pred`` itself).
    plans:
        The shared :class:`~repro.materialize.variants.PlanCache`.
    """

    __slots__ = ("pred", "arity", "rules", "plans", "counts")

    def __init__(self, pred: str, arity: int, rules: List[Rule], plans: PlanCache) -> None:
        self.pred = pred
        self.arity = arity
        self.rules = rules
        self.plans = plans
        self.counts: Counts = {}

    # ------------------------------------------------------------------
    # Shared: count one plan's derivations into an accumulator
    # ------------------------------------------------------------------

    def _accumulate(self, rule: Rule, variant: Rule, interp: Database, into: Counts, sign: int) -> None:
        plan = self.plans.plan(with_bindings_head(variant))
        # stats=None: maintenance runs over alias/changeset relations
        # whose sizes describe deltas, not relations — recording them
        # would poison the adaptive planner's feedback.
        table = solve_plan_table(plan, interp, stats=None)
        if not table.rows:
            return
        project = head_projector(variant, plan)
        # Counter(map(...)) runs the whole derivation enumeration at C
        # speed; this is the innermost loop of every maintenance step.
        counted = Counter(map(project, table.rows))
        if sign > 0:
            into.update(counted)
        else:
            into.subtract(counted)

    # ------------------------------------------------------------------
    # Initialisation
    # ------------------------------------------------------------------

    def initialise(self, interp: Database) -> FrozenSet[Tup]:
        """Count every derivation from scratch; return the tuple set.

        ``interp`` holds the *actual* predicate names (the converged
        database plus lower predicates' values) — initialisation needs no
        old/new aliasing.
        """
        counts = Counter()
        for rule in self.rules:
            self._accumulate(rule, rule, interp, counts, +1)
        self.counts = dict(counts)
        return frozenset(counts)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def apply(
        self,
        interp: Database,
        changed: FrozenSet[str],
    ) -> Tuple[FrozenSet[Tup], FrozenSet[Tup]]:
        """Maintain the counts under the changes baked into ``interp``.

        ``interp`` supplies the alias relations (``P@old``/``P@new``/
        ``P@ins``/``P@del``) for every body predicate; ``changed`` names
        the predicates whose change sets are non-empty.  Returns the
        ``(inserted, deleted)`` tuple sets of the maintained predicate.
        """
        diff = Counter()
        # Sharded runs narrow the @ins/@del flips to this worker's slice
        # — each telescoping variant reads the differentiated flip exactly
        # once, so summing the per-shard diffs at the barrier reconstructs
        # the exact derivation-count delta.
        interp = SHARD.flip_sharded_interp(interp)
        with TRACER.span("counting.variants") as sp:
            for rule in self.rules:
                for position in changeable_positions(rule, changed):
                    gained = delta_variant(rule, position, gained=True)
                    lost = delta_variant(rule, position, gained=False)
                    self._accumulate(rule, gained, interp, diff, +1)
                    self._accumulate(rule, lost, interp, diff, -1)
            if sp:
                sp["pred"] = self.pred
                sp["rows_out"] = len(diff)
        diff = SHARD.merge_counter(diff, self.arity)
        if not diff:
            return frozenset(), frozenset()
        counts = self.counts
        inserted = set()
        deleted = set()
        for head, change in diff.items():
            if not change:
                continue
            old = counts.get(head, 0)
            new = old + change
            if new < 0:
                raise AssertionError(
                    "derivation count of %s%r fell below zero (%d)"
                    % (self.pred, head, new)
                )
            if new == 0:
                counts.pop(head, None)
                if old:
                    deleted.add(head)
            else:
                counts[head] = new
                if not old:
                    inserted.add(head)
        return frozenset(inserted), frozenset(deleted)

    def tuples(self) -> FrozenSet[Tup]:
        """The currently derivable tuples (count > 0)."""
        return frozenset(self.counts)

    def __repr__(self) -> str:
        return "CountingState(%s/%d, %d tuples, %d derivations)" % (
            self.pred,
            self.arity,
            len(self.counts),
            sum(self.counts.values()),
        )
