"""EDB deltas: per-relation insert/delete sets.

A :class:`Delta` is the unit of change the materialized-view subsystem
consumes: for each named relation, a set of tuples to insert and a set
to delete.  Deltas are immutable values (hashable, equality by content)
and deliberately know nothing about databases — applying one is
:meth:`repro.db.database.Database.apply_delta`, which returns a *new*
immutable database, carries the old relations' caches forward patched, and
drops plans compiled against the superseded database value from the
shared plan store.

A tuple may not appear on both sides of the same relation's change —
"insert and delete x" has no sequential meaning inside a single delta;
compose two deltas with :meth:`Delta.then` instead.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Iterator, Mapping, Tuple

Tup = Tuple[Any, ...]
Change = Tuple[FrozenSet[Tup], FrozenSet[Tup]]
"""Per-relation ``(inserts, deletes)``."""


class Delta:
    """An immutable set of per-relation insertions and deletions.

    Parameters
    ----------
    inserts:
        Mapping ``{relation name: iterable of tuples}`` to add.
    deletes:
        Mapping ``{relation name: iterable of tuples}`` to remove.

    Raises
    ------
    ValueError
        If some tuple is both inserted into and deleted from the same
        relation.
    """

    __slots__ = ("_changes", "_hash")

    def __init__(
        self,
        inserts: Mapping[str, Iterable[Tup]] = None,
        deletes: Mapping[str, Iterable[Tup]] = None,
    ) -> None:
        changes: Dict[str, Change] = {}
        for name, tuples in (inserts or {}).items():
            changes[name] = (frozenset(tuple(t) for t in tuples), frozenset())
        for name, tuples in (deletes or {}).items():
            ins = changes.get(name, (frozenset(), frozenset()))[0]
            dels = frozenset(tuple(t) for t in tuples)
            overlap = ins & dels
            if overlap:
                raise ValueError(
                    "delta inserts and deletes overlap on %s: %r"
                    % (name, sorted(overlap, key=repr)[:4])
                )
            changes[name] = (ins, dels)
        # Drop relations with no actual change so value equality is exact.
        self._changes = {
            name: change for name, change in changes.items() if change[0] or change[1]
        }
        self._hash = hash(frozenset(self._changes.items()))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls) -> "Delta":
        """The delta that changes nothing."""
        return cls()

    @classmethod
    def insert(cls, name: str, *tuples: Tup) -> "Delta":
        """A pure-insertion delta on one relation."""
        return cls(inserts={name: tuples})

    @classmethod
    def delete(cls, name: str, *tuples: Tup) -> "Delta":
        """A pure-deletion delta on one relation."""
        return cls(deletes={name: tuples})

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def items(self) -> Iterator[Tuple[str, Change]]:
        """Iterate ``(name, (inserts, deletes))`` pairs, sorted by name."""
        return iter(sorted(self._changes.items()))

    def relations(self) -> Tuple[str, ...]:
        """The names of the relations this delta touches, sorted."""
        return tuple(sorted(self._changes))

    def inserts(self, name: str) -> FrozenSet[Tup]:
        """The tuples inserted into ``name`` (empty when untouched)."""
        return self._changes.get(name, (frozenset(), frozenset()))[0]

    def deletes(self, name: str) -> FrozenSet[Tup]:
        """The tuples deleted from ``name`` (empty when untouched)."""
        return self._changes.get(name, (frozenset(), frozenset()))[1]

    def is_empty(self) -> bool:
        """True when the delta changes nothing."""
        return not self._changes

    def values(self) -> FrozenSet[Any]:
        """Every value occurring in some inserted tuple.

        Used to detect *universe growth*: an insert mentioning a value
        the database has never seen enlarges the quantification domain
        of every completion variable, which invalidates maintained
        derivation counts — the view falls back to recomputation there.
        """
        seen = set()
        for ins, _ in self._changes.values():
            for t in ins:
                seen.update(t)
        return frozenset(seen)

    # ------------------------------------------------------------------
    # Value operations
    # ------------------------------------------------------------------

    def normalize(self, db) -> "Delta":
        """The effective delta against ``db``: drop no-op changes.

        Insertions of tuples already present and deletions of tuples
        already absent are removed, so downstream maintenance sees only
        genuine changes.  Relations the database does not contain raise
        ``KeyError`` (same contract as ``apply_delta``).
        """
        inserts: Dict[str, FrozenSet[Tup]] = {}
        deletes: Dict[str, FrozenSet[Tup]] = {}
        for name, (ins, dels) in self._changes.items():
            existing = db[name].tuples
            eff_ins = ins - existing
            eff_dels = dels & existing
            if eff_ins:
                inserts[name] = eff_ins
            if eff_dels:
                deletes[name] = eff_dels
        return Delta(inserts=inserts, deletes=deletes)

    def then(self, other: "Delta") -> "Delta":
        """Sequential composition: this delta, then ``other``.

        ``db.apply_delta(a.then(b))`` yields the same relation contents
        as ``db.apply_delta(a).apply_delta(b)`` for any database the
        sequence is applicable to, and composition is associative — the
        delta algebra the batching and undo APIs are built on
        (property-tested in ``tests/test_delta_algebra.py``).  One
        deliberate asymmetry: a tuple that churns *within* the
        composition (inserted by ``a``, deleted by ``b``) cancels out
        entirely, so a fresh universe value it would have introduced
        never appears — whereas sequential application grows the
        universe permanently (universes never shrink).  That is the
        transaction reading: a value no tuple of the committed state
        mentions was never in the database.
        """
        names = set(self._changes) | set(other._changes)
        inserts: Dict[str, FrozenSet[Tup]] = {}
        deletes: Dict[str, FrozenSet[Tup]] = {}
        for name in names:
            ins1, del1 = self._changes.get(name, (frozenset(), frozenset()))
            ins2, del2 = other._changes.get(name, (frozenset(), frozenset()))
            inserts[name] = (ins1 - del2) | ins2
            deletes[name] = (del1 - ins2) | del2
        return Delta(inserts=inserts, deletes=deletes)

    def compose(self, other: "Delta") -> "Delta":
        """Alias of :meth:`then` — the delta monoid's operation.

        ``Delta.empty()`` is its identity;
        :meth:`MaterializedView.apply_many
        <repro.materialize.view.MaterializedView.apply_many>` folds a
        batch with it to run one maintenance pass for the whole batch.
        """
        return self.then(other)

    def inverse(self, db=None) -> "Delta":
        """The delta undoing this one (inserts and deletes swapped).

        The plain inverse exactly undoes an *effective* delta (one whose
        inserts were all absent and deletes all present).  Passing the
        pre-change ``db`` normalizes first, so
        ``db.apply_delta(d).apply_delta(d.inverse(db)) == db`` holds for
        arbitrary ``d`` — a non-effective insert must not be deleted on
        undo.  Universes never shrink on either application, so an
        inverse restores *contents*; the undo log of
        :class:`~repro.materialize.view.MaterializedView` is built from
        these.
        """
        effective = self if db is None else self.normalize(db)
        return Delta(
            inserts={n: d for n, (_, d) in effective._changes.items()},
            deletes={n: i for n, (i, _) in effective._changes.items()},
        )

    def restrict(self, names: Iterable[str]) -> "Delta":
        """The sub-delta touching only the given relations."""
        keep = set(names)
        return Delta(
            inserts={n: i for n, (i, _) in self._changes.items() if n in keep},
            deletes={n: d for n, (_, d) in self._changes.items() if n in keep},
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Delta):
            return NotImplemented
        return self._changes == other._changes

    def __hash__(self) -> int:
        return self._hash

    def __bool__(self) -> bool:
        return bool(self._changes)

    def __len__(self) -> int:
        return sum(len(i) + len(d) for i, d in self._changes.values())

    def __repr__(self) -> str:
        parts = ", ".join(
            "%s:+%d/-%d" % (name, len(ins), len(dels))
            for name, (ins, dels) in sorted(self._changes.items())
        )
        return "Delta(%s)" % (parts or "empty")
