"""Delete/Rederive (DRed) maintenance for recursive components.

Counting does not extend to recursion (a recursive tuple can support
itself through a cycle of derivations), so recursive strongly connected
components are maintained with Gupta–Mumick–Subrahmanian's DRed:

1. **Over-delete** — transitively delete every tuple with *some*
   derivation that used a retracted input: seeds come from the delta
   variants of the base changes (a positive lower literal that lost
   tuples, or a negated lower literal whose predicate *gained* tuples —
   the non-monotone flip the paper's semantics forces us to respect),
   then deletions propagate through the component's own positive
   recursion semi-naively.  Every over-deletion variant reads the *old*
   state away from the differentiated position: the derivations being
   invalidated existed before the change.
2. **Rederive** — over-deletion removes a superset of the truly dead
   tuples, so the survivors are a *sound under-approximation* of the new
   fixpoint; restarting the semi-naive least-fixpoint iteration from
   them (against the post-change inputs) converges to exactly the new
   fixpoint while re-deriving only what over-deletion lost.  Lower-level
   insertions ride the same iteration; on a pure-insertion update the
   over-deletion phase is skipped entirely and round 1 evaluates only
   the insertion delta variants, keeping the work proportional to the
   delta.

Within a component, negation only ever reads *lower* predicates — for
stratified views by stratification, for inflationary views because the
maintainable (semipositive) fragment negates EDB only.  That is the
algorithmic face of the stratum-by-stratum fixed-point structure the
paper's non-monotone operators demand: each component's operator is
monotone once the layers below it are frozen, so a least-fixpoint
restart from a sound under-approximation is exact.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from ..core.literals import Atom, Negation
from ..core.planning.batch import execute_plan
from ..core.rules import Rule
from ..db.database import Database
from ..db.relation import Relation
from ..obs import TRACER
from ..parallel.shard import SHARD
from .delta import Tup
from .variants import del_name, ins_name, new_name, old_name, PlanCache

IDBValues = Dict[str, Relation]
ChangePair = Tuple[FrozenSet[Tup], FrozenSet[Tup]]

DELETE_FRONTIER = "@dred_del"
INSERT_FRONTIER = "@dred_new"
"""Frontier alias suffixes for the component's own predicates."""


class RecursiveState:
    """DRed maintenance for one recursive component.

    Parameters
    ----------
    preds:
        The component's predicates with their arities.
    rules:
        Every rule whose head is in the component.  Positive body atoms
        may read the component itself; negated atoms never do
        (stratification / semipositivity).
    plans:
        The shared plan cache.
    """

    __slots__ = ("preds", "rules", "plans")

    def __init__(self, preds: Dict[str, int], rules: List[Rule], plans: PlanCache) -> None:
        self.preds = dict(preds)
        self.rules = rules
        self.plans = plans

    # ------------------------------------------------------------------
    # Variant construction
    # ------------------------------------------------------------------

    def _read(self, literal, suffix: str):
        """A literal reading base predicates under ``@old``/``@new``.

        Component predicates keep their plain names — they are bound to
        the evolving working values by the caller.
        """
        if isinstance(literal, Atom):
            if literal.pred in self.preds:
                return literal
            return Atom(literal.pred + suffix, literal.args)
        if isinstance(literal, Negation):
            atom = literal.atom
            assert atom.pred not in self.preds, (
                "negation inside a recursive component: !%s" % atom.pred
            )
            return Negation(Atom(atom.pred + suffix, atom.args))
        return literal

    def _variant(self, rule: Rule, position: int, pred_alias: str, suffix: str) -> Rule:
        """``rule`` with ``position`` reading ``pred_alias`` and the rest
        reading base predicates under ``suffix``."""
        lit = rule.body[position]
        atom = lit if isinstance(lit, Atom) else lit.atom
        body = [
            Atom(pred_alias, atom.args) if j == position else self._read(other, suffix)
            for j, other in enumerate(rule.body)
        ]
        return Rule(rule.head, body)

    def _comp_positions(self, rule: Rule) -> List[int]:
        """Positive body positions reading a component predicate."""
        return [
            i
            for i, lit in enumerate(rule.body)
            if isinstance(lit, Atom) and lit.pred in self.preds
        ]

    def _base_flips(self, rule: Rule, base_changes, killing: bool):
        """``(position, flip alias)`` pairs for base-level changes.

        ``killing=True`` yields the flips that can invalidate a
        derivation (positive literal lost tuples / negated literal's
        predicate gained them); ``killing=False`` the flips that can
        create one.
        """
        out = []
        for i, lit in enumerate(rule.body):
            if isinstance(lit, Atom) and lit.pred not in self.preds:
                change = base_changes.get(lit.pred)
                if change is None:
                    continue
                ins, dels = change
                if killing and dels:
                    out.append((i, del_name(lit.pred)))
                elif not killing and ins:
                    out.append((i, ins_name(lit.pred)))
            elif isinstance(lit, Negation):
                change = base_changes.get(lit.atom.pred)
                if change is None:
                    continue
                ins, dels = change
                if killing and ins:
                    out.append((i, ins_name(lit.atom.pred)))
                elif not killing and dels:
                    out.append((i, del_name(lit.atom.pred)))
        return out

    def _derive(self, variant: Rule, interp: Database) -> Set[Tup]:
        # stats=None: over-delete/rederive rounds run over frontier and
        # alias relations; their sizes are delta-shaped and must not
        # feed the adaptive planner's cardinality statistics.
        return execute_plan(self.plans.plan(variant), interp, stats=None)

    # ------------------------------------------------------------------
    # Phase 1: over-delete
    # ------------------------------------------------------------------

    def _over_delete(
        self,
        current: IDBValues,
        aliases: IDBValues,
        base_changes,
        universe,
        limit: int,
    ) -> Dict[str, Set[Tup]]:
        """Tuples with some old derivation through a retracted input."""
        deleted: Dict[str, Set[Tup]] = {p: set() for p in self.preds}
        # Sharded runs narrow the @ins/@del flip aliases to this worker's
        # slice — each seed variant reads a flip exactly once, so the
        # merged seeds cover every derivation exactly once.
        relations: Dict[str, Relation] = {
            name: SHARD.flip_shard(name, rel) for name, rel in aliases.items()
        }
        for pred, value in current.items():
            relations[pred] = value

        # Seeds: base-level killing flips, evaluated in the old state.
        interp = Database(universe, relations.values(), check=False)
        frontier: Dict[str, Set[Tup]] = {p: set() for p in self.preds}
        for rule in self.rules:
            for position, flip in self._base_flips(rule, base_changes, killing=True):
                variant = self._variant(rule, position, flip, old_name(""))
                hits = self._derive(variant, interp) & current[rule.head.pred].tuples
                frontier[rule.head.pred] |= hits
        frontier = SHARD.merge_tuple_map(frontier, self.preds)

        # Propagate deletions through the component's positive recursion:
        # each round differentiates one component position with the
        # newly deleted tuples, everything else still reading old values.
        rounds = 0
        while any(frontier.values()):
            for pred, hits in frontier.items():
                deleted[pred] |= hits
            rounds += 1
            if rounds > limit:
                raise AssertionError("DRed over-deletion exceeded its bound %d" % limit)
            # Each worker propagates only its shard of the frontier; the
            # next frontier is re-unioned so `deleted` and the stop test
            # stay replica-identical.
            for pred in self.preds:
                relations[pred + DELETE_FRONTIER] = Relation(
                    pred + DELETE_FRONTIER,
                    self.preds[pred],
                    SHARD.shard_tuples(pred, frontier[pred]),
                )
            interp = Database(universe, relations.values(), check=False)
            next_frontier: Dict[str, Set[Tup]] = {p: set() for p in self.preds}
            for rule in self.rules:
                for i in self._comp_positions(rule):
                    if not frontier.get(rule.body[i].pred):
                        continue
                    variant = self._variant(
                        rule, i, rule.body[i].pred + DELETE_FRONTIER, old_name("")
                    )
                    head = rule.head.pred
                    next_frontier[head] |= (
                        self._derive(variant, interp) & current[head].tuples
                    ) - deleted[head]
            frontier = SHARD.merge_tuple_map(next_frontier, self.preds)
        return deleted

    # ------------------------------------------------------------------
    # Phase 2 + 3: rederive from the survivors, semi-naively
    # ------------------------------------------------------------------

    def _refixpoint(
        self,
        surviving: IDBValues,
        aliases: IDBValues,
        rederiving: bool,
        base_changes,
        universe,
        limit: int,
    ) -> IDBValues:
        """The least fixpoint containing ``surviving`` over the new inputs."""
        current = dict(surviving)

        def interp_with(extra: List[Relation]) -> Database:
            # Flip aliases narrowed per shard (identity when sequential);
            # the full-rule variants of the rederiving branch read @new,
            # which passes through untouched.
            merged = {
                name: SHARD.flip_shard(name, rel) for name, rel in aliases.items()
            }
            merged.update({p: current[p] for p in self.preds})
            merged.update({r.name: r for r in extra})
            return Database(universe, merged.values(), check=False)

        if rederiving:
            # Some tuples were over-deleted: any of them might be
            # rederivable through surviving support, so round 1 is one
            # full consequence application over the new inputs.  Sharded
            # runs slice the (deterministically ordered) rule list.
            interp = interp_with([])
            derived: Dict[str, Set[Tup]] = {p: set() for p in self.preds}
            for rule in SHARD.rule_slice(self.rules):
                full = Rule(rule.head, [self._read(t, new_name("")) for t in rule.body])
                derived[rule.head.pred] |= self._derive(full, interp)
            derived = SHARD.merge_tuple_map(derived, self.preds)
            delta = {
                p: frozenset(derived[p]) - current[p].tuples for p in self.preds
            }
        else:
            # Pure insertion at the base: only the gained delta variants,
            # prefix and suffix both reading the new state (sound for set
            # semantics; anything already known is subtracted).
            interp = interp_with([])
            gained: Dict[str, Set[Tup]] = {p: set() for p in self.preds}
            for rule in self.rules:
                for position, flip in self._base_flips(rule, base_changes, killing=False):
                    variant = self._variant(rule, position, flip, new_name(""))
                    gained[rule.head.pred] |= self._derive(variant, interp)
            gained = SHARD.merge_tuple_map(gained, self.preds)
            delta = {
                p: frozenset(gained[p]) - current[p].tuples for p in self.preds
            }

        rounds = 0
        while any(delta.values()):
            rounds += 1
            if rounds > limit:
                raise AssertionError("DRed rederivation exceeded its bound %d" % limit)
            current = {
                p: current[p].union(Relation(p, self.preds[p], delta[p]))
                for p in self.preds
            }
            frontier = [
                Relation(
                    p + INSERT_FRONTIER,
                    self.preds[p],
                    SHARD.shard_tuples(p, delta[p]),
                )
                for p in self.preds
            ]
            interp = interp_with(frontier)
            derived = {p: set() for p in self.preds}
            for rule in self.rules:
                for i in self._comp_positions(rule):
                    if not delta.get(rule.body[i].pred):
                        continue
                    variant = self._variant(
                        rule, i, rule.body[i].pred + INSERT_FRONTIER, new_name("")
                    )
                    derived[rule.head.pred] |= self._derive(variant, interp)
            derived = SHARD.merge_tuple_map(derived, self.preds)
            delta = {
                p: frozenset(derived[p]) - current[p].tuples for p in self.preds
            }
        return current

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def apply(
        self,
        current: IDBValues,
        aliases: IDBValues,
        base_changes: Dict[str, ChangePair],
        universe,
    ) -> Tuple[IDBValues, Dict[str, ChangePair]]:
        """Maintain the component; return ``(new values, per-pred changes)``.

        ``current`` maps the component's predicates (plain names) to
        their pre-change values; ``aliases`` supplies ``P@old``,
        ``P@new``, ``P@ins`` and ``P@del`` relations for every base
        predicate the rules read; ``base_changes`` the effective
        ``(inserts, deletes)`` per changed base predicate.
        """
        n = len(universe)
        limit = sum(n ** a for a in self.preds.values()) + 1

        killing = any(
            self._base_flips(rule, base_changes, killing=True)
            for rule in self.rules
        )
        if killing:
            with TRACER.span("dred.overdelete") as sp:
                over = self._over_delete(
                    current, aliases, base_changes, universe, limit
                )
                if sp:
                    sp["rows_out"] = sum(len(s) for s in over.values())
        else:
            over = {p: set() for p in self.preds}
        rederiving = any(over.values())
        surviving = {
            p: current[p].difference(Relation(p, self.preds[p], over[p]))
            for p in self.preds
        }
        with TRACER.span("dred.rederive") as sp:
            final = self._refixpoint(
                surviving, aliases, rederiving, base_changes, universe, limit
            )
            if sp:
                sp["rows_out"] = sum(len(r) for r in final.values())
        changes: Dict[str, ChangePair] = {}
        for p in self.preds:
            before = current[p].tuples
            after = final[p].tuples
            changes[p] = (frozenset(after - before), frozenset(before - after))
        return final, changes
