"""Delta-rule construction shared by counting and DRed maintenance.

The generic machinery — ``@old``/``@new``/``@ins``/``@del`` aliasing,
the telescoping :func:`delta_variant` decomposition, and the
:class:`PlanCache` memo — lives in :mod:`repro.core.deltavariants`
since the grounder's incremental ground-program patching started using
it too (``core`` cannot import this package without a cycle); it is
re-exported here unchanged for the maintenance modules and external
callers.  What remains native to this module is the *counting* face:
total-binding pseudo-heads and head projectors, which only the
derivation-counting maintenance needs.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Dict

from ..core.deltavariants import (  # noqa: F401  (re-exported)
    DEL,
    INS,
    NEW,
    OLD,
    PlanCache,
    changeable_positions,
    del_name,
    delta_variant,
    ins_name,
    new_name,
    old_name,
)
from ..core.literals import Atom
from ..core.planning import RulePlan
from ..core.rules import Rule
from ..core.terms import Variable

# ----------------------------------------------------------------------
# Counting needs total bindings: give the rule a pseudo-head over all
# its variables (the grounder's trick), so the batch executor never
# projects a completion variable away with an existence-only check.
# ----------------------------------------------------------------------

BINDINGS_HEAD = "@bindings"
"""Pseudo-head predicate of total-binding plans."""


def with_bindings_head(rule: Rule) -> Rule:
    """The rule under a pseudo-head carrying every variable (sorted)."""
    variables = sorted(rule.variables(), key=lambda v: v.name)
    return Rule(Atom(BINDINGS_HEAD, variables), rule.body)


def head_projector(rule: Rule, plan: RulePlan):
    """A ``row -> head tuple`` projector for a pseudo-head plan of ``rule``.

    ``plan`` must be the compiled :func:`with_bindings_head` variant;
    its schema binds every rule variable, so the original head is a pure
    column/constant projection of each row.  The common all-variable
    head compiles to a bare :func:`operator.itemgetter` — this projector
    runs once per derivation, the innermost loop of counting.
    """
    column: Dict[Variable, int] = {v: i for i, v in enumerate(plan.schema)}
    if rule.head.args and all(isinstance(a, Variable) for a in rule.head.args):
        cols = [column[a] for a in rule.head.args]
        if len(cols) == 1:
            get = itemgetter(cols[0])
            return lambda row: (get(row),)
        return itemgetter(*cols)
    getters = []
    for arg in rule.head.args:
        if isinstance(arg, Variable):
            getters.append((False, column[arg]))
        else:
            getters.append((True, arg.value))
    getters = tuple(getters)

    def project(row):
        return tuple(
            payload if is_const else row[payload] for is_const, payload in getters
        )

    return project
