"""Materialized views: fixpoints kept live under EDB deltas.

:class:`MaterializedView` wraps a program, a database and one of the
repo's two total-order semantics and keeps the corresponding
:class:`~repro.core.semantics.base.EvaluationResult` continuously up to
date as :class:`~repro.materialize.delta.Delta`\\ s stream in — without
recomputing the fixpoint from scratch on every base-fact change.

Maintenance is organised stratum-by-stratum over the condensation of
the predicate dependency graph, processed in topological order:

* a **non-recursive** component (a singleton SCC without a self-loop)
  is maintained by exact derivation counting
  (:mod:`repro.materialize.counting`);
* a **recursive** component is maintained by Delete/Rederive
  (:mod:`repro.materialize.dred`).

This component structure is the algorithmic counterpart of the
fixed-point theory the paper leans on: the program's operator is
non-monotone as a whole (a retracted EDB tuple can *grow* a negated
stratum), but freezing the layers below a component makes its operator
monotone again — which is exactly what lets DRed restart a least
fixpoint from the over-deletion survivors and get the right answer.

Two cases fall back to honest recomputation (still through the view
API, still producing a changeset):

* **universe growth** — an inserted tuple mentioning a never-seen value
  enlarges the domain every completion variable quantifies over, behind
  the backs of all maintained counts;
* **inflationary views of non-semipositive programs** — ``Theta^infinity``
  is defined by its iteration history, not by any fixpoint equation
  (Section 4's warning: the limit need not be a fixpoint at all), so
  there is nothing stratum-shaped to maintain.  Semipositive programs
  induce a monotone operator, for which the inflationary semantics *is*
  the least fixpoint, and those are maintained exactly like a one-layer
  stratified program.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Dict, FrozenSet, Iterable, List, Tuple, Union

from ..analysis.dependency import DependencyGraph
from ..core.grounding import GroundAtom
from ..core.operator import as_interpretation
from ..core.program import Program
from ..core.semantics.base import EvaluationResult, is_semipositive
from ..core.semantics.incremental import incremental_inflationary_semantics
from ..core.semantics.inflationary import inflationary_semantics
from ..core.semantics.stratified import StratifiedResult, stratified_semantics
from ..core.semantics.wellfounded import WellFoundedResult
from ..db.database import Database
from ..db.relation import Relation
from ..obs import RECORDER, TRACER
from .counting import CountingState
from .delta import Delta, Tup
from .dred import DELETE_FRONTIER, INSERT_FRONTIER, RecursiveState
from .variants import PlanCache, del_name, ins_name, new_name, old_name
from .wellfounded_maint import AlternatingState, undef_name

ChangePair = Tuple[FrozenSet[Tup], FrozenSet[Tup]]

SEMANTICS = ("stratified", "inflationary", "wellfounded")


class ChangeSet:
    """What one :meth:`MaterializedView.apply` call changed.

    Maps every touched predicate — the EDB relations the delta itself
    moved and every IDB predicate whose value moved in response — to its
    inserted and deleted tuple sets.  Empty per-relation sets are not
    recorded.
    """

    __slots__ = ("inserted", "deleted")

    def __init__(
        self,
        inserted: Dict[str, FrozenSet[Tup]] = None,
        deleted: Dict[str, FrozenSet[Tup]] = None,
    ) -> None:
        self.inserted = {k: frozenset(v) for k, v in (inserted or {}).items() if v}
        self.deleted = {k: frozenset(v) for k, v in (deleted or {}).items() if v}

    @classmethod
    def from_changes(cls, changes: Dict[str, ChangePair]) -> "ChangeSet":
        return cls(
            inserted={n: ins for n, (ins, _) in changes.items()},
            deleted={n: dels for n, (_, dels) in changes.items()},
        )

    def relations(self) -> Tuple[str, ...]:
        """Every relation this changeset touches, sorted."""
        return tuple(sorted(set(self.inserted) | set(self.deleted)))

    def is_empty(self) -> bool:
        """True when nothing changed."""
        return not self.inserted and not self.deleted

    def __len__(self) -> int:
        return sum(len(v) for v in self.inserted.values()) + sum(
            len(v) for v in self.deleted.values()
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChangeSet):
            return NotImplemented
        return self.inserted == other.inserted and self.deleted == other.deleted

    def __hash__(self) -> int:
        # Content hash consistent with __eq__ (defining __eq__ alone had
        # silently made instances unhashable); the server's subscription
        # fan-out dedupes changesets by it.
        return hash(
            (
                frozenset(self.inserted.items()),
                frozenset(self.deleted.items()),
            )
        )

    def __repr__(self) -> str:
        parts = ", ".join(
            "%s:+%d/-%d"
            % (name, len(self.inserted.get(name, ())), len(self.deleted.get(name, ())))
            for name in self.relations()
        )
        return "ChangeSet(%s)" % (parts or "empty")

    def format(self) -> str:
        """A deterministic multi-line rendering (the CLI's output)."""
        lines: List[str] = []
        for name in self.relations():
            ins = self.inserted.get(name, frozenset())
            dels = self.deleted.get(name, frozenset())
            lines.append("%s: +%d -%d" % (name, len(ins), len(dels)))
            for t in sorted(ins, key=repr):
                lines.append("  + " + ", ".join(str(v) for v in t))
            for t in sorted(dels, key=repr):
                lines.append("  - " + ", ".join(str(v) for v in t))
        return "\n".join(lines) if lines else "(no change)"


class _Component:
    """One maintained condensation component, with its reading set."""

    __slots__ = ("state", "preds", "base_preds", "recursive")

    def __init__(self, state, preds, base_preds, recursive) -> None:
        self.state = state
        self.preds = preds
        self.base_preds = base_preds
        self.recursive = recursive


class MaterializedView:
    """A live fixpoint: apply EDB deltas, read the maintained result.

    Parameters
    ----------
    program:
        The DATALOG¬ program.
    db:
        The initial database.  Must contain every EDB relation a delta
        will later touch.
    semantics:
        ``"stratified"`` (raises
        :class:`~repro.core.semantics.stratified.NotStratifiableError`
        for programs with recursion through negation),
        ``"inflationary"`` (total; maintained incrementally when the
        program is semipositive, recomputed per delta otherwise), or
        ``"wellfounded"`` (accepts *every* DATALOG¬ program — the
        non-stratifiable workload class included; ``result`` is the
        three-valued
        :class:`~repro.core.semantics.wellfounded.WellFoundedResult`,
        maintained by running DRed inside the alternating fixpoint —
        see :mod:`repro.materialize.wellfounded_maint`).
    undo_limit:
        How many applied updates the undo log retains for
        :meth:`rollback` (oldest entries are dropped beyond it, so a
        long-lived serving view's memory stays bounded under endless
        update streams).  ``None`` retains everything.
    parallel:
        ``N > 0`` maintains the view inside a pool of ``N`` sharded
        worker processes (see :mod:`repro.parallel`): every worker holds
        a full replica and runs the unchanged maintenance code with
        frontier/flip work narrowed to its shard; the parent mirrors the
        result from the reported changesets.  ``0`` (the default) keeps
        everything in-process.  Ignored when process forking is
        unavailable.
    """

    UNDO_LIMIT = 1024
    """Default undo-log depth: plenty for interactive sessions, bounded
    for serving streams."""

    def __init__(
        self,
        program: Program,
        db: Database,
        semantics: str = "stratified",
        undo_limit: "int | None" = UNDO_LIMIT,
        parallel: int = 0,
    ) -> None:
        if semantics not in SEMANTICS:
            raise ValueError(
                "unknown semantics %r; expected one of %s" % (semantics, SEMANTICS)
            )
        self.program = program
        self.semantics = semantics
        self._db = db
        self._pending: Dict[str, ChangePair] = {}
        self._undo: List[Delta] = []
        self._undo_limit = undo_limit
        self._wf: AlternatingState = None
        self._par = None
        if parallel:
            from ..parallel.pool import fork_available
            from ..parallel.shard import SHARD

            if fork_available() and not SHARD.active:
                from ..parallel.replica import ViewBacking

                self._par = ViewBacking(
                    self, program, db, semantics, undo_limit, parallel
                )
                self._maintainable = self._par.maintainable
                self._result = self._par.initial_result()
                self.applied = 0
                self.recomputes = 0
                return
        if semantics == "stratified":
            self._maintainable = True
            self._result: Union[EvaluationResult, WellFoundedResult] = (
                stratified_semantics(program, db)
            )
        elif semantics == "wellfounded":
            self._maintainable = True
            self._wf = AlternatingState(program, db)
            self._result = self._wf_result(db)
        else:
            self._maintainable = is_semipositive(program)
            self._result = inflationary_semantics(program, db)
        self.applied = 0
        self.recomputes = 0
        if self._maintainable and semantics != "wellfounded":
            self._build_maintenance()

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    @property
    def db(self) -> Database:
        """The current (post-delta) database."""
        return self._db

    @property
    def result(self) -> Union[EvaluationResult, WellFoundedResult]:
        """The maintained evaluation result over the current database.

        For ``wellfounded`` views this is the three-valued
        :class:`~repro.core.semantics.wellfounded.WellFoundedResult`
        (``true``/``undefined`` atom sets); the two-valued semantics
        return an :class:`~repro.core.semantics.base.EvaluationResult`.

        Head-only predicates — the top of the dependency order, often
        the largest relations — are materialised lazily here: ``apply``
        returns their changes in the changeset immediately and defers
        rebuilding the (possibly huge) relation value until something
        actually reads it.
        """
        if self._pending:
            idb = dict(self._result.idb)
            for pred, (ins, dels) in self._pending.items():
                idb[pred] = idb[pred].evolve(ins, dels)
            self._pending = {}
            self._result = self._with_idb(self._db, idb)
        return self._result

    def relation(self, pred: str) -> Relation:
        """The maintained value of an IDB predicate.

        For ``wellfounded`` views this is the *true* partition;
        ``result.undefined_idb()`` exposes the undefined one.
        """
        if self.semantics == "wellfounded":
            return self.result.true_idb()[pred]
        return self.result.idb[pred]

    @property
    def undo_depth(self) -> int:
        """How many applied updates :meth:`rollback` can still undo.

        The undo log records *effective* updates only: an apply whose
        delta normalized to nothing changed no state, pushed no entry,
        and is not a rollback step.  Callers pairing applies with
        rollbacks should count this property, not their ``apply`` calls.
        """
        return len(self._undo)

    def __repr__(self) -> str:
        return "MaterializedView(%s, %d updates, %d recomputes, %r)" % (
            self.semantics,
            self.applied,
            self.recomputes,
            self._db,
        )

    # ------------------------------------------------------------------
    # Maintenance state
    # ------------------------------------------------------------------

    def _build_maintenance(self) -> None:
        program = self.program
        small = set()
        for pred in program.predicates:
            small.add(ins_name(pred))
            small.add(del_name(pred))
            small.add(pred + DELETE_FRONTIER)
            small.add(pred + INSERT_FRONTIER)
        self._plans = PlanCache(frozenset(small))

        graph = DependencyGraph(program)
        self._components: List[_Component] = []
        interp = as_interpretation(program, self._db, self._result.idb)
        for comp in reversed(graph.sccs()):  # topological: dependencies first
            preds = {p: program.arity(p) for p in comp}
            rules = [r for r in program.rules if r.head.pred in comp]
            base_preds = frozenset(
                pred for r in rules for pred in r.body_predicates()
            ) - frozenset(comp)
            recursive = len(comp) > 1 or any(
                e.target in comp for p in comp for e in graph.successors(p)
            )
            if recursive:
                state = RecursiveState(preds, rules, self._plans)
            else:
                (pred,) = comp
                state = CountingState(pred, preds[pred], rules, self._plans)
                derived = state.initialise(interp)
                if derived != self._result.idb[pred].tuples:
                    raise AssertionError(
                        "counting initialisation of %s disagrees with the "
                        "evaluated fixpoint" % pred
                    )
            self._components.append(
                _Component(state, frozenset(comp), base_preds, recursive)
            )

        # Persistent @old/@new alias relations for every predicate some
        # rule body reads: the objects *evolve* across updates (rather
        # than being rebuilt), so their cached indexes and (keyed)
        # complements are patched with each delta — negation-heavy
        # maintenance reuses them wholesale.  Head-only predicates (the
        # top of the dependency order, often the largest relations) feed
        # nothing, so they get no aliases and their changes are only
        # echoed into the changeset.
        read = set()
        for rule in program.rules:
            read |= rule.body_predicates()
        self._aliases: Dict[str, Relation] = {}
        for pred in sorted(read & program.predicates):
            if pred in program.idb_predicates:
                value = self._result.idb[pred]
            else:
                value = self._db.get(pred) or Relation.empty(pred, program.arity(pred))
            self._aliases[old_name(pred)] = value.with_name(old_name(pred))
            self._aliases[new_name(pred)] = value.with_name(new_name(pred))

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------

    def apply(self, delta: Delta) -> ChangeSet:
        """Apply an EDB delta; return everything that changed.

        The delta may only touch the program's EDB relations; tuple
        arities are validated against the database schema before any
        state is modified.  The effective inverse is pushed onto the
        undo log (see :meth:`rollback`); a no-op delta (nothing
        effective against the current contents) changes nothing and
        pushes nothing.
        """
        return self._apply(delta, record_undo=True)

    def apply_many(self, deltas: Iterable[Delta]) -> ChangeSet:
        """Apply a batch of deltas in one maintenance pass.

        The deltas are folded with :meth:`Delta.compose
        <repro.materialize.delta.Delta.compose>` — sequentially
        equivalent by the composition law — so maintenance runs *once*
        for the whole batch instead of once per delta, and tuples that
        churn within the batch (inserted then deleted, or vice versa)
        cost nothing.  The returned changeset is the batch's *net*
        effect; the undo log gains a single entry — none when the batch
        composes to a no-op — so ``rollback(1)`` undoes the whole batch
        (the transaction reading).  That reading
        extends to the universe: a fresh value mentioned only by tuples
        that churn away inside the batch never enters the database —
        sequential applies would have grown the universe permanently,
        which under active-domain completion can even change unsafe
        rules' answers.  Batches are the committed state's semantics.
        """
        composed = Delta.empty()
        for delta in deltas:
            composed = composed.compose(delta)
        return self._apply(composed, record_undo=True)

    def rollback(self, n: int = 1) -> ChangeSet:
        """Undo the last ``n`` applied updates (deltas or batches).

        The undo log stores the effective inverse of every *effective*
        applied update (no-op applies record nothing — see
        :attr:`undo_depth`); rolling back composes the last ``n`` in
        reverse order and applies the result through the ordinary
        maintenance path — one pass, however many updates unwind.
        Rolled-back entries are consumed (no redo).  Universes never
        shrink, so a rollback restores relation *contents*; it cannot
        trigger the universe-growth recompute.
        """
        if n <= 0:
            return ChangeSet()
        if n > len(self._undo):
            raise ValueError(
                "cannot roll back %d updates; undo log holds %d"
                % (n, len(self._undo))
            )
        composed = Delta.empty()
        for inverse in reversed(self._undo[-n:]):
            composed = composed.compose(inverse)
        changeset = self._apply(composed, record_undo=False)
        # Entries are consumed only once the rollback landed — same
        # exception contract as _apply's own bookkeeping.
        del self._undo[-n:]
        return changeset

    def _apply(self, delta: Delta, record_undo: bool) -> ChangeSet:
        if not (RECORDER.enabled or TRACER.enabled):
            return self._apply_inner(delta, record_undo)
        started = time.perf_counter()
        recomputed_before = self.recomputes
        with TRACER.span("view.apply") as sp:
            changeset = self._apply_inner(delta, record_undo)
            if sp:
                sp["semantics"] = self.semantics
                sp["delta"] = len(delta)
                sp["rows_out"] = len(changeset)
                sp["recomputed"] = self.recomputes > recomputed_before
        if RECORDER.enabled:
            RECORDER.inc("repro_view_applies_total")
            if self.recomputes > recomputed_before:
                RECORDER.inc("repro_view_recomputes_total")
            RECORDER.observe(
                "repro_view_apply_seconds", time.perf_counter() - started
            )
            RECORDER.observe("repro_maint_delta_size", len(delta))
        return changeset

    def _apply_inner(self, delta: Delta, record_undo: bool) -> ChangeSet:
        if self._par is not None:
            # Sharded view: validation/normalization/bookkeeping mirror
            # the sequential path below; maintenance runs in the pool.
            return self._par.apply_inner(delta, record_undo)
        self._validate(delta)
        effective = delta.normalize(self._db)
        if effective.is_empty():
            return ChangeSet()
        new_db = self._db.apply_delta(effective)
        growth = not (effective.values() <= self._db.universe)
        if self.semantics == "wellfounded":
            if growth:
                changeset = self._recompute_wellfounded(new_db, effective)
            else:
                changeset = self._maintain_wellfounded(new_db, effective)
        elif not self._maintainable or growth:
            changeset = self._recompute(new_db, effective)
        else:
            changeset = self._maintain(new_db, effective)
        # Book-keeping only after maintenance landed: if maintenance
        # raises, the view's db/result/undo log stay pre-update (the
        # wellfounded path additionally rebuilds its in-place-mutated
        # alternation state), so the log never records an update that
        # did not happen.
        self.applied += 1
        if record_undo:
            self._undo.append(effective.inverse())
            if self._undo_limit is not None and len(self._undo) > self._undo_limit:
                del self._undo[: len(self._undo) - self._undo_limit]
        return changeset

    def validate_delta(self, delta: Delta) -> None:
        """Check a delta against the view's schema without applying it.

        Raises exactly what :meth:`apply` would raise before touching any
        state — the server uses this to reject a bad delta at submit
        time, before it is folded into a batch whose other writers would
        otherwise share the failure.
        """
        self._validate(delta)

    def _validate(self, delta: Delta) -> None:
        idb = self.program.idb_predicates
        for name in delta.relations():
            if name in idb:
                raise ValueError(
                    "delta touches %r, an IDB predicate of the program — "
                    "IDB relations are maintained, not written" % name
                )
            rel = self._db.get(name)
            if rel is None:
                raise KeyError(
                    "delta names relation %r which is not in the database" % name
                )
            for t in delta.inserts(name) | delta.deletes(name):
                if len(t) != rel.arity:
                    raise ValueError(
                        "delta tuple %r has length %d, expected arity %d for %s"
                        % (t, len(t), rel.arity, name)
                    )

    # -- recomputation fallback ----------------------------------------

    def _recompute(self, new_db: Database, effective: Delta) -> ChangeSet:
        self.recomputes += 1
        old_idb = self.result.idb  # materialises any deferred changes first
        if self.semantics == "stratified":
            result: EvaluationResult = stratified_semantics(self.program, new_db)
        else:
            result = incremental_inflationary_semantics(self.program, new_db)
        changes: Dict[str, ChangePair] = {
            name: (effective.inserts(name), effective.deletes(name))
            for name in effective.relations()
        }
        for pred in self.program.idb_predicates:
            before = old_idb[pred].tuples
            after = result.idb[pred].tuples
            changes[pred] = (frozenset(after - before), frozenset(before - after))
        self._db = new_db
        self._result = result
        if self._maintainable:
            self._build_maintenance()  # counts and aliases over the new state
        return ChangeSet.from_changes(changes)

    # -- the well-founded (three-valued) paths -------------------------

    def _wf_result(self, db: Database) -> WellFoundedResult:
        return WellFoundedResult(
            program=self.program,
            db=db,
            true=frozenset(self._wf.true),
            undefined=frozenset(self._wf.possible - self._wf.true),
            rounds=self._wf.rounds,
        )

    def _wf_changes(
        self, old: WellFoundedResult, new: WellFoundedResult, effective: Delta
    ) -> ChangeSet:
        """The EDB echo plus per-predicate true/undefined partition diffs.

        True-partition changes are recorded under the predicate's own
        name; undefined-partition changes under ``pred@undef`` (the
        ``@`` marker keeps them out of any parseable predicate's way).
        The false partition is the complement of the other two over an
        unchanged atom space, so its changes are implied.
        """
        changes: Dict[str, ChangePair] = dict(effective.items())

        def record(key_of, before: FrozenSet[GroundAtom], after: FrozenSet[GroundAtom]) -> None:
            moved: Dict[str, Tuple[set, set]] = {}
            for pred, values in after - before:
                moved.setdefault(key_of(pred), (set(), set()))[0].add(values)
            for pred, values in before - after:
                moved.setdefault(key_of(pred), (set(), set()))[1].add(values)
            for key, (ins, dels) in moved.items():
                changes[key] = (frozenset(ins), frozenset(dels))

        record(lambda p: p, old.true, new.true)
        record(undef_name, old.undefined, new.undefined)
        return ChangeSet.from_changes(changes)

    def _ensure_wf(self) -> AlternatingState:
        """The alternating state, rebuilt lazily after an invalidation.

        ``_wf`` is set to ``None`` when an exception escaped mid-patch;
        the rebuild happens here, on the next update, rather than inside
        the exception handler — an interrupt must surface immediately,
        and a rebuild that itself dies must not leave the half-patched
        state behind (``None`` stays ``None`` until a rebuild finishes).
        """
        if self._wf is None:
            self._wf = AlternatingState(self.program, self._db)
        return self._wf

    def _maintain_wellfounded(self, new_db: Database, effective: Delta) -> ChangeSet:
        old = self._result
        wf = self._ensure_wf()
        try:
            moved = wf.apply(new_db, dict(effective.items()))
        except BaseException:
            # The alternating state mutates in place (aliases, instance
            # counts, layer sets); an exception mid-patch — even an
            # interrupt — must not leave a half-patched state serving
            # wrong models behind an unchanged view façade.  Invalidate
            # it (lazy rebuild on next use) and let the error surface.
            self._wf = None
            raise
        self._db = new_db
        if not moved:
            # No layer's value changed: reuse the partitions (O(1)) and
            # echo only the EDB change — the serving path's common case.
            self._result = replace(old, db=new_db)
            return ChangeSet.from_changes(dict(effective.items()))
        self._result = self._wf_result(new_db)
        return self._wf_changes(old, self._result, effective)

    def _recompute_wellfounded(self, new_db: Database, effective: Delta) -> ChangeSet:
        self.recomputes += 1
        old = self._result
        self._wf = AlternatingState(self.program, new_db)
        self._db = new_db
        self._result = self._wf_result(new_db)
        return self._wf_changes(old, self._result, effective)

    # -- the incremental path ------------------------------------------

    def _maintain(self, new_db: Database, effective: Delta) -> ChangeSet:
        program = self.program
        universe = new_db.universe  # == the old universe (no growth here)
        arity = program.arity

        changes: Dict[str, ChangePair] = {
            name: (effective.inserts(name), effective.deletes(name))
            for name in effective.relations()
        }
        change_rels: Dict[str, Relation] = {}

        def publish(name: str, ins: FrozenSet[Tup], dels: FrozenSet[Tup]) -> None:
            """Record a change and refresh the @new/@ins/@del aliases.

            Relations the program never reads (deltas on them are legal)
            have no aliases and need none — the change is echoed only.
            """
            changes[name] = (ins, dels)
            key = new_name(name)
            if key not in self._aliases:
                return
            self._aliases[key] = self._aliases[key].evolve(ins, dels)
            change_rels[ins_name(name)] = Relation(ins_name(name), arity(name), ins)
            change_rels[del_name(name)] = Relation(del_name(name), arity(name), dels)

        for name in effective.relations():
            publish(name, effective.inserts(name), effective.deletes(name))

        idb = dict(self._result.idb)
        for component in self._components:
            changed_below = frozenset(
                n for n, (ins, dels) in changes.items() if ins or dels
            )
            if not (component.base_preds & changed_below):
                continue
            with TRACER.span("maint.component") as sp:
                if sp:
                    sp["preds"] = ", ".join(sorted(component.preds))
                    sp["backend"] = (
                        "dred" if component.recursive else "counting"
                    )
                if component.recursive:
                    current = {p: idb[p] for p in component.preds}
                    base_changes = {
                        n: changes[n]
                        for n in component.base_preds & changed_below
                    }
                    aliases = dict(self._aliases)
                    aliases.update(change_rels)
                    final, comp_changes = component.state.apply(
                        current, aliases, base_changes, universe
                    )
                    moved = 0
                    for pred, (ins, dels) in comp_changes.items():
                        idb[pred] = final[pred].with_name(pred)
                        if ins or dels:
                            moved += len(ins) + len(dels)
                            publish(pred, ins, dels)
                    if sp:
                        sp["rows_out"] = moved
                else:
                    interp = Database(
                        universe,
                        list(self._aliases.values()) + list(change_rels.values()),
                        check=False,
                    )
                    ins, dels = component.state.apply(interp, changed_below)
                    if ins or dels:
                        pred = component.state.pred
                        if new_name(pred) in self._aliases:
                            idb[pred] = idb[pred].evolve(ins, dels)
                        else:
                            # Head-only predicate: nothing reads its relation
                            # during maintenance (the counting state is the
                            # authority), so defer the — possibly huge —
                            # relation rebuild until ``result`` is read.
                            self._defer(pred, ins, dels)
                        publish(pred, ins, dels)
                    if sp:
                        sp["rows_out"] = len(ins) + len(dels)

        # The next update's pre-change state is this update's post-change
        # state: catch the @old aliases up by the same deltas.
        for name, (ins, dels) in changes.items():
            if ins or dels:
                key = old_name(name)
                if key in self._aliases:
                    self._aliases[key] = self._aliases[key].evolve(ins, dels)

        self._db = new_db
        self._result = self._with_idb(new_db, idb)
        return ChangeSet.from_changes(changes)

    def _defer(self, pred: str, ins: FrozenSet[Tup], dels: FrozenSet[Tup]) -> None:
        """Queue a head-only predicate's change for lazy materialisation.

        Changes compose sequentially (``Delta.then`` algebra), so the
        stored relation plus the pending pair always equals the true
        current value the counting state maintains.
        """
        old_ins, old_dels = self._pending.get(pred, (frozenset(), frozenset()))
        self._pending[pred] = (
            (old_ins - dels) | ins,
            (old_dels - ins) | dels,
        )

    def _with_idb(self, db: Database, idb) -> EvaluationResult:
        """The previous result object carried over to the new state."""
        old = self._result
        if isinstance(old, StratifiedResult):
            return StratifiedResult(
                program=old.program,
                db=db,
                idb=idb,
                rounds=old.rounds,
                engine=old.engine,
                trace=None,
                strata=old.strata,
            )
        return EvaluationResult(
            program=old.program,
            db=db,
            idb=idb,
            rounds=old.rounds,
            engine=old.engine,
            trace=None,
        )
