"""Incremental alternating-fixpoint maintenance for well-founded views.

Van Gelder's alternating fixpoint evaluates the well-founded model of a
DATALOG¬ program as iterated applications of the anti-monotone
*stability operator* ``A``::

    A(I) = least model of the positive reduct where ``not n`` holds
           iff ``n`` is not in I

producing the layer sequence ``P_1 = A(∅), T_1 = A(P_1), P_2 = A(T_1),
...`` whose even sublayers increase to ``true = lfp(A∘A)`` and odd
sublayers decrease to ``possible = gfp(A∘A)``.  Each layer is a *least
fixpoint of a positive program* — the reduct of the ground program by
the previous layer — which is exactly the shape Delete/Rederive
maintains (approximation-fixpoint-theory reading: the paper's
non-monotone operator decomposes into monotone-per-layer applications).
This module exploits that structure to keep the three-valued model live
under EDB deltas:

* the program is grounded **once** and patched per update
  (:class:`~repro.core.grounding.LiveGroundProgram`): the delta arrives
  here as a set of ground rules added and removed;
* every layer of the converged alternation is kept as a live sub-view
  (:class:`LayerState`): its least model is maintained by a ground-level
  DRed — over-delete through rules a removed instance or a reference
  insertion deactivated, then restart the least fixpoint from the
  survivors — with the *reference* deltas cascading from the previous
  layer's own change;
* when the walk leaves the alternation unconverged (an update changed
  the undefined region's support structure, lengthening the
  alternation), the missing tail layers are recomputed honestly from
  scratch — the fallback is *localised to the new layers* instead of
  discarding the whole fixpoint; a shortened alternation is detected by
  the convergence scan and the stale tail dropped.

Universe growth cannot be patched (every completion variable of the
grounding quantifies over the universe), so
:class:`repro.materialize.view.MaterializedView` rebuilds the whole
state then — the same honest-recompute contract as the counting/DRed
semantics.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Mapping, Set, Tuple

from ..core.grounding import GroundAtom, GroundRule, LiveGroundProgram
from ..core.program import Program
from ..db.database import Database
from ..obs import RECORDER, TRACER
from .delta import Tup

ChangePair = Tuple[FrozenSet[Tup], FrozenSet[Tup]]

UNDEF = "@undef"
"""Suffix naming a predicate's *undefined* partition in changesets."""


def undef_name(pred: str) -> str:
    """The changeset key for ``pred``'s undefined-partition changes."""
    return pred + UNDEF


class GroundIndex:
    """Adjacency indexes over the live ground-rule set.

    Shared by every layer: maps each ground atom to the rules reading it
    positively (``by_pos``), reading it under negation (``by_neg``) and
    heading it (``by_head``).  Positive occurrences are indexed per
    *distinct* atom, so a rule repeating an atom is visited once per
    trigger.
    """

    __slots__ = ("rules", "by_head", "by_pos", "by_neg")

    def __init__(self, rules: Iterable[GroundRule]) -> None:
        self.rules: Set[GroundRule] = set()
        self.by_head: Dict[GroundAtom, Set[GroundRule]] = {}
        self.by_pos: Dict[GroundAtom, Set[GroundRule]] = {}
        self.by_neg: Dict[GroundAtom, Set[GroundRule]] = {}
        self.update(rules, ())

    def update(
        self, added: Iterable[GroundRule], removed: Iterable[GroundRule]
    ) -> None:
        """Apply a ground-rule diff to every index."""
        for rule in removed:
            self.rules.discard(rule)
            self.by_head[rule.head].discard(rule)
            for atom in set(rule.pos):
                self.by_pos[atom].discard(rule)
            for atom in set(rule.neg):
                self.by_neg[atom].discard(rule)
        for rule in added:
            self.rules.add(rule)
            self.by_head.setdefault(rule.head, set()).add(rule)
            for atom in set(rule.pos):
                self.by_pos.setdefault(atom, set()).add(rule)
            for atom in set(rule.neg):
                self.by_neg.setdefault(atom, set()).add(rule)


class LayerState:
    """One ``A``-application kept live: the least model of a reduct.

    ``reference`` is the previous layer's value (the set negation is
    evaluated against: a rule is *active* iff no negated atom is in the
    reference); ``true`` is the least model of the active rules'
    positive remainder.  Both sets are owned by this layer and patched
    in place by :meth:`update`.
    """

    __slots__ = ("reference", "true")

    def __init__(self, reference: Iterable[GroundAtom]) -> None:
        self.reference: Set[GroundAtom] = set(reference)
        self.true: Set[GroundAtom] = set()

    # ------------------------------------------------------------------
    # Full (re)computation — initial build and appended tail layers
    # ------------------------------------------------------------------

    def init_full(self, index: GroundIndex) -> None:
        """Compute the reduct's least model from scratch (worklist)."""
        reference = self.reference
        true: Set[GroundAtom] = set()
        waiting: Dict[GroundRule, Set[GroundAtom]] = {}
        queue: deque = deque()
        for rule in index.rules:
            if any(n in reference for n in rule.neg):
                continue
            missing = set(rule.pos)
            if missing:
                waiting[rule] = missing
            else:
                queue.append(rule.head)
        while queue:
            atom = queue.popleft()
            if atom in true:
                continue
            true.add(atom)
            for rule in index.by_pos.get(atom, ()):
                missing = waiting.get(rule)
                if missing is None:
                    continue
                missing.discard(atom)
                if not missing and rule.head not in true:
                    queue.append(rule.head)
        self.true = true

    # ------------------------------------------------------------------
    # Incremental maintenance — ground-level Delete/Rederive
    # ------------------------------------------------------------------

    def update(
        self,
        index: GroundIndex,
        added: FrozenSet[GroundRule],
        removed: FrozenSet[GroundRule],
        ref_ins: FrozenSet[GroundAtom],
        ref_dels: FrozenSet[GroundAtom],
    ) -> Tuple[FrozenSet[GroundAtom], FrozenSet[GroundAtom]]:
        """Maintain the least model under a rule diff + reference delta.

        ``index`` must already reflect the diff (``added`` present,
        ``removed`` absent); ``ref_ins``/``ref_dels`` are the previous
        layer's change.  Returns this layer's ``(inserted, deleted)``
        atoms, which cascade as the next layer's reference delta.
        """
        old_true = self.true
        old_ref_has = self.reference.__contains__

        def old_active(rule: GroundRule) -> bool:
            return not any(old_ref_has(n) for n in rule.neg)

        def old_fired(rule: GroundRule) -> bool:
            return old_active(rule) and all(p in old_true for p in rule.pos)

        # -- Phase 1: over-delete.  Seeds are the heads of old
        # derivations a removed instance or a reference insertion
        # invalidated; deletions then propagate through rules that fired
        # in the old state (classic DRed: a superset of the truly dead).
        stack: List[GroundAtom] = []
        for rule in removed:
            if rule.head in old_true and old_fired(rule):
                stack.append(rule.head)
        for atom in ref_ins:
            for rule in index.by_neg.get(atom, ()):
                if rule in added:
                    continue  # no old derivation to invalidate
                if rule.head in old_true and old_fired(rule):
                    stack.append(rule.head)
        overdeleted: Set[GroundAtom] = set()
        while stack:
            atom = stack.pop()
            if atom in overdeleted or atom not in old_true:
                continue
            overdeleted.add(atom)
            for rule in index.by_pos.get(atom, ()):
                if rule in added or rule.head in overdeleted:
                    continue
                if old_fired(rule):
                    stack.append(rule.head)

        # The reference moves to the new previous-layer value before
        # rederivation: survivors must be closed under the *new* reduct.
        self.reference -= ref_dels
        self.reference |= ref_ins
        new_ref_has = self.reference.__contains__

        def active(rule: GroundRule) -> bool:
            return not any(new_ref_has(n) for n in rule.neg)

        # -- Phase 2: rederive.  The survivors under-approximate the new
        # least model (every old derivation they retain is intact and
        # still active), so restarting the fixpoint from them is exact.
        # Candidate rules — the only ones whose firing status can have
        # changed without a positive-body trigger — are the added rules,
        # the rules a reference deletion re-activated, and the rules
        # heading an over-deleted atom.
        #
        # Copy-on-write: the serving common case is a delta that changes
        # *nothing* in this layer (a rule entered and left the reduct
        # without firing differently); copying the — possibly huge —
        # model set per layer would make every update O(model), so the
        # working set aliases ``old_true`` until a mutation is needed.
        if overdeleted:
            current = old_true - overdeleted
            mutated = True
        else:
            current = old_true
            mutated = False
        queue: deque = deque()

        def try_fire(rule: GroundRule) -> None:
            if (
                rule.head not in current
                and active(rule)
                and all(p in current for p in rule.pos)
            ):
                queue.append(rule.head)

        for rule in added:
            try_fire(rule)
        for atom in ref_dels:
            for rule in index.by_neg.get(atom, ()):
                try_fire(rule)
        for atom in overdeleted:
            for rule in index.by_head.get(atom, ()):
                try_fire(rule)
        while queue:
            atom = queue.popleft()
            if atom in current:
                continue
            if not mutated:
                current = set(current)
                mutated = True
            current.add(atom)
            for rule in index.by_pos.get(atom, ()):
                try_fire(rule)

        if not mutated:
            return frozenset(), frozenset()  # self.true untouched
        inserted = frozenset(current - old_true)
        deleted = frozenset(old_true - current)
        self.true = current
        return inserted, deleted


class AlternatingState:
    """The full alternation kept live: layers, convergence, patching.

    Owns the :class:`~repro.core.grounding.LiveGroundProgram`, the
    shared :class:`GroundIndex` and the converged layer list
    ``[P_1, T_1, ..., P_k, T_k]`` (``T_k = true``, ``P_k = possible``).
    ``apply`` patches the grounding, walks the layers cascading per-layer
    deltas, then restores the convergence invariant by trimming a
    shortened alternation or honestly recomputing appended tail layers.
    """

    __slots__ = ("program", "live", "index", "layers", "extensions")

    def __init__(self, program: Program, db: Database) -> None:
        self.program = program
        self.live = LiveGroundProgram(program, db)
        self.index = GroundIndex(self.live.rules)
        self.layers: List[LayerState] = []
        self.extensions = 0
        self._extend_until_converged()

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    @property
    def db(self) -> Database:
        return self.live.db

    @property
    def true(self) -> Set[GroundAtom]:
        """``lfp(A∘A)`` — the well-founded model's true atoms."""
        return self.layers[-1].true

    @property
    def possible(self) -> Set[GroundAtom]:
        """``gfp(A∘A)`` — true and undefined atoms together."""
        return self.layers[-2].true

    @property
    def rounds(self) -> int:
        """Outer alternating-fixpoint steps the current state encodes."""
        return len(self.layers) // 2

    # ------------------------------------------------------------------
    # Convergence bookkeeping
    # ------------------------------------------------------------------

    def _converged_at(self, count: int) -> bool:
        """Whether the first ``count`` layers witness convergence.

        Convergence of the alternation is ``T_j == T_{j-1}`` with
        ``T_0 = ∅`` — layer ``count`` must be an even (T-) layer equal
        to the previous T-layer.
        """
        if count < 2 or count % 2:
            return False
        current = self.layers[count - 1].true
        previous = self.layers[count - 3].true if count >= 4 else set()
        return current == previous

    def _extend_until_converged(self) -> None:
        """Append fresh fully-computed layers until the alternation closes."""
        while not self._converged_at(len(self.layers)):
            reference = self.layers[-1].true if self.layers else ()
            layer = LayerState(reference)
            layer.init_full(self.index)
            self.layers.append(layer)

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------

    def apply(
        self, new_db: Database, changes: Mapping[str, ChangePair]
    ) -> bool:
        """Maintain the three-valued model under an effective EDB delta.

        Returns whether the model *moved* — ``False`` when no layer's
        value changed (the common serving case: a ground rule entered
        and left every reduct without firing differently), letting the
        caller skip rebuilding and diffing the result partitions.

        Raises
        ------
        repro.core.grounding.GroundingPatchError
            On universe growth — the caller rebuilds the whole state.
        """
        added, removed = self.live.apply(new_db, changes)
        if not added and not removed:
            return False
        with TRACER.span("wf.apply") as root:
            if root:
                root["ground_added"] = len(added)
                root["ground_removed"] = len(removed)
            self.index.update(added, removed)
            prev_ins: FrozenSet[GroundAtom] = frozenset()
            prev_dels: FrozenSet[GroundAtom] = frozenset()
            moved = False
            tracing = TRACER.enabled
            for position, layer in enumerate(self.layers):
                if tracing:
                    with TRACER.span("wf.layer") as sp:
                        prev_ins, prev_dels = layer.update(
                            self.index, added, removed, prev_ins, prev_dels
                        )
                        if sp:
                            sp["layer"] = position
                            sp["rows_out"] = len(prev_ins) + len(prev_dels)
                else:
                    prev_ins, prev_dels = layer.update(
                        self.index, added, removed, prev_ins, prev_dels
                    )
                moved = moved or bool(prev_ins or prev_dels)
            if RECORDER.enabled:
                RECORDER.inc("repro_wf_layer_updates_total", len(self.layers))
            if not moved:
                # The layers were minimal (first convergence witness at the
                # end) and none of their values changed, so they still are:
                # no trim or extension can apply.
                return False
            # Restore the convergence invariant.  The maintained layers are
            # exactly the alternation sequence of the *new* input, so the
            # T-sublayers are monotone and the first convergence witness is
            # the canonical length; anything beyond it is a stale tail.
            for count in range(2, len(self.layers) + 1, 2):
                if self._converged_at(count):
                    del self.layers[count:]
                    return True
            # The alternation got longer: recompute the missing tail layers
            # from scratch — the honest, localised fallback.
            self.extensions += 1
            if RECORDER.enabled:
                RECORDER.inc("repro_wf_extensions_total")
            with TRACER.span("wf.extend") as sp:
                self._extend_until_converged()
                if sp:
                    sp["layers"] = len(self.layers)
        return True
