"""Engine-wide observability: metrics, span tracing, slow-op logging.

Zero dependencies; two module-level singletons both **off by default**
so the instrumented hot paths cost one attribute check when nobody is
watching:

* :data:`RECORDER` (:mod:`repro.obs.metrics`) — counters, gauges and
  fixed-bucket histograms behind a no-op facade; :func:`enable_metrics`
  routes it into the process-wide :data:`REGISTRY`, whose
  :meth:`~repro.obs.metrics.MetricsRegistry.exposition` renders the
  Prometheus text format the server's ``metrics`` verb returns.
* :data:`TRACER` (:mod:`repro.obs.trace`) — per-stratum / per-rule /
  per-round / per-alternation-layer span trees, exportable as Chrome
  trace-event JSON (Perfetto) and aggregable into the
  ``explain --profile`` phase breakdown; spans over the tracer's
  ``slow_threshold`` are logged via stdlib ``logging``.

The server-side per-view series (commit latency, batch fold sizes, WAL
append/snapshot durations, queue depth, recovery replays) are registered
directly against :data:`REGISTRY` by :mod:`repro.server.service` and
:mod:`repro.server.wal`, so the ``metrics`` verb always has data even
when the engine-side recorder is off.
"""

from .metrics import (
    INSTRUMENTS,
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Family,
    Gauge,
    Histogram,
    MetricsRegistry,
    RECORDER,
    REGISTRY,
    Recorder,
    disable_metrics,
    enable_metrics,
)
from .trace import (
    NULL_SPAN,
    PhaseStat,
    Span,
    TRACER,
    Tracer,
    aggregate,
    chrome_events,
    export_chrome,
    import_chrome,
    span,
    span_total,
    walk,
)

__all__ = [
    "INSTRUMENTS",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "Counter",
    "Family",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RECORDER",
    "REGISTRY",
    "Recorder",
    "disable_metrics",
    "enable_metrics",
    "NULL_SPAN",
    "PhaseStat",
    "Span",
    "TRACER",
    "Tracer",
    "aggregate",
    "chrome_events",
    "export_chrome",
    "import_chrome",
    "span",
    "span_total",
    "walk",
]
