"""The metrics half of ``repro.obs``: counters, gauges, histograms.

Zero-dependency, thread-safe, Prometheus-text-exposable.  One
:class:`MetricsRegistry` owns a set of metric *families*; a family is
either unlabeled (use it directly: ``registry.counter("x", "help").inc()``)
or labeled (``family.labels(view="tc").observe(0.01)`` — children are
created on first use and cached).  :meth:`MetricsRegistry.exposition`
renders everything in the Prometheus text format (``# HELP``/``# TYPE``
lines, escaped label values, cumulative ``_bucket{le=...}`` series for
histograms) — what the server's ``metrics`` protocol verb returns.

The engine hot paths never talk to the registry directly: they go
through the module-level :data:`RECORDER`, a facade that is a **no-op
until enabled** — the disabled path is one attribute load and an early
return, so instrumentation costs nothing when nobody is observing
(``repro.bench perf`` ships a gated row proving <3%).  The instrument
catalog (:data:`INSTRUMENTS`) is the single source of truth for the
engine-side metric names, types and help strings; the README's metrics
table is generated from the same entries.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)
"""Default histogram buckets for durations in seconds (100µs .. 10s)."""

SIZE_BUCKETS: Tuple[float, ...] = (
    1,
    2,
    5,
    10,
    25,
    50,
    100,
    250,
    500,
    1000,
    2500,
    5000,
    10000,
)
"""Default histogram buckets for counts (batch sizes, delta sizes)."""


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _format_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    return "{%s}" % ",".join(
        '%s="%s"' % (n, _escape_label_value(str(v)))
        for n, v in zip(names, values)
    )


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; inc by %r refused" % amount)
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram: per-bucket counts plus sum and count.

    Bucket semantics follow Prometheus: an observation lands in the
    first bucket whose upper bound is ``>= value`` (``le`` — *less than
    or equal*), with an implicit ``+Inf`` overflow bucket.
    """

    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count")

    def __init__(self, buckets: Sequence[float] = LATENCY_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one finite bucket")
        self._lock = threading.Lock()
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        idx = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ``+Inf`` last."""
        with self._lock:
            counts = list(self._counts)
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class Family:
    """One named metric: an unlabeled child or a set of labeled children.

    Unlabeled families proxy ``inc``/``set``/``observe`` straight to
    their single child, so the registry's get-or-create methods read
    like direct metric handles.
    """

    __slots__ = ("name", "kind", "help", "labelnames", "buckets", "_lock", "_children")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError("unknown metric kind %r" % kind)
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(buckets) if buckets is not None else None
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}

    def _make_child(self):
        if self.kind == "histogram":
            return Histogram(self.buckets or LATENCY_BUCKETS)
        return _KINDS[self.kind]()

    def labels(self, *values, **kv):
        """The child metric for one label-value combination."""
        if kv:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            values = tuple(str(kv[n]) for n in self.labelnames)
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                "metric %r expects labels %r, got %r"
                % (self.name, self.labelnames, values)
            )
        child = self._children.get(values)
        if child is None:
            with self._lock:
                child = self._children.get(values)
                if child is None:
                    child = self._children[values] = self._make_child()
        return child

    def _default_child(self):
        if self.labelnames:
            raise ValueError(
                "metric %r is labeled by %r; use .labels(...)"
                % (self.name, self.labelnames)
            )
        return self.labels()

    # Unlabeled convenience proxies ------------------------------------

    def inc(self, amount: float = 1) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1) -> None:
        self._default_child().dec(amount)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    @property
    def value(self) -> float:
        return self._default_child().value

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """A thread-safe, get-or-create collection of metric families."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, Family] = {}

    def _get_or_create(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> Family:
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = self._families[name] = Family(
                        name, kind, help, labelnames, buckets
                    )
        if family.kind != kind:
            raise ValueError(
                "metric %r already registered as a %s; cannot re-register "
                "as a %s" % (name, family.kind, kind)
            )
        if family.labelnames != tuple(labelnames):
            raise ValueError(
                "metric %r already registered with labels %r, got %r"
                % (name, family.labelnames, tuple(labelnames))
            )
        return family

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Family:
        return self._get_or_create(name, "counter", help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Family:
        return self._get_or_create(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> Family:
        return self._get_or_create(name, "histogram", help, labelnames, buckets)

    def families(self) -> List[Family]:
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    def reset(self) -> None:
        """Drop every family (tests; never called on the live registry)."""
        with self._lock:
            self._families.clear()

    # ------------------------------------------------------------------
    # Prometheus text exposition
    # ------------------------------------------------------------------

    def exposition(self) -> str:
        """The registry in Prometheus text format (version 0.0.4)."""
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append("# HELP %s %s" % (family.name, _escape_help(family.help)))
            lines.append("# TYPE %s %s" % (family.name, family.kind))
            for labelvalues, child in family.children():
                if family.kind == "histogram":
                    for bound, cumulative in child.bucket_counts():
                        bucket_labels = _format_labels(
                            family.labelnames + ("le",),
                            labelvalues + (_format_number(bound),),
                        )
                        lines.append(
                            "%s_bucket%s %d"
                            % (family.name, bucket_labels, cumulative)
                        )
                    plain = _format_labels(family.labelnames, labelvalues)
                    lines.append(
                        "%s_sum%s %s"
                        % (family.name, plain, _format_number(child.sum))
                    )
                    lines.append("%s_count%s %d" % (family.name, plain, child.count))
                else:
                    plain = _format_labels(family.labelnames, labelvalues)
                    lines.append(
                        "%s%s %s" % (family.name, plain, _format_number(child.value))
                    )
        return "\n".join(lines) + ("\n" if lines else "")


REGISTRY = MetricsRegistry()
"""The process-wide registry: what the server's ``metrics`` verb exposes."""


# ----------------------------------------------------------------------
# The engine-side instrument catalog + the no-op recorder facade
# ----------------------------------------------------------------------

INSTRUMENTS: Dict[str, Tuple[str, str, Optional[Tuple[float, ...]]]] = {
    "repro_engine_rounds_total": (
        "counter",
        "Fixpoint rounds executed (semi-naive + inflationary loops).",
        None,
    ),
    "repro_engine_strata_total": (
        "counter",
        "Strata evaluated by the stratified engine.",
        None,
    ),
    "repro_engine_rule_executions_total": (
        "counter",
        "Compiled rule-plan executions (batch executor entry).",
        None,
    ),
    "repro_engine_kernel_executions_total": (
        "counter",
        "Rule executions lowered to the interned columnar kernel.",
        None,
    ),
    "repro_engine_row_executions_total": (
        "counter",
        "Rule executions on the row-at-a-time batch path.",
        None,
    ),
    "repro_engine_replans_total": (
        "counter",
        "Adaptive mid-fixpoint re-plans (stale plans replaced).",
        None,
    ),
    "repro_kernel_lowered_total": (
        "counter",
        "Columnar-kernel lowerings that ran to completion.",
        None,
    ),
    "repro_kernel_declined_total": (
        "counter",
        "Columnar-kernel lowerings declined (fell back to the row path).",
        None,
    ),
    "repro_engine_ground_seconds": (
        "histogram",
        "Time grounding a program (well-founded evaluation).",
        LATENCY_BUCKETS,
    ),
    "repro_wf_alternation_steps_total": (
        "counter",
        "Stability-operator applications in alternating fixpoints.",
        None,
    ),
    "repro_wf_layer_updates_total": (
        "counter",
        "Live alternation-layer maintenance updates (wellfounded views).",
        None,
    ),
    "repro_wf_extensions_total": (
        "counter",
        "Alternation tails honestly recomputed after a lengthening update.",
        None,
    ),
    "repro_ground_patches_total": (
        "counter",
        "Live grounding patches applied (wellfounded maintenance).",
        None,
    ),
    "repro_view_applies_total": (
        "counter",
        "Materialized-view delta applications.",
        None,
    ),
    "repro_view_recomputes_total": (
        "counter",
        "Materialized-view honest recomputes (fallback path).",
        None,
    ),
    "repro_view_apply_seconds": (
        "histogram",
        "Materialized-view apply latency (one maintenance pass).",
        LATENCY_BUCKETS,
    ),
    "repro_maint_delta_size": (
        "histogram",
        "Effective delta sizes flowing into view maintenance.",
        SIZE_BUCKETS,
    ),
}
"""Engine-side instruments the :data:`RECORDER` may emit: name ->
``(kind, help, buckets)``.  The README's metrics table lists the same
entries; the server-side (per-view labeled) series are registered by
:mod:`repro.server.service` and :mod:`repro.server.wal` directly."""


class Recorder:
    """The hot-path facade: a no-op until :func:`enable` is called.

    ``inc``/``observe``/``set`` check one instance attribute and return
    immediately while disabled — no allocation, no lock, no dict lookup
    (regression-tested).  Enabled, they lazily resolve the named
    instrument from :data:`INSTRUMENTS` in the bound registry and cache
    the metric object, so the enabled path is one dict hit + the metric
    update.
    """

    __slots__ = ("enabled", "_registry", "_cache")

    def __init__(self) -> None:
        self.enabled = False
        self._registry: Optional[MetricsRegistry] = None
        self._cache: Dict[str, object] = {}

    def _instrument(self, name: str):
        metric = self._cache.get(name)
        if metric is None:
            spec = INSTRUMENTS.get(name)
            if spec is None:
                raise KeyError(
                    "unknown instrument %r; add it to repro.obs.metrics."
                    "INSTRUMENTS" % name
                )
            kind, help, buckets = spec
            registry = self._registry or REGISTRY
            if kind == "histogram":
                family = registry.histogram(
                    name, help, buckets=buckets or LATENCY_BUCKETS
                )
            elif kind == "gauge":
                family = registry.gauge(name, help)
            else:
                family = registry.counter(name, help)
            metric = self._cache[name] = family
        return metric

    def inc(self, name: str, amount: float = 1) -> None:
        if not self.enabled:
            return
        self._instrument(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self._instrument(name).observe(value)

    def set(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self._instrument(name).set(value)

    def enable(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._registry = registry if registry is not None else REGISTRY
        self._cache = {}
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False
        self._cache = {}


RECORDER = Recorder()
"""The process-wide recorder every engine-side call site uses.  Off by
default; ``python -m repro serve`` and ``explain --profile`` enable it."""


def enable_metrics(registry: Optional[MetricsRegistry] = None) -> None:
    """Route :data:`RECORDER` into ``registry`` (default: the global one)."""
    RECORDER.enable(registry)


def disable_metrics() -> None:
    """Return :data:`RECORDER` to its free no-op state."""
    RECORDER.disable()
