"""The tracing half of ``repro.obs``: span trees, Chrome export, profiles.

A *span* is one timed region with a name and attributes (rows in/out,
delta sizes, kernel backend, replan events...).  Spans nest: the tracer
keeps a per-thread stack, so a span opened while another is live becomes
its child, and completed top-level spans accumulate as *roots*.  The
tree of one run is exactly the iteration structure the paper says
determines cost — which fixpoint, how many strata/rounds/alternation
layers — made inspectable:

* :func:`export_chrome` renders roots as Chrome trace-event JSON
  (``"ph": "X"`` complete events), openable in Perfetto / ``chrome://tracing``;
* :func:`aggregate` folds them into a phase-attributed time/row
  breakdown (the ``explain --profile`` output);
* spans slower than the tracer's ``slow_threshold`` are logged through
  stdlib ``logging`` (logger ``repro.obs``) as they close.

Like the metrics recorder, the tracer is a **no-op until started**:
``TRACER.span(name)`` returns the shared :data:`NULL_SPAN` while
disabled — a falsy, attribute-swallowing context manager — so
instrumented code needs no conditionals (the hottest sites still guard
on ``TRACER.enabled`` to skip even the null-span call).
"""

from __future__ import annotations

import json
import logging
import threading
import time
from typing import Any, Dict, Iterable, List, Optional

logger = logging.getLogger("repro.obs")


class Span:
    """One timed, attributed region of a trace tree."""

    __slots__ = ("name", "attrs", "start", "end", "children", "tid", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.end = 0.0
        self.children: List["Span"] = []
        self.tid = 0

    def __setitem__(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def __bool__(self) -> bool:
        return True

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.tid = threading.get_ident()
        tracer._stack().append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = time.perf_counter()
        tracer = self._tracer
        stack = tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:  # tolerate interleaved exits (generators, exceptions)
            try:
                stack.remove(self)
            except ValueError:
                pass
        if stack:
            stack[-1].children.append(self)
        else:
            with tracer._lock:
                tracer.roots.append(self)
        threshold = tracer.slow_threshold
        if threshold is not None and self.end - self.start >= threshold:
            logger.warning(
                "slow op: %s took %.4fs %s",
                self.name,
                self.end - self.start,
                self.attrs or "",
            )
        return False

    def __repr__(self) -> str:
        return "Span(%r, %.6fs, %d children)" % (
            self.name,
            self.duration,
            len(self.children),
        )


class _NullSpan:
    """The shared disabled-path span: falsy, swallows everything."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __setitem__(self, key: str, value: Any) -> None:
        pass

    def __bool__(self) -> bool:
        return False

    @property
    def duration(self) -> float:
        return 0.0


NULL_SPAN = _NullSpan()


class Tracer:
    """The span factory plus the per-thread open-span stacks."""

    def __init__(self) -> None:
        self.enabled = False
        self.slow_threshold: Optional[float] = None
        self.roots: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: Any):
        """A context-managed span (the shared null span while disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """A zero-duration marker attached to the current open span."""
        if not self.enabled:
            return
        now = time.perf_counter()
        marker = Span(self, name, attrs)
        marker.start = marker.end = now
        marker.tid = threading.get_ident()
        stack = self._stack()
        if stack:
            stack[-1].children.append(marker)
        else:
            with self._lock:
                self.roots.append(marker)

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def start(self, slow_threshold: Optional[float] = None) -> None:
        """Begin collecting spans (clears any previous roots)."""
        with self._lock:
            self.roots = []
        self.slow_threshold = slow_threshold
        self.enabled = True

    def stop(self) -> List[Span]:
        """Stop collecting; return the completed root spans."""
        self.enabled = False
        with self._lock:
            roots, self.roots = self.roots, []
        return roots


TRACER = Tracer()
"""The process-wide tracer.  Off by default; ``explain --profile`` and
the slow-op log in ``serve`` turn it on."""


def span(name: str, **attrs: Any):
    """Module-level convenience for ``TRACER.span``."""
    return TRACER.span(name, **attrs)


def synthetic_span(tracer: Tracer, name: str, duration: float, **attrs: Any):
    """Record a span for work that happened elsewhere (e.g. a worker
    process), back-dating its start so ``duration`` is preserved.  The
    span attaches to the currently open span (or the roots) like any
    other; a no-op while tracing is disabled."""
    s = tracer.span(name, **attrs)
    if s is NULL_SPAN:
        return s
    with s:
        pass
    s.start = s.end - duration
    return s


# ----------------------------------------------------------------------
# Well-formedness, export, aggregation
# ----------------------------------------------------------------------


def walk(roots: Iterable[Span]):
    """Yield ``(span, parent)`` over the whole forest, parents first."""
    stack = [(root, None) for root in roots]
    while stack:
        node, parent = stack.pop()
        yield node, parent
        for child in node.children:
            stack.append((child, node))


def chrome_events(roots: Iterable[Span]) -> List[Dict[str, Any]]:
    """The forest as Chrome trace-event *complete* events (``ph: X``).

    Timestamps are microseconds relative to the earliest span start, so
    the trace opens at t=0 in Perfetto regardless of process uptime.
    """
    spans = [s for s, _ in walk(roots)]
    if not spans:
        return []
    epoch = min(s.start for s in spans)
    tids = {}
    events = []
    for node in sorted(spans, key=lambda s: (s.start, -s.end)):
        tid = tids.setdefault(node.tid, len(tids) + 1)
        events.append(
            {
                "name": node.name,
                "ph": "X",
                "ts": round((node.start - epoch) * 1e6, 3),
                "dur": round((node.end - node.start) * 1e6, 3),
                "pid": 1,
                "tid": tid,
                "args": {k: _jsonable(v) for k, v in node.attrs.items()},
            }
        )
    return events


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def export_chrome(roots: Iterable[Span]) -> str:
    """Chrome trace-event JSON for the forest (Perfetto-openable)."""
    return json.dumps({"traceEvents": chrome_events(roots)}, indent=1)


def import_chrome(text: str) -> List[Span]:
    """Rebuild a span forest from exported Chrome trace JSON.

    Nesting is recovered from interval containment per thread lane —
    the inverse of :func:`export_chrome` up to microsecond rounding.
    Used by the round-trip tests and handy for re-aggregating a saved
    trace.
    """
    doc = json.loads(text)
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    tracer = Tracer()
    roots: List[Span] = []
    stacks: Dict[int, List[Span]] = {}
    for ev in sorted(events, key=lambda e: (e["ts"], -e.get("dur", 0))):
        if ev.get("ph") != "X":
            continue
        node = Span(tracer, ev["name"], dict(ev.get("args", {})))
        node.start = ev["ts"] / 1e6
        node.end = node.start + ev.get("dur", 0) / 1e6
        node.tid = ev.get("tid", 1)
        stack = stacks.setdefault(node.tid, [])
        while stack and stack[-1].end < node.end:
            stack.pop()
        if stack:
            stack[-1].children.append(node)
        else:
            roots.append(node)
        stack.append(node)
    return roots


class PhaseStat:
    """Aggregated numbers for one span name across a forest."""

    __slots__ = ("name", "count", "total", "self_time", "rows")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.self_time = 0.0
        self.rows = 0

    def __repr__(self) -> str:
        return "PhaseStat(%r, n=%d, total=%.4fs, self=%.4fs)" % (
            self.name,
            self.count,
            self.total,
            self.self_time,
        )


_ROW_ATTRS = ("rows_out", "rows", "delta", "changed")
"""Attribute names whose integer values aggregate into a phase's row count."""


def aggregate(roots: Iterable[Span]) -> List[PhaseStat]:
    """Per-phase totals: count, inclusive time, self time, summed rows.

    *Self time* is a span's duration minus its children's — summing the
    column over all phases equals the summed root durations, so the
    breakdown attributes every traced second exactly once.
    """
    stats: Dict[str, PhaseStat] = {}
    for node, _parent in walk(roots):
        stat = stats.get(node.name)
        if stat is None:
            stat = stats[node.name] = PhaseStat(node.name)
        stat.count += 1
        stat.total += node.duration
        stat.self_time += node.duration - sum(c.duration for c in node.children)
        for attr in _ROW_ATTRS:
            value = node.attrs.get(attr)
            if isinstance(value, int):
                stat.rows += value
                break
    return sorted(stats.values(), key=lambda s: -s.self_time)


def span_total(roots: Iterable[Span]) -> float:
    """Summed root durations — the traced share of wall time."""
    return sum(root.duration for root in roots)
