"""Sharded parallel execution of fixpoints and maintenance.

The package splits each recursive computation's per-round frontier
across a pool of forked worker processes (*shards*) and re-merges the
derived tuples at round barriers; see :mod:`repro.parallel.shard` for
the replica-lockstep execution model and :mod:`repro.parallel.pool` for
the wire protocol.

Only :data:`~repro.parallel.shard.SHARD` is imported eagerly (it is the
hook the sequential engines check); the executor, planner and pool pull
in multiprocessing machinery on first use.
"""

from __future__ import annotations

from .shard import SHARD, ShardContext

__all__ = [
    "SHARD",
    "ShardContext",
    "ShardPlan",
    "ParallelError",
    "WorkerPool",
    "build_shard_plan",
    "fork_available",
    "get_pool",
    "parallel_evaluate",
    "parallel_well_founded",
    "shutdown_pools",
]

_LAZY = {
    "ShardPlan": ("planner", "ShardPlan"),
    "build_shard_plan": ("planner", "build_shard_plan"),
    "ParallelError": ("pool", "ParallelError"),
    "WorkerPool": ("pool", "WorkerPool"),
    "fork_available": ("pool", "fork_available"),
    "get_pool": ("pool", "get_pool"),
    "shutdown_pools": ("pool", "shutdown_pools"),
    "parallel_evaluate": ("executor", "parallel_evaluate"),
    "parallel_well_founded": ("executor", "parallel_well_founded"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError("module %r has no attribute %r" % (__name__, name))
    from importlib import import_module

    module = import_module("." + module_name, __name__)
    return getattr(module, attr)
