"""Parallel engine entry points and their worker-side handlers.

``parallel_evaluate``/``parallel_well_founded`` ship ``(program, db)``
to a pool of replica workers — the database as packed code buffers over
a canonically-built symbol table, the program pickled once — and run the
*unchanged* sequential engine in every worker with the shard context
active.  Worker 0 returns the result (again as code buffers); every
other worker returns only its symbol-table fingerprint, which the
parent checks against its own table to enforce the code-comparability
invariant the whole exchange scheme rests on.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from ..db.database import Database
from ..db.relation import Relation
from ..core.program import Program
from . import ship
from .planner import build_shard_plan
from .pool import HANDLERS, ParallelError, fork_available, get_pool
from .shard import SHARD

_ENGINES = ("stratified", "inflationary", "seminaive", "wellfounded")


def _run_engine(semantics: str, program: Program, db: Database) -> Any:
    # Imported here: the semantics modules import repro.parallel.shard.
    if semantics == "stratified":
        from ..core.semantics.stratified import stratified_semantics

        return stratified_semantics(program, db)
    if semantics == "inflationary":
        from ..core.semantics.inflationary import inflationary_semantics

        return inflationary_semantics(program, db)
    if semantics == "seminaive":
        from ..core.semantics.seminaive import seminaive_least_fixpoint

        return seminaive_least_fixpoint(program, db)
    if semantics == "wellfounded":
        from ..core.semantics.wellfounded import well_founded_semantics

        return well_founded_semantics(program, db)
    raise ParallelError("unknown parallel semantics %r" % semantics)


def _encode_idb(table, idb: Dict[str, Relation]) -> Dict[str, Tuple[int, Any]]:
    return {
        pred: (rel.arity, ship.encode_tuples(table, rel.arity, rel.tuples))
        for pred, rel in idb.items()
    }


def _decode_idb(table, payload: Dict[str, Tuple[int, Any]]) -> Dict[str, Relation]:
    return {
        pred: Relation(pred, arity, ship.decode_tuples(table, arity, enc))
        for pred, (arity, enc) in payload.items()
    }


def _encode_atoms(table, program: Program, atoms) -> Dict[str, Tuple[int, Any]]:
    grouped: Dict[str, set] = {p: set() for p in program.idb_predicates}
    for pred, values in atoms:
        grouped[pred].add(values)
    return {
        pred: (program.arity(pred), ship.encode_tuples(table, program.arity(pred), tuples))
        for pred, tuples in grouped.items()
    }


def _decode_atoms(table, payload: Dict[str, Tuple[int, Any]]) -> frozenset:
    out = set()
    for pred, (arity, enc) in payload.items():
        for t in ship.decode_tuples(table, arity, enc):
            out.add((pred, t))
    return frozenset(out)


def _handle_evaluate(wid: int, nshards: int, payload: Dict[str, Any], state, exchange):
    program: Program = payload["program"]
    table = ship.build_table(payload["db"]["universe"], program)
    db = ship.load_database(table, payload["db"])
    SHARD.activate(wid, nshards, table, payload["columns"], exchange)
    try:
        result = _run_engine(payload["semantics"], program, db)
    finally:
        SHARD.deactivate()
    fingerprint = ship.table_fingerprint(table)
    if wid != 0:
        return {"fingerprint": fingerprint}
    if payload["semantics"] == "wellfounded":
        return {
            "fingerprint": fingerprint,
            "true": _encode_atoms(table, program, result.true),
            "undefined": _encode_atoms(table, program, result.undefined),
            "rounds": result.rounds,
        }
    out: Dict[str, Any] = {
        "fingerprint": fingerprint,
        "idb": _encode_idb(table, result.idb),
        "rounds": result.rounds,
        "engine": result.engine,
    }
    if result.engine == "stratified":
        out["strata"] = tuple(tuple(sorted(layer)) for layer in result.strata)
    return out


HANDLERS["evaluate"] = _handle_evaluate


def _dispatch(semantics: str, program: Program, db: Database, nshards: int):
    """Ship an evaluate job; returns (worker0 result, parent table)."""
    table = ship.build_table(db.universe, program)
    payload = {
        "semantics": semantics,
        "program": program,
        "db": ship.ship_database(table, db),
        "columns": build_shard_plan(program).columns,
    }
    pool = get_pool(nshards)
    results = pool.run_job("evaluate", payload, table)
    expected = ship.table_fingerprint(table)
    for wid, res in enumerate(results):
        if res["fingerprint"] != expected:
            raise ParallelError(
                "shard %d symbol table diverged from the parent" % wid
            )
    return results[0], table


def parallel_evaluate(
    semantics: str, program: Program, db: Database, nshards: int
):
    """Evaluate ``program`` over ``db`` across ``nshards`` worker processes.

    Falls back to the sequential engine when process forking is
    unavailable (the result is identical either way — sharding is an
    execution strategy, not a semantics).
    """
    if semantics not in _ENGINES or semantics == "wellfounded":
        if semantics == "wellfounded":
            return parallel_well_founded(program, db, nshards)
        raise ParallelError("unknown parallel semantics %r" % semantics)
    if nshards < 1:
        raise ValueError("nshards must be >= 1")
    if not fork_available():
        return _run_engine(semantics, program, db)

    from ..core.semantics.base import EvaluationResult
    from ..core.semantics.stratified import StratifiedResult

    res, table = _dispatch(semantics, program, db, nshards)
    idb = _decode_idb(table, res["idb"])
    if res["engine"] == "stratified":
        return StratifiedResult(
            program=program,
            db=db,
            idb=idb,
            rounds=res["rounds"],
            engine="stratified",
            trace=None,
            strata=tuple(frozenset(layer) for layer in res["strata"]),
        )
    return EvaluationResult(
        program=program,
        db=db,
        idb=idb,
        rounds=res["rounds"],
        engine=res["engine"],
        trace=None,
    )


def parallel_well_founded(program: Program, db: Database, nshards: int):
    """Well-founded model across ``nshards`` sharded worker processes."""
    if nshards < 1:
        raise ValueError("nshards must be >= 1")
    if not fork_available():
        return _run_engine("wellfounded", program, db)

    from ..core.semantics.wellfounded import WellFoundedResult

    res, table = _dispatch("wellfounded", program, db, nshards)
    return WellFoundedResult(
        program=program,
        db=db,
        true=_decode_atoms(table, res["true"]),
        undefined=_decode_atoms(table, res["undefined"]),
        rounds=res["rounds"],
    )
