"""Shard planner: pick a partition key per predicate from join keys.

For every *recursive* SCC of the program's dependency graph the planner
chooses, per predicate, the columns to partition on.  A good key keeps a
tuple's shard stable across the joins that consume it, so the frontier
filter at the top of each round discards most foreign work instead of
re-deriving it; any key is *correct* (it is only ever used to split a
relation into disjoint slices whose union is the whole), so the choice
is pure policy.

The policy: for each positive body occurrence of the predicate inside
its own SCC's rules, collect the argument positions holding variables
shared with another body literal or the head (the join keys the rule
planner will bind through).  The partition key is the intersection of
those position sets across occurrences — the columns that participate in
*every* recursive join — falling back to all columns when the
intersection is empty or the predicate never recurs.

Non-recursive predicates (including EDB relations that only feed flip
aliases during maintenance) default to all-columns partitioning, which
is always available because partitioning never has to match a join.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..analysis.facts import ProgramFacts
from ..core.literals import Atom, Variable, literal_variables
from ..core.program import Program


@dataclass(frozen=True)
class ShardPlan:
    """Partition columns per predicate; missing predicates use all columns."""

    columns: Dict[str, Tuple[int, ...]] = field(default_factory=dict)

    def key_for(self, pred: str) -> Optional[Tuple[int, ...]]:
        return self.columns.get(pred)


def _occurrence_join_positions(program: Program, pred: str, scc: FrozenSet[str]) -> List[Set[int]]:
    """Join-key position sets, one per positive occurrence of ``pred``."""
    out: List[Set[int]] = []
    for rule in program.rules:
        if rule.head.pred not in scc:
            continue
        others: List[FrozenSet[Variable]] = [literal_variables(rule.head)]
        others.extend(literal_variables(lit) for lit in rule.body)
        for position, lit in enumerate(rule.body):
            atom = lit.atom if hasattr(lit, "atom") else lit
            if not isinstance(atom, Atom) or atom.pred != pred:
                continue
            elsewhere: Set[Variable] = set()
            for j, vars_ in enumerate(others):
                if j != position + 1:
                    elsewhere.update(vars_)
            joins = {
                i
                for i, arg in enumerate(atom.args)
                if isinstance(arg, Variable) and arg in elsewhere
            }
            out.append(joins)
    return out


def build_shard_plan(program: Program) -> ShardPlan:
    """Choose partition columns for every recursive predicate."""
    facts = ProgramFacts(program)
    graph = facts.graph
    columns: Dict[str, Tuple[int, ...]] = {}
    for scc in facts.sccs:
        recursive = len(scc) > 1 or any(
            pred in _successor_preds(graph, pred) for pred in scc
        )
        if not recursive:
            continue
        for pred in scc:
            arity = program.arity(pred)
            occurrences = _occurrence_join_positions(program, pred, scc)
            if not occurrences:
                continue
            shared = set(range(arity))
            for joins in occurrences:
                shared &= joins
            if shared:
                columns[pred] = tuple(sorted(shared))
    return ShardPlan(columns)


def _successor_preds(graph, pred: str) -> Set[str]:
    succ = graph.successors(pred)
    out: Set[str] = set()
    for edge in succ:
        out.add(getattr(edge, "target", edge))
    return out
