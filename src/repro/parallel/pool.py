"""Fork-based worker pool and the parent-side barrier hub.

The pool owns ``nshards`` long-lived forked workers connected by pipes.
A *job* broadcasts one payload to every worker, which dispatches it to a
registered handler (engine evaluation or a view operation) with the
:data:`~repro.parallel.shard.SHARD` context active.  Mid-job, workers
rendezvous at *barriers*: each sends one tagged exchange message, the
hub merges the payloads (set union in code space when possible,
count summation for derivation counters) and broadcasts the result.

The hub never evaluates anything — all engine decisions are taken
inside the replicated workers from merged data, so every worker reaches
every barrier the same number of times with the same exchange kind.
The hub *checks* that invariant and aborts the job loudly if it breaks,
because a lockstep divergence means shards would silently drift.

Observability: each job runs under a ``parallel.job`` span; per-shard
compute time is reported back with every message and re-emitted as
synthetic ``shard.compute`` child spans (visible in
``repro explain --profile``) plus ``repro_shard_*`` counters.
"""

from __future__ import annotations

import atexit
import multiprocessing
import time
import traceback
from collections import Counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..db.kernel import SymbolTable
from ..obs.metrics import RECORDER, REGISTRY
from ..obs.trace import TRACER, synthetic_span
from . import ship
from .shard import COUNTS, UNION_MAP

_BARRIERS = REGISTRY.counter(
    "repro_shard_barriers_total",
    "Round barriers crossed by sharded jobs.",
    ("kind",),
)
_JOBS = REGISTRY.counter(
    "repro_shard_jobs_total",
    "Jobs dispatched to the sharded worker pool.",
    ("kind",),
)
_BUSY = REGISTRY.counter(
    "repro_shard_busy_seconds_total",
    "Per-shard compute seconds, excluding barrier waits.",
    ("shard",),
)
_EXCHANGED = REGISTRY.counter(
    "repro_shard_rows_exchanged_total",
    "Encoded tuple rows unioned across shards at barriers.",
)

#: Worker-side job handlers: kind -> f(wid, nshards, payload, state, exchange).
HANDLERS: Dict[str, Callable[..., Any]] = {}


class ParallelError(RuntimeError):
    """A worker failed or the pool lost lockstep; the job was aborted."""


class _Aborted(Exception):
    """Raised inside a worker when the hub aborts the current job."""


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


# -- worker side -----------------------------------------------------------


class _BusyClock:
    """Accumulates compute time between barrier waits."""

    def __init__(self) -> None:
        self._mark = time.perf_counter()
        self.total = 0.0

    def pause(self) -> float:
        now = time.perf_counter()
        self.total += now - self._mark
        return self.total

    def resume(self) -> None:
        self._mark = time.perf_counter()


def _worker_main(wid: int, nshards: int, conn) -> None:
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg[0] == "exit":
            return
        if msg[0] != "job":
            continue  # stale abort/exchange reply from a dead job
        _, kind, payload = msg
        clock = _BusyClock()

        def exchange(xkind: str, xpayload: Any) -> Any:
            conn.send(("x", xkind, xpayload, clock.pause()))
            reply = conn.recv()
            clock.resume()
            if reply[0] == "abort":
                raise _Aborted()
            if reply[0] != "xr":
                raise RuntimeError("unexpected barrier reply %r" % (reply[0],))
            return reply[1]

        try:
            handler = HANDLERS[kind]
            result = handler(wid, nshards, payload, _WORKER_STATE, exchange)
        except _Aborted:
            conn.send(("aborted",))
            continue
        except BaseException:
            try:
                conn.send(("err", traceback.format_exc()))
            except (OSError, ValueError):
                return
            continue
        conn.send(("done", result, clock.pause()))


#: Per-process worker state (persistent views etc.), keyed by handler.
_WORKER_STATE: Dict[str, Any] = {}


# -- hub-side merges -------------------------------------------------------


def _merge_union_map(parts: Sequence[Dict[str, Any]], table: SymbolTable) -> Dict[str, Any]:
    first = parts[0]
    if any(part.keys() != first.keys() for part in parts[1:]):
        raise ParallelError("shards lost lockstep: barrier predicate sets differ")
    merged: Dict[str, Any] = {}
    for pred in first:
        arity = first[pred][0]
        encs = [part[pred][1] for part in parts]
        merged[pred] = (arity, ship.merge_encoded(encs, table, arity))
    return merged


def _merge_counts(parts: Sequence[Tuple[int, Any, List[int]]], table: SymbolTable) -> Tuple[int, Any, List[int]]:
    arity = parts[0][0]
    total: Counter = Counter()
    for part_arity, keys_enc, counts in parts:
        if part_arity != arity:
            raise ParallelError("shards lost lockstep: count arities differ")
        for t, c in zip(ship.decode_tuple_list(table, arity, keys_enc), counts):
            total[t] += c
    items = [(t, c) for t, c in total.items() if c]
    keys = ship.encode_tuple_list(table, arity, [t for t, _ in items])
    return (arity, keys, [c for _, c in items])


def _merged_rows(payload: Any, kind: str) -> int:
    if kind == UNION_MAP:
        total = 0
        for _, (arity, enc) in payload.items():
            tag, body = enc
            total += len(body) // 8 if tag == ship.CODES else len(body)
        return total
    if kind == COUNTS:
        return len(payload[2])
    return 0


# -- the pool --------------------------------------------------------------


class WorkerPool:
    """``nshards`` forked replica workers plus the barrier hub."""

    def __init__(self, nshards: int) -> None:
        if nshards < 1:
            raise ValueError("nshards must be >= 1")
        self.nshards = nshards
        self._procs: Optional[List[multiprocessing.Process]] = None
        self._conns: List[Any] = []

    def _ensure(self) -> None:
        if self._procs is not None:
            return
        if not fork_available():
            raise ParallelError("fork start method unavailable on this platform")
        # Handlers must be registered before forking so children see them.
        from . import executor, replica  # noqa: F401

        ctx = multiprocessing.get_context("fork")
        procs: List[multiprocessing.Process] = []
        conns: List[Any] = []
        for wid in range(self.nshards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(wid, self.nshards, child_conn),
                daemon=True,
                name="repro-shard-%d" % wid,
            )
            proc.start()
            child_conn.close()
            procs.append(proc)
            conns.append(parent_conn)
        self._procs = procs
        self._conns = conns

    @property
    def alive(self) -> bool:
        return self._procs is not None and all(p.is_alive() for p in self._procs)

    def run_job(self, kind: str, payload: Any, table: SymbolTable) -> List[Any]:
        """Broadcast a job, serve its barriers, return per-worker results."""
        self._ensure()
        if RECORDER.enabled:
            _JOBS.labels(kind).inc()
        busy = [0.0] * self.nshards
        barriers = 0
        with TRACER.span("parallel.job", kind=kind, shards=self.nshards):
            for conn in self._conns:
                conn.send(("job", kind, payload))
            while True:
                try:
                    msgs = [conn.recv() for conn in self._conns]
                except (EOFError, OSError) as exc:
                    self.close(force=True)
                    raise ParallelError("a shard worker died mid-job") from exc
                tags = {m[0] for m in msgs}
                if "err" in tags:
                    self._drain(msgs)
                    detail = next(m[1] for m in msgs if m[0] == "err")
                    raise ParallelError("shard worker failed:\n" + detail)
                if tags == {"x"}:
                    xkinds = {m[1] for m in msgs}
                    if len(xkinds) != 1:
                        self._drain(msgs)
                        raise ParallelError(
                            "shards lost lockstep: mixed exchange kinds %r" % xkinds
                        )
                    xkind = xkinds.pop()
                    merged = self._merge(xkind, [m[2] for m in msgs], table)
                    barriers += 1
                    for i, m in enumerate(msgs):
                        busy[i] = m[3]
                    if RECORDER.enabled:
                        _BARRIERS.labels(xkind).inc()
                        _EXCHANGED.inc(_merged_rows(merged, xkind))
                    for conn in self._conns:
                        conn.send(("xr", merged))
                elif tags == {"done"}:
                    for i, m in enumerate(msgs):
                        busy[i] = m[2]
                    break
                else:
                    self._drain(msgs)
                    raise ParallelError(
                        "shards lost lockstep: mixed message tags %r" % tags
                    )
            for wid, seconds in enumerate(busy):
                synthetic_span(
                    TRACER, "shard.compute", seconds, shard=wid, kind=kind
                )
                if RECORDER.enabled:
                    _BUSY.labels(str(wid)).inc(seconds)
        return [m[1] for m in msgs]

    def _merge(self, xkind: str, parts: List[Any], table: SymbolTable) -> Any:
        if xkind == UNION_MAP:
            return _merge_union_map(parts, table)
        if xkind == COUNTS:
            return _merge_counts(parts, table)
        raise ParallelError("unknown exchange kind %r" % xkind)

    def _drain(self, msgs: Sequence[Tuple[Any, ...]]) -> None:
        """Abort workers blocked at a barrier and consume their handshakes.

        ``done``/``err``/``aborted`` are terminal — those workers are back
        in their main loop.  Workers that sent ``x`` are blocked awaiting a
        reply; abort them and read until their terminal lands, so no stale
        message leaks into the next job.
        """
        for conn, m in zip(self._conns, msgs):
            if m[0] != "x":
                continue
            try:
                conn.send(("abort",))
                while True:
                    reply = conn.recv()
                    if reply[0] == "x":
                        conn.send(("abort",))
                    else:
                        break
            except (EOFError, OSError, ValueError):
                continue

    def close(self, force: bool = False) -> None:
        if self._procs is None:
            return
        for conn in self._conns:
            try:
                conn.send(("exit",))
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=0.1 if force else 2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._procs = None
        self._conns = []


_POOLS: Dict[int, WorkerPool] = {}


def get_pool(nshards: int) -> WorkerPool:
    """Shared pool per shard count; respawned if its workers died."""
    pool = _POOLS.get(nshards)
    if pool is None or (pool._procs is not None and not pool.alive):
        if pool is not None:
            pool.close(force=True)
        pool = _POOLS[nshards] = WorkerPool(nshards)
    return pool


def shutdown_pools() -> None:
    for pool in list(_POOLS.values()):
        pool.close()
    _POOLS.clear()


atexit.register(shutdown_pools)
