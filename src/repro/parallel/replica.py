"""Sharded materialized views: worker-side replicas, parent-side backing.

A parallel :class:`~repro.materialize.view.MaterializedView` keeps a
full replica view inside every pool worker.  The parent never maintains
anything itself: it validates and normalizes each delta, ships it, and
mechanically folds the changeset that worker 0 reports back into its own
``db``/``result`` mirror — so reads stay local and cheap while the
DRed/counting (or alternating-fixpoint) work runs sharded in the pool,
through exactly the hooks the engines already have.

Symbol-table discipline: parent and workers build their tables from the
same canonical universe order at init, and before *every* apply each
side interns the delta's unseen values in canonical order
(:func:`repro.parallel.ship.intern_delta_values`).  Workers return their
table fingerprint with every reply; the parent refuses to continue on a
mismatch rather than decode buffers against a diverged table.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..db.kernel import SymbolTable
from . import ship
from .planner import build_shard_plan
from .pool import HANDLERS, ParallelError, get_pool
from .shard import SHARD

_UNDEF_SUFFIX = "@undef"


def _key_arity(key: str, program, db) -> int:
    """Arity of a changeset key: a predicate, EDB name, or ``pred@undef``."""
    base = key[: -len(_UNDEF_SUFFIX)] if key.endswith(_UNDEF_SUFFIX) else key
    if base in program.predicates:
        return program.arity(base)
    return db.arity_of(base)


def _encode_changeset(table, program, db, changeset) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key in changeset.relations():
        arity = _key_arity(key, program, db)
        ins = changeset.inserted.get(key, frozenset())
        dels = changeset.deleted.get(key, frozenset())
        out[key] = (
            arity,
            ship.encode_tuples(table, arity, ins),
            ship.encode_tuples(table, arity, dels),
        )
    return out


def _decode_changeset(table, payload: Dict[str, Any]):
    from ..materialize.view import ChangeSet

    inserted: Dict[str, FrozenSet] = {}
    deleted: Dict[str, FrozenSet] = {}
    for key, (arity, ins_enc, dels_enc) in payload.items():
        inserted[key] = frozenset(ship.decode_tuples(table, arity, ins_enc))
        deleted[key] = frozenset(ship.decode_tuples(table, arity, dels_enc))
    return ChangeSet(inserted=inserted, deleted=deleted)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _view_slot(state: Dict[str, Any], name: str) -> Dict[str, Any]:
    return state.setdefault("views", {}).setdefault(name, {})


def _handle_view_init(wid, nshards, payload, state, exchange):
    from ..materialize.view import MaterializedView

    program = payload["program"]
    table = ship.build_table(payload["db"]["universe"], program)
    db = ship.load_database(table, payload["db"])
    slot = _view_slot(state, payload["name"])
    SHARD.activate(wid, nshards, table, payload["columns"], exchange)
    try:
        view = MaterializedView(
            program,
            db,
            semantics=payload["semantics"],
            undo_limit=payload["undo_limit"],
        )
    finally:
        SHARD.deactivate()
    slot["view"] = view
    slot["table"] = table
    slot["columns"] = payload["columns"]
    fingerprint = ship.table_fingerprint(table)
    if wid != 0:
        return {"fingerprint": fingerprint}
    result = view.result
    out: Dict[str, Any] = {
        "fingerprint": fingerprint,
        "maintainable": view._maintainable,
        "rounds": result.rounds,
        "engine": result.engine,
    }
    if payload["semantics"] == "wellfounded":
        out["true"] = _encode_changeset_sets(table, program, result.true)
        out["undefined"] = _encode_changeset_sets(table, program, result.undefined)
    else:
        out["idb"] = {
            pred: (rel.arity, ship.encode_tuples(table, rel.arity, rel.tuples))
            for pred, rel in result.idb.items()
        }
        if result.engine == "stratified":
            out["strata"] = tuple(tuple(sorted(layer)) for layer in result.strata)
    return out


def _encode_changeset_sets(table, program, atoms) -> Dict[str, Any]:
    grouped: Dict[str, set] = {p: set() for p in program.idb_predicates}
    for pred, values in atoms:
        grouped[pred].add(values)
    return {
        pred: (
            program.arity(pred),
            ship.encode_tuples(table, program.arity(pred), tuples),
        )
        for pred, tuples in grouped.items()
    }


def _decode_atom_sets(table, payload) -> FrozenSet:
    out = set()
    for pred, (arity, enc) in payload.items():
        for t in ship.decode_tuples(table, arity, enc):
            out.add((pred, t))
    return frozenset(out)


def _handle_view_apply(wid, nshards, payload, state, exchange):
    slot = _view_slot(state, payload["name"])
    view = slot["view"]
    table = slot["table"]
    delta = payload["delta"]
    # Same canonical interning the parent performed before shipping.
    ship.intern_delta_values(table, delta)
    SHARD.activate(wid, nshards, table, slot["columns"], exchange)
    try:
        changeset = view.apply(delta)
    finally:
        SHARD.deactivate()
    fingerprint = ship.table_fingerprint(table)
    if wid != 0:
        return {"fingerprint": fingerprint}
    return {
        "fingerprint": fingerprint,
        "changes": _encode_changeset(table, view.program, view.db, changeset),
        "recomputes": view.recomputes,
        "rounds": view.result.rounds,
        "engine": view.result.engine,
    }


HANDLERS["view_init"] = _handle_view_init
HANDLERS["view_apply"] = _handle_view_apply


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class ViewBacking:
    """Parent half of a sharded view: ships deltas, mirrors results."""

    _SEQ = 0

    def __init__(self, owner, program, db, semantics: str, undo_limit, nshards: int) -> None:
        self.owner = owner
        self.nshards = nshards
        type(self)._SEQ += 1
        self.name = "view-%d" % type(self)._SEQ
        self.table: SymbolTable = ship.build_table(db.universe, program)
        self.columns = build_shard_plan(program).columns
        self.pool = get_pool(nshards)
        reply = self._job(
            "view_init",
            {
                "name": self.name,
                "program": program,
                "db": ship.ship_database(self.table, db),
                "semantics": semantics,
                "undo_limit": undo_limit,
                "columns": self.columns,
            },
        )
        self.maintainable: bool = reply["maintainable"]
        self._true: Optional[set] = None
        self._undefined: Optional[set] = None
        if semantics == "wellfounded":
            self._true = set(_decode_atom_sets(self.table, reply["true"]))
            self._undefined = set(_decode_atom_sets(self.table, reply["undefined"]))
            self._result = self._wf_result(program, db, reply["rounds"])
        else:
            from ..db.relation import Relation

            idb = {
                pred: Relation(pred, arity, ship.decode_tuples(self.table, arity, enc))
                for pred, (arity, enc) in reply["idb"].items()
            }
            self._result = self._two_valued_result(
                program, db, idb, reply["rounds"], reply["engine"], reply.get("strata")
            )

    # -- result mirroring ----------------------------------------------

    def _wf_result(self, program, db, rounds):
        from ..core.semantics.wellfounded import WellFoundedResult

        return WellFoundedResult(
            program=program,
            db=db,
            true=frozenset(self._true),
            undefined=frozenset(self._undefined),
            rounds=rounds,
        )

    def _two_valued_result(self, program, db, idb, rounds, engine, strata=None):
        from ..core.semantics.base import EvaluationResult
        from ..core.semantics.stratified import StratifiedResult

        if strata is None and isinstance(
            getattr(self, "_result", None), StratifiedResult
        ):
            strata = self._result.strata
        if engine == "stratified":
            return StratifiedResult(
                program=program,
                db=db,
                idb=idb,
                rounds=rounds,
                engine=engine,
                trace=None,
                strata=tuple(
                    layer if isinstance(layer, frozenset) else frozenset(layer)
                    for layer in (strata or ())
                ),
            )
        return EvaluationResult(
            program=program,
            db=db,
            idb=idb,
            rounds=rounds,
            engine=engine,
            trace=None,
        )

    def initial_result(self):
        return self._result

    # -- the write path -------------------------------------------------

    def _job(self, kind: str, payload) -> Dict[str, Any]:
        results = self.pool.run_job(kind, payload, self.table)
        expected = ship.table_fingerprint(self.table)
        for wid, res in enumerate(results):
            if res["fingerprint"] != expected:
                raise ParallelError(
                    "shard %d symbol table diverged from the parent" % wid
                )
        return results[0]

    def apply_inner(self, delta, record_undo: bool):
        """Mirror of ``MaterializedView._apply_inner`` over the pool."""
        from ..materialize.view import ChangeSet

        view = self.owner
        view._validate(delta)
        effective = delta.normalize(view._db)
        if effective.is_empty():
            return ChangeSet()
        ship.intern_delta_values(self.table, effective)
        reply = self._job(
            "view_apply", {"name": self.name, "delta": effective}
        )
        changeset = _decode_changeset(self.table, reply["changes"])
        new_db = view._db.apply_delta(effective)
        program = view.program
        if view.semantics == "wellfounded":
            self._fold_wf(changeset, program)
            self._result = self._wf_result(program, new_db, reply["rounds"])
        else:
            idb = dict(self._result.idb)
            for pred in program.idb_predicates:
                ins = changeset.inserted.get(pred, frozenset())
                dels = changeset.deleted.get(pred, frozenset())
                if ins or dels:
                    idb[pred] = idb[pred].evolve(ins, dels)
            self._result = self._two_valued_result(
                program, new_db, idb, reply["rounds"], reply["engine"]
            )
        view._db = new_db
        view._result = self._result
        view.applied += 1
        view.recomputes = reply["recomputes"]
        if record_undo:
            view._undo.append(effective.inverse())
            if (
                view._undo_limit is not None
                and len(view._undo) > view._undo_limit
            ):
                del view._undo[: len(view._undo) - view._undo_limit]
        return changeset

    def _fold_wf(self, changeset, program) -> None:
        for pred in program.idb_predicates:
            for key, target in (
                (pred, self._true),
                (pred + _UNDEF_SUFFIX, self._undefined),
            ):
                for t in changeset.inserted.get(key, ()):
                    target.add((pred, t))
                for t in changeset.deleted.get(key, ()):
                    target.discard((pred, t))
