"""Shard context: the seam between the sequential engines and the pool.

The parallel executor runs *replica lockstep*: every worker executes the
unchanged sequential engine (or view) code on a full replica of the
database, with the module-global :data:`SHARD` context active.  The
context narrows each worker's share of the per-round work — frontier
relations, flip aliases, ground rules — to its shard, and re-merges the
derived tuples at round barriers through an exchange callback wired to
the parent hub.  Because every *decision* (convergence tests, stratum
order, recompute-vs-maintain branches) is taken on merged data, all
workers take the same branches and reach every barrier the same number
of times; the parent only ferries and unions code buffers.

When the context is inactive — in the parent, and in any plain
sequential run — every method is the identity, so the engines pay one
``SHARD.active`` attribute check per hook and nothing else.

Tuples are partitioned by the packed code of their partition-key columns
modulo the shard count (``key_codes % nshards``); the key columns come
from the :class:`~repro.parallel.planner.ShardPlan`.  Partitioning only
needs to be *deterministic and identical across processes*, never
stable across runs, so values missing from the shared symbol table fall
back to a content hash of their ``repr``.
"""

from __future__ import annotations

import zlib
from collections import Counter
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..db.kernel import SymbolTable

Tup = Tuple[Any, ...]

#: Exchange payload kinds understood by the pool hub.
UNION_MAP = "union_map"
COUNTS = "counts"

_MASK = (1 << 61) - 1
_MIX = 1000003


def _content_hash(value: Any) -> int:
    """Deterministic, process-independent hash (``hash()`` is salted)."""
    return zlib.crc32(repr(value).encode("utf-8", "backslashreplace"))


def flip_base(name: str) -> Optional[str]:
    """Base predicate of an ``@ins``/``@del`` alias, else ``None``."""
    if name.endswith("@ins") or name.endswith("@del"):
        return name[:-4]
    return None


class ShardContext:
    """Per-process sharding state; inactive identity outside workers."""

    def __init__(self) -> None:
        self.active = False
        self.wid = 0
        self.nshards = 1
        self.table: Optional[SymbolTable] = None
        self.columns: Dict[str, Tuple[int, ...]] = {}
        self._exchange: Optional[Callable[[str, Any], Any]] = None
        #: Per-activation memo space for engine-side caches (e.g. the
        #: well-founded ground-rule slice); cleared on deactivate.
        self.scratch: Dict[str, Any] = {}

    # -- lifecycle ---------------------------------------------------------

    def activate(
        self,
        wid: int,
        nshards: int,
        table: SymbolTable,
        columns: Dict[str, Tuple[int, ...]],
        exchange: Callable[[str, Any], Any],
    ) -> None:
        if self.active:
            raise RuntimeError("shard context is already active")
        self.wid = wid
        self.nshards = nshards
        self.table = table
        self.columns = columns
        self._exchange = exchange
        self.active = True

    def deactivate(self) -> None:
        self.active = False
        self.wid = 0
        self.nshards = 1
        self.table = None
        self.columns = {}
        self._exchange = None
        self.scratch = {}

    # -- partitioning ------------------------------------------------------

    def _partition_id(self, value: Any) -> Tuple[int, bool]:
        table = self.table
        if table is not None:
            ident = table.id_of(value)
            if ident is not None:
                return ident, True
        return _content_hash(value), False

    def tuple_shard(self, pred: str, t: Tup) -> int:
        """Shard owning ``t`` under ``pred``'s partition columns."""
        cols = self.columns.get(pred)
        indices: Sequence[int] = cols if cols is not None else range(len(t))
        table = self.table
        shift = table.shift if table is not None else 8
        code = 0
        packed = True
        for i in indices:
            ident, interned = self._partition_id(t[i])
            if interned and packed:
                code = (code << shift) | ident
            else:
                packed = False
                code = ((code * _MIX) ^ ident) & _MASK
        return code % self.nshards

    def owns(self, pred: str, t: Tup) -> bool:
        return self.tuple_shard(pred, t) == self.wid

    def shard_tuples(self, pred: str, tuples: Iterable[Tup]) -> Set[Tup]:
        """This worker's slice of ``tuples`` (identity when inactive)."""
        if not self.active:
            return tuples if isinstance(tuples, set) else set(tuples)
        wid = self.wid
        return {t for t in tuples if self.tuple_shard(pred, t) == wid}

    def frontier(self, pred: str, relation: Any) -> Any:
        """Shard a frontier/delta relation by its base predicate."""
        if not self.active:
            return relation
        mine = self.shard_tuples(pred, relation.tuples)
        if len(mine) == len(relation.tuples):
            return relation
        return type(relation)(relation.name, relation.arity, mine)

    def flip_shard(self, name: str, relation: Any) -> Any:
        """Shard an ``@ins``/``@del`` flip alias; other relations pass."""
        if not self.active:
            return relation
        base = flip_base(name)
        if base is None:
            return relation
        return self.frontier(base, relation)

    def flip_sharded_interp(self, interp: Any) -> Any:
        """Rebuild a Database with every flip alias narrowed to our shard."""
        if not self.active:
            return interp
        from ..db.database import Database

        relations = [
            self.flip_shard(rel.name, rel) for rel in interp.relations.values()
        ]
        return Database(interp.universe, relations, check=False)

    # -- rule partitioning -------------------------------------------------

    def plan_slice(self, plans: Sequence[Any]) -> List[Any]:
        """Round-robin slice of a *deterministically ordered* plan list."""
        if not self.active:
            return list(plans)
        n, wid = self.nshards, self.wid
        return [p for i, p in enumerate(plans) if i % n == wid]

    rule_slice = plan_slice

    def ground_rule_slice(self, rules: Sequence[Any]) -> List[Any]:
        """Slice ground rules by their *head atom*, not list position.

        Ground rules come out of set iteration, whose order differs
        between processes under hash randomisation — position-based
        slicing would silently drop rules.  Hashing the head keeps all
        derivations of one atom on one shard.
        """
        if not self.active:
            return list(rules)
        wid = self.wid
        return [r for r in rules if self.tuple_shard(r.head[0], r.head[1]) == wid]

    # -- barrier exchanges -------------------------------------------------

    def _require_exchange(self) -> Callable[[str, Any], Any]:
        if self._exchange is None:
            raise RuntimeError("shard context active without an exchange channel")
        return self._exchange

    def merge_tuple_map(
        self, derived: Dict[str, Set[Tup]], arities: Dict[str, int]
    ) -> Dict[str, Set[Tup]]:
        """Union per-predicate tuple sets across all shards."""
        if not self.active:
            return derived
        from . import ship

        table = self.table
        assert table is not None
        payload = {
            pred: (arities[pred], ship.encode_tuples(table, arities[pred], tuples))
            for pred, tuples in derived.items()
        }
        merged = self._require_exchange()(UNION_MAP, payload)
        return {
            pred: ship.decode_tuples(table, arity, enc)
            for pred, (arity, enc) in merged.items()
        }

    def merge_atoms(
        self, atoms: Set[Tuple[str, Tup]], arities: Dict[str, int]
    ) -> Set[Tuple[str, Tup]]:
        """Union ``(pred, args)`` ground-atom sets across all shards.

        ``arities`` must name every predicate an atom *could* mention
        (identically on all replicas) — the barrier's key set may not be
        derived from the local atoms, which differ per shard.
        """
        if not self.active:
            return atoms
        grouped: Dict[str, Set[Tup]] = {p: set() for p in arities}
        for pred, args in atoms:
            grouped[pred].add(args)
        merged = self.merge_tuple_map(grouped, arities)
        return {(pred, args) for pred, tuples in merged.items() for args in tuples}

    def merge_counter(self, diff: "Counter[Tup]", arity: int) -> "Counter[Tup]":
        """Sum per-tuple derivation-count deltas across all shards."""
        if not self.active:
            return diff
        from . import ship

        table = self.table
        assert table is not None
        items = [(t, c) for t, c in diff.items() if c]
        keys = ship.encode_tuple_list(table, arity, [t for t, _ in items])
        merged = self._require_exchange()(
            COUNTS, (arity, keys, [c for _, c in items])
        )
        _, keys_enc, counts = merged
        decoded = ship.decode_tuple_list(table, arity, keys_enc)
        out: Counter[Tup] = Counter()
        for t, c in zip(decoded, counts):
            out[t] = c
        return out

    # -- whole-operator helpers -------------------------------------------

    def theta_sharded(self, program: Any, db: Any, current: Dict[str, Any]) -> Dict[str, Any]:
        """One sharded application of the paper's Theta operator.

        Each worker evaluates its round-robin slice of the program's
        rules (``program.rules`` has deterministic parse order) against
        the full interpretation, then the per-predicate consequences are
        unioned at the barrier.  Falls back to the sequential
        :func:`~repro.core.operator.theta` when inactive.
        """
        from ..core.operator import as_interpretation, theta
        from ..core.planning import PLAN_STORE, execute_plan
        from ..db.relation import Relation

        if not self.active:
            return theta(program, db, current)
        interp = as_interpretation(program, db, current)
        idb_preds = program.idb_predicates
        derived: Dict[str, Set[Tup]] = {p: set() for p in idb_preds}
        mine = self.rule_slice(program.rules)
        for plan in PLAN_STORE.rule_plans(mine, db=db):
            derived[plan.head_pred] |= execute_plan(
                plan, interp, stats=PLAN_STORE.statistics
            )
        merged = self.merge_tuple_map(derived, {p: program.arity(p) for p in idb_preds})
        return {
            p: Relation(p, program.arity(p), merged[p]) for p in idb_preds
        }


#: Process-global context.  Inactive (identity) except inside pool workers.
SHARD = ShardContext()
