"""Serialising relations and databases for worker shipping.

Tuple sets cross process boundaries as *packed row codes*: each tuple is
interned through a shared :class:`~repro.db.kernel.SymbolTable` and
packed into one ``int64`` (``SymbolTable.encode_tuple``), and the whole
set ships as a raw ``array('q').tobytes()`` buffer — no per-tuple
pickling.  This only works while both sides hold **identical** symbol
tables, which the pool guarantees by construction: parent and workers
intern the universe (and, later, each delta's unseen values) in the same
canonical order, and nothing else ever interns.  Datalog programs cannot
invent values, so the tables can only grow through those synchronised
points.

Tuples whose width exceeds the 63-bit packing budget — or that mention a
value missing from the table — fall back to a sorted pickled list
(``("p", ...)``); the two forms are distinguished by tag so a mixed
exchange still merges correctly.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, Iterable, List, Sequence, Set, Tuple
import zlib

from ..db.database import Database
from ..db.kernel import SymbolTable
from ..db.relation import Relation

Tup = Tuple[Any, ...]

#: Encoded tuple-set forms: packed code buffer vs. pickled fallback.
CODES = "b"
PLAIN = "p"


def canonical_order(values: Iterable[Any]) -> List[Any]:
    """Deterministic, process-independent ordering of mixed-type values."""
    return sorted(values, key=lambda v: (type(v).__name__, repr(v)))


def program_constants(program: Any) -> List[Any]:
    """Constants mentioned by a program, in deterministic parse order."""
    seen: Set[Any] = set()
    out: List[Any] = []
    for rule in program.rules:
        for lit in (rule.head, *rule.body):
            atom = getattr(lit, "atom", lit)
            for arg in atom.args:
                value = getattr(arg, "value", None)
                if value is not None and value not in seen:
                    seen.add(value)
                    out.append(value)
    return out


def build_table(universe: Iterable[Any], program: Any = None) -> SymbolTable:
    """Intern ``universe`` (canonically ordered) then program constants.

    Run with the same inputs in every process, this produces identical
    tables — the precondition for exchanging raw code buffers.
    """
    table = SymbolTable()
    ordered = canonical_order(universe)
    table.intern_many(ordered)
    if program is not None:
        table.intern_many(program_constants(program))
    return table


def intern_delta_values(table: SymbolTable, delta: Any) -> None:
    """Intern a delta's unseen values in canonical order.

    Every process (parent and all workers) calls this with the same
    delta before applying it, so the tables stay identical.
    """
    fresh = [
        v
        for v in canonical_order(set(delta.values()))
        if table.id_of(v) is None
    ]
    table.intern_many(fresh)


def table_fingerprint(table: SymbolTable) -> int:
    """Content hash of the intern order — equal iff tables agree."""
    crc = zlib.crc32(b"%d:%d" % (len(table), table.shift))
    for ident in range(len(table)):
        crc = zlib.crc32(repr(table.extern(ident)).encode("utf-8", "backslashreplace"), crc)
    return crc


def encode_tuples(table: SymbolTable, arity: int, tuples: Iterable[Tup]) -> Tuple[str, Any]:
    """Encode a tuple set as a packed code buffer (or pickled fallback)."""
    tuples = list(tuples)
    if arity == 0 or not table.fits(arity):
        return (PLAIN, sorted(tuples, key=repr))
    codes = array("q")
    plain: List[Tup] = []
    for t in tuples:
        if all(table.id_of(v) is not None for v in t):
            codes.append(table.encode_tuple(t))
        else:
            plain.append(t)
    if plain:
        return (PLAIN, sorted(tuples, key=repr))
    return (CODES, codes.tobytes())


def encode_tuple_list(table: SymbolTable, arity: int, tuples: Sequence[Tup]) -> Tuple[str, Any]:
    """Order-preserving encode (for count keys paired with a value list)."""
    if arity == 0 or not table.fits(arity):
        return (PLAIN, list(tuples))
    if any(table.id_of(v) is None for t in tuples for v in t):
        return (PLAIN, list(tuples))
    return (CODES, array("q", [table.encode_tuple(t) for t in tuples]).tobytes())


def decode_tuples(table: SymbolTable, arity: int, enc: Tuple[str, Any]) -> Set[Tup]:
    tag, payload = enc
    if tag == PLAIN:
        return set(payload)
    codes = array("q")
    codes.frombytes(payload)
    extern = table.extern_code
    return {extern(code, arity) for code in codes}


def decode_tuple_list(table: SymbolTable, arity: int, enc: Tuple[str, Any]) -> List[Tup]:
    """Like :func:`decode_tuples` but order-preserving (for count keys)."""
    tag, payload = enc
    if tag == PLAIN:
        return list(payload)
    codes = array("q")
    codes.frombytes(payload)
    extern = table.extern_code
    return [extern(code, arity) for code in codes]


def merge_encoded(parts: Sequence[Tuple[str, Any]], table: SymbolTable, arity: int) -> Tuple[str, Any]:
    """Union encoded tuple sets (hub side), staying in code space if possible."""
    if all(tag == CODES for tag, _ in parts):
        merged: Set[int] = set()
        for _, payload in parts:
            codes = array("q")
            codes.frombytes(payload)
            merged.update(codes)
        return (CODES, array("q", sorted(merged)).tobytes())
    union: Set[Tup] = set()
    for enc in parts:
        union.update(decode_tuples(table, arity, enc))
    return (PLAIN, sorted(union, key=repr))


def ship_database(table: SymbolTable, db: Database) -> Dict[str, Any]:
    """Encode a database for worker bootstrap (codes where packable)."""
    relations = []
    for rel in sorted(db.relations.values(), key=lambda r: r.name):
        relations.append((rel.name, rel.arity, encode_tuples(table, rel.arity, rel.tuples)))
    return {
        "universe": canonical_order(db.universe),
        "relations": relations,
    }


def load_database(table: SymbolTable, payload: Dict[str, Any]) -> Database:
    relations = [
        Relation(name, arity, decode_tuples(table, arity, enc))
        for name, arity, enc in payload["relations"]
    ]
    return Database(payload["universe"], relations, check=False)
