"""Canonical programs from the paper."""

from .library import (
    distance_program,
    guarded_toggle_program,
    pi1,
    pi2,
    pi3,
    reachable_from_source_program,
    same_generation_program,
    tc_complement_stratified,
    toggle_program,
    transitive_closure_program,
    win_move_program,
)

__all__ = [
    "distance_program",
    "guarded_toggle_program",
    "pi1",
    "pi2",
    "pi3",
    "reachable_from_source_program",
    "same_generation_program",
    "tc_complement_stratified",
    "toggle_program",
    "transitive_closure_program",
    "win_move_program",
]
