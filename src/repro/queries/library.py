"""The canonical programs of the paper, ready to run.

Every program that appears in the paper's text is constructed here, with
the paper's own names:

* ``pi1``  — ``T(x) :- E(y, x), !T(y)`` (Section 2's running example; read
  over reversed edges it is the classic win–move game).
* ``pi2``  — the two-relation program with ``S1`` (transitive closure) and
  ``S2`` (pairs in/out of ``S1``).
* ``pi3`` / ``transitive_closure_program`` — the DATALOG program for TC.
* ``toggle_program`` — ``T(z) :- !T(w)``, the gadget with no fixpoint.
* ``distance_program`` — Proposition 2's six-rule program whose carrier
  computes the distance query under inflationary semantics.
* ``tc_complement_stratified`` — the stratified program for
  ``TC(x, y) and not TC(x*, y*)`` (what Proposition 2's program means
  *stratified*).
* ``win_move_program`` — ``WIN(x) :- E(x, y), !WIN(y)``.
* ``same_generation_program`` — a second classic recursive DATALOG query.
"""

from __future__ import annotations

from ..core.parser import parse_program
from ..core.program import Program


def pi1() -> Program:
    """Section 2: ``T(x) :- E(y, x), !T(y)``.

    On the path ``L_n`` it has the unique fixpoint ``{2, 4, ...}``; on odd
    cycles no fixpoint; on even cycles exactly two incomparable fixpoints;
    on ``G_n`` (n disjoint even cycles) ``2**n`` fixpoints and no least one.
    """
    return parse_program("T(X) :- E(Y, X), !T(Y).")


def pi2() -> Program:
    """Section 2's second example, with carrier ``S2``:

    ``S1`` is the transitive closure; ``S2`` collects quadruples
    ``(a, b, c, d)`` with ``S1(a, b)`` and ``not S1(c, d)``.
    """
    return parse_program(
        """
        S1(X, Y) :- E(X, Y).
        S1(X, Y) :- E(X, Z), S1(Z, Y).
        S2(X, Y, Z, W) :- S1(X, Y), !S1(Z, W).
        """,
        carrier="S2",
    )


def transitive_closure_program(idb: str = "S") -> Program:
    """The paper's ``pi3``: pure DATALOG transitive closure."""
    return parse_program(
        """
        {S}(X, Y) :- E(X, Y).
        {S}(X, Y) :- E(X, Z), {S}(Z, Y).
        """.format(S=idb)
    )


def pi3() -> Program:
    """Alias for :func:`transitive_closure_program` under the paper's name."""
    return transitive_closure_program()


def toggle_program() -> Program:
    """``T(z) :- !T(w)`` — "makes T toggle and in particular has no
    fixpoint" (proof of Theorem 1) on any non-empty universe."""
    return parse_program("T(Z) :- !T(W).")


def guarded_toggle_program() -> Program:
    """``T(z) :- !Q(u), !T(w)`` plus ``Q(x) :- Q(x)``.

    The Theorem 1 gadget in isolation: has a fixpoint (with ``T`` empty)
    exactly when ``Q`` is the full unary relation.
    """
    return parse_program(
        """
        Q(X) :- Q(X).
        T(Z) :- !Q(U), !T(W).
        """,
        carrier="T",
    )


def distance_program() -> Program:
    """Proposition 2's program; carrier ``S3`` computes the distance query
    under *inflationary* semantics:

        S1(x,y)        <- E(x,y)
        S1(x,y)        <- E(x,z), S1(z,y)
        S2(x*,y*)      <- E(x*,y*)
        S2(x*,y*)      <- E(x*,z*), S2(z*,y*)
        S3(x,y,x*,y*)  <- E(x,y), not S2(x*,y*)
        S3(x,y,x*,y*)  <- E(x,z), S1(z,y), not S2(x*,y*)

    Read as a *stratified* program instead, the same rules compute
    ``{(x,y,x*,y*) : TC(x,y) and not TC(x*,y*)}`` — the paper's
    demonstration that the two semantics differ.
    """
    return parse_program(
        """
        S1(X, Y) :- E(X, Y).
        S1(X, Y) :- E(X, Z), S1(Z, Y).
        S2(Xs, Ys) :- E(Xs, Ys).
        S2(Xs, Ys) :- E(Xs, Zs), S2(Zs, Ys).
        S3(X, Y, Xs, Ys) :- E(X, Y), !S2(Xs, Ys).
        S3(X, Y, Xs, Ys) :- E(X, Z), S1(Z, Y), !S2(Xs, Ys).
        """,
        carrier="S3",
    )


def tc_complement_stratified() -> Program:
    """A stratified program for ``not TC`` (complement of reachability).

    Witnesses ``DATALOG subsetneq Stratified``: its query is not monotone,
    hence expressible by no negation-free DATALOG program.
    """
    return parse_program(
        """
        TC(X, Y) :- E(X, Y).
        TC(X, Y) :- E(X, Z), TC(Z, Y).
        NOTC(X, Y) :- !TC(X, Y).
        """,
        carrier="NOTC",
    )


def win_move_program() -> Program:
    """The win–move game: ``WIN(x) :- E(x, y), !WIN(y)``.

    A position is winning if some move leads to a losing position.  This is
    ``pi1`` over reversed edges; its fixpoints/well-founded model exhibit
    exactly the paper's path/cycle phenomenology.
    """
    return parse_program("WIN(X) :- E(X, Y), !WIN(Y).")


def same_generation_program() -> Program:
    """Classic same-generation over a parent relation ``P`` (DATALOG)."""
    return parse_program(
        """
        SG(X, Y) :- P(Z, X), P(Z, Y).
        SG(X, Y) :- P(U, X), SG(U, V), P(V, Y).
        """
    )


def reachable_from_source_program() -> Program:
    """Single-source reachability from nodes marked ``Src`` (DATALOG)."""
    return parse_program(
        """
        REACH(X) :- Src(X).
        REACH(Y) :- REACH(X), E(X, Y).
        """
    )
