"""The paper's reductions: pi_SAT, pi_COL, pi_SC, and the Fagin compiler."""

from .coloring import pi_col
from .fagin import FaginCompilation, eso_to_program
from .sat_encoding import cnf_to_database, database_to_cnf, pi_sat
from .sat_to_coloring import sat_to_coloring
from .succinct_coloring import binary_database, pi_sc

__all__ = [
    "FaginCompilation",
    "binary_database",
    "cnf_to_database",
    "database_to_cnf",
    "eso_to_program",
    "pi_col",
    "pi_sat",
    "pi_sc",
    "sat_to_coloring",
]
