"""Lemma 1: 3-COLORING as fixpoint existence (``pi_COL``).

The paper's eleven-rule program over an edge relation ``E``:

    R(x) :- R(x).          B(x) :- B(x).          G(x) :- G(x).
    P(x) :- E(x, y), R(x), R(y).
    P(x) :- E(x, y), B(x), B(y).
    P(x) :- E(x, y), G(x), G(y).
    P(x) :- G(x), B(x).    P(x) :- B(x), R(x).    P(x) :- R(x), G(x).
    P(x) :- !R(x), !B(x), !G(x).
    T(z) :- P(x), !T(w).

*"Program pi_COL has a fixpoint on E if and only if E represents a
3-colorable graph"* — and, more finely, the fixpoints are in one-to-one
correspondence with the proper 3-colorings (``R``, ``B``, ``G`` partition
the nodes with no monochromatic edge, forcing ``P`` — the penalty relation
— empty, which pacifies the toggle rule).
"""

from __future__ import annotations

from typing import Any, Dict

from ..core.operator import IDBMap
from ..core.parser import parse_program
from ..core.program import Program
from ..db.database import Database
from ..db.relation import Relation
from ..graphs.digraph import Digraph
from ..graphs.encode import graph_to_database

COLORS = ("R", "B", "G")


def pi_col() -> Program:
    """The paper's ``pi_COL`` (proof of Theorem 4, Lemma 1)."""
    return parse_program(
        """
        R(X) :- R(X).
        B(X) :- B(X).
        G(X) :- G(X).
        P(X) :- E(X, Y), R(X), R(Y).
        P(X) :- E(X, Y), B(X), B(Y).
        P(X) :- E(X, Y), G(X), G(Y).
        P(X) :- G(X), B(X).
        P(X) :- B(X), R(X).
        P(X) :- R(X), G(X).
        P(X) :- !R(X), !B(X), !G(X).
        T(Z) :- P(X), !T(W).
        """,
        carrier="P",
    )


def coloring_database(graph: Digraph) -> Database:
    """The input database: just the edge relation over the node universe."""
    return graph_to_database(graph)


def coloring_to_fixpoint(graph: Digraph, coloring: Dict[Any, str]) -> IDBMap:
    """The fixpoint of ``(pi_COL, E)`` induced by a proper 3-coloring."""
    tuples: Dict[str, list] = {c: [] for c in COLORS}
    for node, color in coloring.items():
        if color not in COLORS:
            raise ValueError("unknown color %r for node %r" % (color, node))
        tuples[color].append((node,))
    idb: IDBMap = {c: Relation(c, 1, tuples[c]) for c in COLORS}
    idb["P"] = Relation.empty("P", 1)
    idb["T"] = Relation.empty("T", 1)
    return idb


def fixpoint_to_coloring(fixpoint: IDBMap) -> Dict[Any, str]:
    """Read the proper 3-coloring back out of a fixpoint."""
    coloring: Dict[Any, str] = {}
    for color in COLORS:
        for (node,) in fixpoint[color]:
            if node in coloring:
                raise ValueError("node %r carries two colors" % (node,))
            coloring[node] = color
    return coloring
