"""Theorem 1: the generic NP-to-DATALOG¬ compiler.

*"For any NP computable collection C of finite databases over sigma there
is a DATALOG¬ program pi_C such that a database D is in C if and only if
(pi_C, D) has a fixpoint."*

Pipeline (the proof, verbatim):

1. ``C`` arrives as an existential second-order sentence (Fagin's theorem);
2. the first-order part is brought to Skolem normal form
   ``(exists S)(forall x)(exists y)(theta_1 v ... v theta_k)``
   (:mod:`repro.logic.skolem`);
3. the program ``pi_C`` is emitted:

       S_j(w_j)  :-  S_j(w_j)          (make the S_j nondatabase relations)
       Q(x)      :-  theta_i(x, y)     (one rule per disjunct)
       T(z)      :-  !Q(u), !T(w)      (the toggle gadget)

   so that a fixpoint exists iff ``Q`` can be the full relation ``A^n``,
   iff ``(forall x)(exists y) (theta_1 v ... v theta_k)`` has a witness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.literals import Atom, Eq, Negation, Neq
from ..core.program import Program
from ..core.rules import Rule
from ..core.terms import Variable
from ..logic.eso import ESOFormula
from ..logic.fo import AtomF, EqF, Lit
from ..logic.skolem import SkolemNormalForm, skolemize


@dataclass(frozen=True)
class FaginCompilation:
    """The compiler's output: the program plus its bookkeeping.

    Attributes
    ----------
    program:
        The DATALOG¬ program ``pi_C``.
    snf:
        The Skolem normal form the rules were read off from.
    q_pred, t_pred:
        The names chosen for the ``Q`` and toggle predicates.
    """

    program: Program
    snf: SkolemNormalForm
    q_pred: str
    t_pred: str


def _fresh_pred(base: str, taken: set) -> str:
    name = base
    while name in taken:
        name += "_"
    taken.add(name)
    return name


def _literal_to_rule_literal(lit: Lit):
    sign, atom = lit
    if isinstance(atom, AtomF):
        core = Atom(atom.pred, atom.args)
        return core if sign else Negation(core)
    if isinstance(atom, EqF):
        return Eq(atom.left, atom.right) if sign else Neq(atom.left, atom.right)
    raise TypeError("unexpected literal payload: %r" % (atom,))


def eso_to_program(eso: ESOFormula, graph_prefix: str = "SK") -> FaginCompilation:
    """Compile an ESO sentence into the Theorem 1 program ``pi_C``.

    The resulting program's EDB vocabulary is the sentence's first-order
    vocabulary; a database ``D`` then satisfies the sentence iff
    ``(pi_C, D)`` has a fixpoint (tested against brute-force ESO checking).
    """
    snf = skolemize(eso, graph_prefix=graph_prefix)

    taken = set()
    for name, _ in snf.so_signature:
        taken.add(name)
    for disjunct in snf.disjuncts:
        for _, atom in disjunct:
            if isinstance(atom, AtomF):
                taken.add(atom.pred)
    q_pred = _fresh_pred("Q", taken)
    t_pred = _fresh_pred("T", taken)

    rules: List[Rule] = []
    # "The sole purpose of the first m rules is to make the relational
    #  symbols of S into nondatabase relations."
    for name, arity in snf.so_signature:
        vars = [Variable("W%d" % i) for i in range(1, arity + 1)]
        rules.append(Rule(Atom(name, vars), (Atom(name, vars),)))

    # Q rules: one per disjunct.  When there are no universal variables we
    # give Q a dummy head variable ranging over the whole universe, so that
    # "Q = A" still expresses "the matrix holds".
    if snf.universals:
        q_args: Tuple[Variable, ...] = snf.universals
    else:
        q_args = (Variable("U0"),)
    for disjunct in snf.disjuncts:
        body = tuple(_literal_to_rule_literal(lit) for lit in disjunct)
        rules.append(Rule(Atom(q_pred, q_args), body))

    # The toggle gadget: T(z) :- !Q(u...), !T(w).
    toggle_head = Atom(t_pred, (Variable("Z0"),))
    q_neg_args = [Variable("U%d" % i) for i in range(1, len(q_args) + 1)]
    rules.append(
        Rule(
            toggle_head,
            (
                Negation(Atom(q_pred, q_neg_args)),
                Negation(Atom(t_pred, (Variable("W0"),))),
            ),
        )
    )
    program = Program(rules, carrier=q_pred)
    return FaginCompilation(program=program, snf=snf, q_pred=q_pred, t_pred=t_pred)
