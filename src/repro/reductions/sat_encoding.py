"""Example 1: SATISFIABILITY as fixpoint existence (``pi_SAT``).

The paper fixes the vocabulary ``sigma = (V/1, P/2, N/2)`` and encodes a
CNF instance ``I`` as the database ``D(I)``: the universe is the union of
variables and clauses; ``V`` marks variables; ``P(c, v)`` / ``N(c, v)``
record positive/negative occurrences of ``v`` in clause ``c``.  The program

    S(x) :- S(x).
    Q(x) :- V(x).
    Q(x) :- !S(x), P(x, y), S(y).
    Q(x) :- !S(x), N(x, y), !S(y).
    T(z) :- !Q(u), !T(w).

has its fixpoints on ``D(I)`` in one-to-one correspondence with the
satisfying assignments of ``I``; in particular a fixpoint exists iff ``I``
is satisfiable (Theorem 1) and the fixpoint is unique iff the satisfying
assignment is (Theorem 2).

Universe elements are tagged strings (``"v:x1"``, ``"c:3"``) so that
variable and clause names can never collide.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..core.operator import IDBMap
from ..core.parser import parse_program
from ..core.program import Program
from ..db.database import Database
from ..db.relation import Relation
from ..workloads.cnf_gen import CNFInstance

_VAR_PREFIX = "v:"
_CLAUSE_PREFIX = "c:"


def pi_sat() -> Program:
    """The paper's ``pi_SAT`` (Example 1), carrier ``S``."""
    return parse_program(
        """
        S(X) :- S(X).
        Q(X) :- V(X).
        Q(X) :- !S(X), P(X, Y), S(Y).
        Q(X) :- !S(X), N(X, Y), !S(Y).
        T(Z) :- !Q(U), !T(W).
        """,
        carrier="S",
    )


def variable_element(name: str) -> str:
    """The universe element standing for CNF variable ``name``."""
    return _VAR_PREFIX + name


def clause_element(index: int) -> str:
    """The universe element standing for the ``index``-th clause (0-based)."""
    return _CLAUSE_PREFIX + str(index)


def cnf_to_database(instance: CNFInstance) -> Database:
    """The paper's ``D(I)`` encoding of a CNF instance."""
    var_elems = {v: variable_element(v) for v in instance.variables}
    clause_elems = [clause_element(i) for i in range(instance.num_clauses)]
    universe = set(var_elems.values()) | set(clause_elems)
    v_rel = Relation("V", 1, [(e,) for e in var_elems.values()])
    p_tuples = []
    n_tuples = []
    for i, clause in enumerate(instance.clauses):
        for var, positive in clause:
            entry = (clause_elems[i], var_elems[var])
            if positive:
                p_tuples.append(entry)
            else:
                n_tuples.append(entry)
    return Database(
        universe,
        [v_rel, Relation("P", 2, p_tuples), Relation("N", 2, n_tuples)],
    )


def database_to_cnf(db: Database) -> CNFInstance:
    """The inverse mapping ``I(D)`` for databases over ``(V, P, N)``.

    *"every database D = (A, V, P, N) in the class gives rise to a unique
    instance I(D) of SATISFIABILITY with variables V and clauses A - V."*
    """
    var_elems = sorted(t[0] for t in db["V"])
    clause_elems = sorted(db.universe - set(var_elems), key=repr)
    strip = {
        e: (e[len(_VAR_PREFIX):] if isinstance(e, str) and e.startswith(_VAR_PREFIX) else str(e))
        for e in var_elems
    }
    clause_index = {c: i for i, c in enumerate(clause_elems)}
    clauses: Dict[int, list] = {i: [] for i in clause_index.values()}
    for c, v in db["P"]:
        clauses[clause_index[c]].append((strip[v], True))
    for c, v in db["N"]:
        clauses[clause_index[c]].append((strip[v], False))
    return CNFInstance(
        tuple(strip[e] for e in var_elems),
        tuple(tuple(clauses[i]) for i in sorted(clauses)),
    )


def assignment_to_fixpoint(
    instance: CNFInstance, assignment: Dict[str, bool], db: Optional[Database] = None
) -> IDBMap:
    """The fixpoint of ``(pi_SAT, D(I))`` induced by a satisfying assignment.

    ``S`` holds the true variables, ``Q`` is the full unary relation, and
    ``T`` is empty — exactly the witness structure in Theorem 1's proof.
    """
    database = db if db is not None else cnf_to_database(instance)
    s_tuples = [
        (variable_element(v),) for v in instance.variables if assignment[v]
    ]
    return {
        "S": Relation("S", 1, s_tuples),
        "Q": Relation.full("Q", 1, database.universe),
        "T": Relation.empty("T", 1),
    }


def fixpoint_to_assignment(instance: CNFInstance, fixpoint: IDBMap) -> Dict[str, bool]:
    """Read the satisfying assignment back out of a fixpoint's ``S``."""
    in_s: Set[str] = {t[0] for t in fixpoint["S"]}
    return {
        v: variable_element(v) in in_s for v in instance.variables
    }
