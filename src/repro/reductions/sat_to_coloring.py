"""The classic 3SAT -> 3-COLORING reduction (Garey–Johnson–Stockmeyer).

Lemma 2 of the paper rests on the fact that *"the reduction from 3SAT to
3-COLORING in [GJS76] is indeed a projection"*, which lifts NP-hardness to
NEXP-hardness for the succinct version.  We implement the standard
gadget-based reduction so the pipeline 3SAT -> 3COL -> pi_COL fixpoints can
be exercised end to end.

Construction (colors play the roles TRUE / FALSE / BASE):

* a triangle on special nodes ``T`` (true), ``F`` (false), ``B`` (base);
* per variable ``v`` a triangle ``v — not-v — B``, so ``v`` and ``not-v``
  take the two truth colors;
* per clause an OR-gadget of three stacked "or" triangles whose output
  node is joined to both ``F`` and ``B``, forcing some literal of the
  clause to be colored TRUE.

The instance is satisfiable iff the produced graph is 3-colorable.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..graphs.digraph import Digraph
from ..workloads.cnf_gen import CNFInstance

TRUE_NODE = "#T"
FALSE_NODE = "#F"
BASE_NODE = "#B"


def _literal_node(var: str, positive: bool) -> str:
    return ("+%s" if positive else "-%s") % var


def _or_gadget(
    edges: List[Tuple[str, str]], left: str, right: str, tag: str
) -> str:
    """Append an OR gadget; returns its output node.

    The output can be colored TRUE iff ``left`` or ``right`` is TRUE
    (standard 3SAT->3COL triangle gadget).
    """
    a, b, out = tag + ".a", tag + ".b", tag + ".o"
    edges.extend(
        [(left, a), (right, b), (a, b), (a, out), (b, out)]
    )
    return out


def sat_to_coloring(instance: CNFInstance) -> Digraph:
    """Build the GJS76-style graph for a CNF instance (clauses of size <= 3).

    Raises
    ------
    ValueError
        If some clause has more than three literals (reduce first) or is
        empty (trivially unsatisfiable — no graph gadget models it).
    """
    undirected: List[Tuple[str, str]] = [
        (TRUE_NODE, FALSE_NODE),
        (FALSE_NODE, BASE_NODE),
        (BASE_NODE, TRUE_NODE),
    ]
    for var in instance.variables:
        pos, neg = _literal_node(var, True), _literal_node(var, False)
        undirected.extend([(pos, neg), (pos, BASE_NODE), (neg, BASE_NODE)])

    for index, clause in enumerate(instance.clauses):
        if not clause:
            raise ValueError("clause %d is empty" % index)
        if len(clause) > 3:
            raise ValueError(
                "clause %d has %d literals; 3SAT expects at most 3"
                % (index, len(clause))
            )
        literal_nodes = [_literal_node(v, p) for v, p in clause]
        while len(literal_nodes) < 3:
            literal_nodes.append(literal_nodes[-1])
        tag = "c%d" % index
        out1 = _or_gadget(undirected, literal_nodes[0], literal_nodes[1], tag + ".1")
        out2 = _or_gadget(undirected, out1, literal_nodes[2], tag + ".2")
        undirected.extend([(out2, FALSE_NODE), (out2, BASE_NODE)])

    nodes = {u for e in undirected for u in e}
    edges = [(u, v) for u, v in undirected] + [(v, u) for u, v in undirected]
    return Digraph(nodes, edges)


def decode_coloring(
    instance: CNFInstance, coloring: Dict[str, str]
) -> Dict[str, bool]:
    """Extract the truth assignment from a proper coloring of the gadget
    graph: a variable is true iff its positive literal node shares the
    color of the TRUE anchor."""
    true_color = coloring[TRUE_NODE]
    return {
        var: coloring[_literal_node(var, True)] == true_color
        for var in instance.variables
    }
