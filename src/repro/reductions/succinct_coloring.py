"""Theorem 4: the circuit-to-program compiler ``pi_SC``.

*"For each gate g_i = (a_i, b_i, c_i) of the circuit we shall have a new
nondatabase relation G_i(x, y), where x and y are n-tuples of variables.
The intention is that G_i(x, y) will contain all 2n-tuples of bits that
make g_i output 1."*

Gate rules (over the fixed universe ``{0, 1}``):

* AND:  ``G_i(x, y) :- G_b(x, y), G_c(x, y).``
* OR :  ``G_i(x, y) :- G_b(x, y).``  and  ``G_i(x, y) :- G_c(x, y).``
* NOT:  ``G_i(x, y) :- !G_b(x, y).``
* IN (j-th input): ``G_i(z_1, ..., z_{j-1}, 1, z_{j+1}, ..., z_{2n}) :- .``
  — a bodyless rule whose free variables range over the whole domain,
  pinning position ``j`` to 1.

The output gate's relation is identified with the edge relation ``E`` of
``pi_COL`` (whose color relations become n-ary), giving the program
``pi_SC`` with *no* database relations at all: ``pi_SC`` has a fixpoint iff
the circuit-presented graph is 3-colorable.  In every fixpoint the ``G_i``
are forced to be exactly the gates' truth tables.
"""

from __future__ import annotations

from typing import List

from ..circuits.circuit import AND, IN, OR
from ..circuits.succinct import SuccinctGraph
from ..core.literals import Atom, Negation
from ..core.program import Program
from ..core.rules import Rule
from ..core.terms import Constant, Variable
from ..db.database import Database

BINARY_UNIVERSE = frozenset((0, 1))


def gate_relation(index: int) -> str:
    """Name of the IDB relation carrying gate ``index``'s truth table."""
    return "G%d" % index


def _tuple_vars(prefix: str, count: int) -> List[Variable]:
    return [Variable("%s%d" % (prefix, i)) for i in range(1, count + 1)]


def gate_rules(succinct: SuccinctGraph) -> List[Rule]:
    """The rules defining ``G_1 .. G_k`` from the circuit's gates."""
    width = 2 * succinct.address_bits
    rules: List[Rule] = []
    zs = _tuple_vars("Z", width)
    next_input = 0
    for i, gate in enumerate(succinct.circuit.gates, start=1):
        head_pred = gate_relation(i)
        if gate.kind == IN:
            position = next_input  # 0-based input slot this IN gate reads
            next_input += 1
            head_args = list(zs)
            head_args[position] = Constant(1)
            rules.append(Rule(Atom(head_pred, head_args), ()))
        elif gate.kind == AND:
            rules.append(
                Rule(
                    Atom(head_pred, zs),
                    (Atom(gate_relation(gate.b), zs), Atom(gate_relation(gate.c), zs)),
                )
            )
        elif gate.kind == OR:
            rules.append(
                Rule(Atom(head_pred, zs), (Atom(gate_relation(gate.b), zs),))
            )
            rules.append(
                Rule(Atom(head_pred, zs), (Atom(gate_relation(gate.c), zs),))
            )
        else:  # NOT
            rules.append(
                Rule(
                    Atom(head_pred, zs),
                    (Negation(Atom(gate_relation(gate.b), zs)),),
                )
            )
    return rules


def coloring_rules(succinct: SuccinctGraph) -> List[Rule]:
    """``pi_COL`` lifted to n-tuple nodes, with ``E`` = the output gate.

    ``R``, ``B``, ``G``, ``P`` become n-ary; the toggle predicate ``T``
    stays unary over the binary domain.
    """
    n = succinct.address_bits
    edge = gate_relation(succinct.circuit.output_gate)
    xs = _tuple_vars("X", n)
    ys = _tuple_vars("Y", n)
    rules: List[Rule] = []
    for color in ("R", "B", "G"):
        rules.append(Rule(Atom(color, xs), (Atom(color, xs),)))
    for color in ("R", "B", "G"):
        rules.append(
            Rule(
                Atom("P", xs),
                (Atom(edge, xs + ys), Atom(color, xs), Atom(color, ys)),
            )
        )
    for first, second in (("G", "B"), ("B", "R"), ("R", "G")):
        rules.append(Rule(Atom("P", xs), (Atom(first, xs), Atom(second, xs))))
    rules.append(
        Rule(
            Atom("P", xs),
            (
                Negation(Atom("R", xs)),
                Negation(Atom("B", xs)),
                Negation(Atom("G", xs)),
            ),
        )
    )
    rules.append(
        Rule(
            Atom("T", (Variable("Zt"),)),
            (Atom("P", xs), Negation(Atom("T", (Variable("Wt"),)))),
        )
    )
    return rules


def pi_sc(succinct: SuccinctGraph) -> Program:
    """The full Theorem 4 program for one succinct graph."""
    return Program(gate_rules(succinct) + coloring_rules(succinct), carrier="P")


def binary_database() -> Database:
    """The fixed input: universe ``{0, 1}`` and no relations.

    The paper: *"the program has no database relations, but we have fixed
    the domain of all variables to be {0, 1}"*.
    """
    return Database(BINARY_UNIVERSE, [])
