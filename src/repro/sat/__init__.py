"""SAT substrate: CNF, Tseitin helpers, DPLL solver, counting, DIMACS."""

from .cnf import CNF, VarPool
from .counting import (
    EnumerationLimitExceeded,
    count_models,
    enumerate_models,
    forced_literals,
    has_model,
    unique_model,
)
from .solver import Solver, solve

__all__ = [
    "CNF",
    "EnumerationLimitExceeded",
    "Solver",
    "VarPool",
    "count_models",
    "enumerate_models",
    "forced_literals",
    "has_model",
    "solve",
    "unique_model",
]
