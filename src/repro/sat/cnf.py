"""CNF formulas and Tseitin encoding helpers.

Literals are non-zero integers in the DIMACS convention: variable ``v`` is
the positive literal ``v``; its negation is ``-v``.  :class:`VarPool` hands
out fresh variables and remembers an optional label for each (here: ground
IDB atoms), so models can be decoded back into relations.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

Clause = Tuple[int, ...]


class VarPool:
    """A factory of numbered Boolean variables with optional labels."""

    def __init__(self) -> None:
        self._next = 1
        self._label_to_var: Dict[Any, int] = {}
        self._var_to_label: Dict[int, Any] = {}

    def fresh(self, label: Any = None) -> int:
        """Allocate a new variable; ``label`` must be unused if given."""
        if label is not None and label in self._label_to_var:
            raise ValueError("label %r already allocated" % (label,))
        var = self._next
        self._next += 1
        if label is not None:
            self._label_to_var[label] = var
            self._var_to_label[var] = label
        return var

    def var(self, label: Any) -> int:
        """The variable for ``label``, allocating on first use."""
        existing = self._label_to_var.get(label)
        if existing is not None:
            return existing
        return self.fresh(label)

    def label(self, var: int) -> Optional[Any]:
        """The label of ``var``, or ``None`` for anonymous variables."""
        return self._var_to_label.get(var)

    def labelled_vars(self) -> Dict[Any, int]:
        """Copy of the label-to-variable map."""
        return dict(self._label_to_var)

    @property
    def num_vars(self) -> int:
        """Number of variables allocated so far."""
        return self._next - 1


class CNF:
    """A growable CNF formula.

    ``num_vars`` tracks the largest variable mentioned (or allocated via an
    attached pool), which DIMACS output and the solver both need.
    """

    def __init__(self, pool: Optional[VarPool] = None) -> None:
        self.pool = pool if pool is not None else VarPool()
        self.clauses: List[Clause] = []

    @property
    def num_vars(self) -> int:
        """Largest variable index in use."""
        largest = self.pool.num_vars
        for clause in self.clauses:
            for lit in clause:
                largest = max(largest, abs(lit))
        return largest

    def add_clause(self, lits: Iterable[int]) -> None:
        """Add a clause; empty clauses are allowed (and unsatisfiable)."""
        clause = tuple(lits)
        if any(lit == 0 for lit in clause):
            raise ValueError("literal 0 is not allowed")
        self.clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        """Add several clauses."""
        for c in clauses:
            self.add_clause(c)

    def add_unit(self, lit: int) -> None:
        """Force a literal."""
        self.add_clause((lit,))

    # ------------------------------------------------------------------
    # Tseitin definitions
    # ------------------------------------------------------------------

    def define_and(self, lits: Sequence[int], label: Any = None) -> int:
        """Fresh ``v`` with ``v <-> AND(lits)``.  Empty conjunction is true."""
        v = self.pool.fresh(label)
        if not lits:
            self.add_unit(v)
            return v
        for lit in lits:
            self.add_clause((-v, lit))
        self.add_clause(tuple(-lit for lit in lits) + (v,))
        return v

    def define_or(self, lits: Sequence[int], label: Any = None) -> int:
        """Fresh ``v`` with ``v <-> OR(lits)``.  Empty disjunction is false."""
        v = self.pool.fresh(label)
        if not lits:
            self.add_unit(-v)
            return v
        for lit in lits:
            self.add_clause((v, -lit))
        self.add_clause(tuple(lits) + (-v,))
        return v

    def add_iff_or(self, v: int, lits: Sequence[int]) -> None:
        """Constrain an existing variable: ``v <-> OR(lits)``."""
        if not lits:
            self.add_unit(-v)
            return
        for lit in lits:
            self.add_clause((v, -lit))
        self.add_clause(tuple(lits) + (-v,))

    def add_iff_and(self, v: int, lits: Sequence[int]) -> None:
        """Constrain an existing variable: ``v <-> AND(lits)``."""
        if not lits:
            self.add_unit(v)
            return
        for lit in lits:
            self.add_clause((-v, lit))
        self.add_clause(tuple(-lit for lit in lits) + (v,))

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:
        return "CNF(vars=%d, clauses=%d)" % (self.num_vars, len(self.clauses))
