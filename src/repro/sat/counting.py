"""Model enumeration, counting, and uniqueness checks.

These are the operations the paper's complexity results call for:

* existence of a model            — NP          (Theorem 1's target class)
* uniqueness of a model           — US          (Theorem 2's target class)
* per-atom forced-value queries   — the FO(NP) routine behind Theorem 3.

Enumeration uses blocking clauses over a chosen variable subset.  When the
subset functionally determines the remaining variables (as with Tseitin
auxiliaries), projected enumeration is exact model enumeration.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence

from .cnf import CNF
from .solver import Solver


class EnumerationLimitExceeded(RuntimeError):
    """More models exist than the caller allowed."""


def enumerate_models(
    cnf: CNF,
    over_vars: Optional[Sequence[int]] = None,
    limit: Optional[int] = None,
) -> Iterator[Dict[int, bool]]:
    """Yield models projected onto ``over_vars`` (default: all variables).

    Each yielded dict maps the projection variables to booleans; distinct
    projections are enumerated via blocking clauses.

    Raises
    ------
    EnumerationLimitExceeded
        After yielding ``limit`` models, if another exists.
    """
    solver = Solver(cnf)
    variables = (
        list(over_vars) if over_vars is not None else list(range(1, cnf.num_vars + 1))
    )
    produced = 0
    while True:
        model = solver.solve()
        if model is None:
            return
        if limit is not None and produced >= limit:
            raise EnumerationLimitExceeded(
                "more than %d models exist" % limit
            )
        projection = {v: model[v] for v in variables}
        yield projection
        produced += 1
        if not variables:
            return  # a 0-variable projection has at most one class
        solver.add_clause(
            tuple(-v if projection[v] else v for v in variables)
        )


def count_models(
    cnf: CNF,
    over_vars: Optional[Sequence[int]] = None,
    limit: Optional[int] = None,
) -> int:
    """Number of (projected) models; raises past ``limit`` when given."""
    return sum(1 for _ in enumerate_models(cnf, over_vars, limit))


def has_model(cnf: CNF) -> bool:
    """Plain satisfiability."""
    return Solver(cnf).solve() is not None


def unique_model(
    cnf: CNF, over_vars: Optional[Sequence[int]] = None
) -> Optional[Dict[int, bool]]:
    """The unique (projected) model if exactly one exists, else ``None``.

    This is the US-style check of Theorem 2: satisfiable with a *unique*
    witness.  Costs at most two solver calls.
    """
    solver = Solver(cnf)
    first = solver.solve()
    if first is None:
        return None
    variables = (
        list(over_vars) if over_vars is not None else list(range(1, cnf.num_vars + 1))
    )
    projection = {v: first[v] for v in variables}
    if variables:
        solver.add_clause(tuple(-v if projection[v] else v for v in variables))
        if solver.solve() is not None:
            return None
    return projection


def forced_literals(cnf: CNF, over_vars: Sequence[int]) -> Dict[int, Optional[bool]]:
    """For each variable, the value it takes in *every* model, if any.

    Returns ``{var: True | False | None}`` (``None`` = not forced).  This
    is the backbone-style query sequence used by the Theorem 3 least-
    fixpoint procedure: polynomially many NP-oracle calls.

    Raises
    ------
    ValueError
        When the formula is unsatisfiable (no model to be forced in).
    """
    solver = Solver(cnf)
    base = solver.solve()
    if base is None:
        raise ValueError("formula is unsatisfiable; forced values undefined")
    out: Dict[int, Optional[bool]] = {}
    for v in over_vars:
        witness = base[v]
        # Can the opposite value be realised?
        flipped = solver.solve(assumptions=(-v if witness else v,))
        out[v] = witness if flipped is None else None
    return out
