"""DIMACS CNF reading and writing (for interoperability and debugging)."""

from __future__ import annotations

from pathlib import Path
from typing import Union

from .cnf import CNF

PathLike = Union[str, Path]


def dumps(cnf: CNF, comment: str = "") -> str:
    """Serialise to DIMACS text."""
    lines = []
    if comment:
        for part in comment.splitlines():
            lines.append("c %s" % part)
    lines.append("p cnf %d %d" % (cnf.num_vars, len(cnf.clauses)))
    for clause in cnf.clauses:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"


def loads(text: str) -> CNF:
    """Parse DIMACS text into a :class:`CNF`.

    Tolerates comments anywhere and clauses spanning multiple lines.
    """
    cnf = CNF()
    declared_vars = None
    pending = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError("malformed problem line: %r" % line)
            declared_vars = int(parts[2])
            continue
        for token in line.split():
            lit = int(token)
            if lit == 0:
                cnf.add_clause(pending)
                pending = []
            else:
                pending.append(lit)
    if pending:
        raise ValueError("last clause not terminated with 0")
    if declared_vars is not None and declared_vars > cnf.num_vars:
        # Respect declared variable count even if some vars are unused.
        while cnf.pool.num_vars < declared_vars:
            cnf.pool.fresh()
    return cnf


def write_file(cnf: CNF, path: PathLike, comment: str = "") -> None:
    """Write DIMACS to a file."""
    Path(path).write_text(dumps(cnf, comment))


def read_file(path: PathLike) -> CNF:
    """Read DIMACS from a file."""
    return loads(Path(path).read_text())
