"""An iterative DPLL SAT solver with two watched literals.

This is the library's NP oracle: Theorems 1–3 of the paper characterise
fixpoint existence/uniqueness/leastness through NP machinery, and
:mod:`repro.core.satreduction` realises those characterisations by compiling
the fixpoint condition to CNF and querying this solver.

Design: classic DPLL — unit propagation over two watched literals,
chronological backtracking, and a static most-occurrences branching order
with phase saving.  No clause learning: the instances produced by the
reductions in this package are small (thousands of variables), and a
dependency-free, easily-audited solver is worth more here than raw speed.
The solver is validated against truth-table enumeration in the tests.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .cnf import CNF

Model = Dict[int, bool]


class Unsatisfiable(Exception):
    """Raised internally on a root-level conflict."""


class Solver:
    """DPLL solver over a fixed clause set.

    The solver is reusable: :meth:`solve` may be called repeatedly with
    different assumptions, and clauses may be added between calls (used for
    blocking-clause model enumeration).
    """

    def __init__(self, cnf: CNF) -> None:
        self._num_vars = cnf.num_vars
        self._clauses: List[List[int]] = []
        self._watches: Dict[int, List[int]] = defaultdict(list)
        self._occurrences: Dict[int, int] = defaultdict(int)
        self._phase: Dict[int, bool] = {}
        self._units: List[int] = []
        self._trivially_unsat = False
        for clause in cnf.clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------
    # Clause management
    # ------------------------------------------------------------------

    def add_clause(self, clause: Iterable[int]) -> None:
        """Add a clause (deduplicated literals; tautologies dropped)."""
        lits = tuple(dict.fromkeys(clause))
        if any(-lit in lits for lit in lits):
            return  # tautology
        if not lits:
            self._trivially_unsat = True
            return
        for lit in lits:
            self._num_vars = max(self._num_vars, abs(lit))
            self._occurrences[lit] += 1
        if len(lits) == 1:
            # Unit clauses are enqueued directly at the start of each solve
            # call; the two-watched-literal scheme needs >= 2 literals.
            self._units.append(lits[0])
            return
        index = len(self._clauses)
        self._clauses.append(list(lits))
        self._watches[lits[0]].append(index)
        self._watches[lits[1]].append(index)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = ()) -> Optional[Model]:
        """Return a model ``{var: bool}`` or ``None`` when unsatisfiable.

        ``assumptions`` are literals forced for this call only.
        """
        if self._trivially_unsat:
            return None
        assign: Dict[int, bool] = {}
        trail: List[int] = []
        # Decision stack: (trail length before the decision, literal tried,
        # whether the flipped literal was already tried).
        decisions: List[Tuple[int, int, bool]] = []
        order = self._branching_order()

        def value(lit: int) -> Optional[bool]:
            v = assign.get(abs(lit))
            if v is None:
                return None
            return v if lit > 0 else not v

        def enqueue(lit: int) -> bool:
            """Assign ``lit`` true; returns False on immediate conflict."""
            current = value(lit)
            if current is not None:
                return current
            assign[abs(lit)] = lit > 0
            trail.append(lit)
            return True

        def propagate(start: int) -> Optional[int]:
            """Unit-propagate from trail position ``start``.

            Returns the index of a conflicting clause, or ``None``.
            """
            qhead = start
            while qhead < len(trail):
                lit = trail[qhead]
                qhead += 1
                falsified = -lit
                watchers = self._watches[falsified]
                i = 0
                while i < len(watchers):
                    ci = watchers[i]
                    clause = self._clauses[ci]
                    # Ensure the falsified literal sits at position 1.
                    if clause[0] == falsified:
                        clause[0], clause[1] = clause[1], clause[0]
                    other = clause[0]
                    if value(other) is True:
                        i += 1
                        continue
                    moved = False
                    for k in range(2, len(clause)):
                        if value(clause[k]) is not False:
                            clause[1], clause[k] = clause[k], clause[1]
                            self._watches[clause[1]].append(ci)
                            watchers[i] = watchers[-1]
                            watchers.pop()
                            moved = True
                            break
                    if moved:
                        continue
                    if value(other) is False:
                        return ci  # conflict
                    if not enqueue(other):
                        return ci
                    i += 1
            return None

        def backtrack() -> bool:
            """Undo to the most recent decision with an untried phase."""
            while decisions:
                mark, lit, flipped = decisions.pop()
                while len(trail) > mark:
                    assign.pop(abs(trail.pop()))
                if not flipped:
                    decisions.append((mark, -lit, True))
                    if not enqueue(-lit):
                        continue
                    conflict = propagate(len(trail) - 1)
                    if conflict is None:
                        return True
                    continue
            return False

        # Permanent units, assumptions, and top-level propagation.
        for lit in self._units:
            if not enqueue(lit):
                return None
        for lit in assumptions:
            if not enqueue(lit):
                return None
        if propagate(0) is not None:
            return None

        while True:
            decision = None
            for var in order:
                if var not in assign:
                    preferred = self._phase.get(var, self._occurrences[var] >= self._occurrences[-var])
                    decision = var if preferred else -var
                    break
            if decision is None:
                model = dict(assign)
                for var in range(1, self._num_vars + 1):
                    model.setdefault(var, False)
                for var, val in model.items():
                    self._phase[var] = val
                return model
            mark = len(trail)
            decisions.append((mark, decision, False))
            enqueue(decision)
            conflict = propagate(len(trail) - 1)
            while conflict is not None:
                if not backtrack():
                    return None
                conflict = None
                # backtrack() already propagated; loop re-checks via its
                # return path, so nothing further to do here.

    def _branching_order(self) -> List[int]:
        """Variables sorted by total occurrence count, most active first."""
        scores = defaultdict(int)
        for lit, count in self._occurrences.items():
            scores[abs(lit)] += count
        return sorted(
            range(1, self._num_vars + 1), key=lambda v: (-scores[v], v)
        )


def solve(cnf: CNF, assumptions: Sequence[int] = ()) -> Optional[Model]:
    """One-shot convenience wrapper around :class:`Solver`."""
    return Solver(cnf).solve(assumptions)
