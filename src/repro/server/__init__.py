"""The live view server: ``MaterializedView`` as a long-lived service.

The ROADMAP's serving story, assembled from parts the earlier PRs
already made serving-shaped:

* **immutable databases** make snapshot-consistent reads free — a
  reader pins the current :class:`~repro.db.database.Database` value
  while the writer advances the view;
* **a single writer queue** (:mod:`repro.server.service`) folds
  concurrent deltas through :meth:`Delta.compose
  <repro.materialize.delta.Delta.compose>` into one
  :meth:`~repro.materialize.view.MaterializedView.apply_many`-equivalent
  maintenance pass per tick;
* **changesets are the wire payload** — subscribers stream the
  :class:`~repro.materialize.view.ChangeSet` of every committed batch;
* **a write-ahead delta log** (:mod:`repro.server.wal`) persists every
  committed batch in the CSV delta format plus a periodic database
  snapshot, so a restarted server recovers by *replay* instead of
  recompute — which is exactly why the CSV value round trip had to
  become the identity (see :mod:`repro.db.csvio`).

Front ends: :mod:`repro.server.net` speaks newline-delimited JSON over
asyncio TCP (``python -m repro serve``); :mod:`repro.server.smoke` is a
self-contained boot → load → kill → replay-equivalence check run by CI.
"""

from .service import ProgramRejected, ViewInfo, ViewServer
from .wal import DeltaLog, RecoveredState

__all__ = [
    "DeltaLog",
    "ProgramRejected",
    "RecoveredState",
    "ViewInfo",
    "ViewServer",
]
