"""The TCP front end: newline-delimited JSON over asyncio streams.

One request per line, one response per line, matched by an optional
client-chosen ``id`` echoed back.  Requests are objects with an ``op``
field::

    {"op": "views"}
    {"op": "register", "name": ..., "program": ..., "semantics": ...,
     "db": {"relations": {...}, "arities": {...}, "universe": [...]}}
    {"op": "delta", "view": ..., "inserts": {...}, "deletes": {...}}
    {"op": "query", "view": ..., "predicate": ..., "undefined": false}
    {"op": "info" | "stats" | "lint", "view": ...}
    {"op": "metrics"}
    {"op": "subscribe", "view": ...}
    {"op": "ping"}
    {"op": "shutdown"}

``register`` runs the static analyzer first: a program with error-level
diagnostics is refused, and the error response carries the findings as
``{"ok": false, "error": ..., "diagnostics": [...]}`` (each entry the
schema-stable object of
:meth:`~repro.analysis.diagnostics.Diagnostic.to_dict`).  ``lint``
returns a hosted view's cached report as the full JSON document
(``{"ok": true, "report": {"version", "summary", "diagnostics"}}``),
and ``stats`` includes the same summary under ``"analysis"``.

``metrics`` returns the process-wide registry rendered as Prometheus
text exposition (``{"ok": true, "metrics": "..."}``) — per-view commit
latency histograms, batch fold sizes, WAL append/snapshot durations,
queue depth, subscriber lag and recovery replay counts, plus whatever
engine-side series the recorder has emitted.

Every response carries ``"ok"``; failures are
``{"ok": false, "error": "..."}`` — a malformed request is a clean error
response, never a dropped connection.  ``subscribe`` acks and then turns
the connection into an event stream: one
``{"event": "change", "view": ..., "seq": ..., "changeset": {...}}``
line per committed batch until either side closes.

:class:`Client` is the matching asyncio client, used by the tests, the
load harness (``repro.bench serve``) and the CI smoke
(:mod:`repro.server.smoke`).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Dict, Optional, Tuple

from ..materialize.view import ChangeSet
from . import protocol
from .protocol import ProtocolError
from .service import ProgramRejected, ViewServer

_LINE_LIMIT = 2 ** 24
"""Stream reader line limit (16 MiB): changesets of large commits are
single lines."""


def _error(message: str, request_id: Any = None) -> Dict[str, Any]:
    response: Dict[str, Any] = {"ok": False, "error": message}
    if request_id is not None:
        response["id"] = request_id
    return response


class TcpFrontend:
    """Serve a :class:`~repro.server.service.ViewServer` over TCP."""

    def __init__(self, service: ViewServer) -> None:
        self.service = service
        self._server: Optional["asyncio.base_events.Server"] = None
        self._stopping: Optional["asyncio.Event"] = None

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind and listen; returns the actual ``(host, port)``."""
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, host, port, limit=_LINE_LIMIT
        )
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    @property
    def port(self) -> int:
        return self._server.sockets[0].getsockname()[1]

    async def wait_stopped(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`close`)."""
        await self._stopping.wait()

    def request_stop(self) -> None:
        """Unblock :meth:`wait_stopped` without closing anything yet.

        Safe to call from a signal handler: the coroutine blocked in
        ``wait_stopped`` resumes and runs its own graceful-close path
        (which cuts the final snapshots) in ordinary task context.
        """
        if self._stopping is not None:
            self._stopping.set()

    async def close(self) -> None:
        """Stop listening and close the service (final snapshots cut)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()
        if self._stopping is not None:
            self._stopping.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: "asyncio.StreamReader", writer: "asyncio.StreamWriter"
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                except ValueError:
                    await self._send(writer, _error("request is not valid JSON"))
                    continue
                if not isinstance(request, dict):
                    await self._send(writer, _error("request is not a JSON object"))
                    continue
                request_id = request.get("id")
                op = request.get("op")
                if op == "subscribe":
                    # The ack is sent, then the connection becomes an
                    # event stream owned by the subscription.
                    await self._subscribe(request, reader, writer)
                    return
                response = await self._dispatch(op, request)
                if request_id is not None:
                    response["id"] = request_id
                await self._send(writer, response)
                if op == "shutdown" and response.get("ok"):
                    asyncio.get_running_loop().create_task(self.close())
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _send(self, writer: "asyncio.StreamWriter", obj: Dict[str, Any]) -> None:
        writer.write(json.dumps(obj, separators=(",", ":")).encode() + b"\n")
        await writer.drain()

    async def _dispatch(self, op: Any, request: Dict[str, Any]) -> Dict[str, Any]:
        try:
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "views":
                return {"ok": True, "views": self.service.views()}
            if op == "register":
                return self._op_register(request)
            if op == "delta":
                return await self._op_delta(request)
            if op == "query":
                return self._op_query(request)
            if op == "info":
                info = self.service.info(self._view_name(request))
                return {
                    "ok": True,
                    "name": info.name,
                    "semantics": info.semantics,
                    "carrier": info.carrier,
                    "seq": info.seq,
                    "edb": info.edb,
                    "idb": info.idb,
                    "durable": info.durable,
                    "recovered": info.recovered,
                }
            if op == "stats":
                stats = self.service.stats(self._view_name(request))
                return {"ok": True, "stats": protocol.encode_stats(stats)}
            if op == "lint":
                report = self.service.lint(self._view_name(request))
                return {"ok": True, "report": report.to_json()}
            if op == "metrics":
                return {"ok": True, "metrics": self.service.metrics()}
            if op == "shutdown":
                return {"ok": True, "stopping": True}
            return _error("unknown op %r" % (op,))
        except ProgramRejected as exc:
            response = _error(str(exc))
            response["diagnostics"] = [
                d.to_dict() for d in exc.report.diagnostics
            ]
            return response
        except (ProtocolError, ValueError, KeyError) as exc:
            message = exc.args[0] if exc.args else str(exc)
            return _error(str(message))

    def _view_name(self, request: Dict[str, Any]) -> str:
        name = request.get("view")
        if not isinstance(name, str) or not name:
            raise ProtocolError("field 'view' must name a registered view")
        return name

    def _op_register(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = request.get("name")
        if not isinstance(name, str) or not name:
            raise ProtocolError("field 'name' must be a non-empty string")
        program_text = request.get("program")
        if not isinstance(program_text, str):
            raise ProtocolError("field 'program' must be the program text")
        db_obj = request.get("db")
        if db_obj is None:
            raise ProtocolError("field 'db' (relations/arities/universe) is required")
        db = protocol.decode_database(db_obj)
        info = self.service.register(
            name,
            program_text,
            db,
            semantics=request.get("semantics", "stratified"),
            carrier=request.get("carrier"),
            durable=bool(request.get("durable", True)),
        )
        return {"ok": True, "name": info.name, "seq": info.seq, "idb": info.idb}

    async def _op_delta(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = self._view_name(request)
        delta = protocol.decode_delta(
            {"inserts": request.get("inserts"), "deletes": request.get("deletes")}
        )
        seq, changeset = await self.service.submit(name, delta)
        return {
            "ok": True,
            "seq": seq,
            "changeset": protocol.encode_changeset(changeset),
        }

    def _op_query(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = self._view_name(request)
        predicate = request.get("predicate")
        if not isinstance(predicate, str) or not predicate:
            raise ProtocolError("field 'predicate' must name a predicate")
        seq, rel = self.service.query(
            name, predicate, undefined=bool(request.get("undefined", False))
        )
        return {
            "ok": True,
            "seq": seq,
            "predicate": predicate,
            "arity": rel.arity,
            "tuples": protocol.encode_tuples(rel.tuples),
        }

    async def _subscribe(
        self,
        request: Dict[str, Any],
        reader: "asyncio.StreamReader",
        writer: "asyncio.StreamWriter",
    ) -> None:
        request_id = request.get("id")
        try:
            name = self._view_name(request)
            sub = self.service.subscribe(name)
        except (ProtocolError, ValueError, KeyError) as exc:
            await self._send(writer, _error(str(exc), request_id))
            return
        ack: Dict[str, Any] = {"ok": True, "subscribed": name}
        if request_id is not None:
            ack["id"] = request_id
        # Race the event pump against connection EOF: a subscriber that
        # hangs up must release its subscription promptly, not hold the
        # fan-out queue until the server shuts down.
        loop = asyncio.get_running_loop()
        pump = loop.create_task(self._pump(name, sub, writer, ack))
        eof = loop.create_task(reader.read())
        try:
            await asyncio.wait({pump, eof}, return_when=asyncio.FIRST_COMPLETED)
        finally:
            self.service.unsubscribe(sub)
            for task in (pump, eof):
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, ConnectionResetError, BrokenPipeError):
                    pass

    async def _pump(
        self,
        name: str,
        sub,
        writer: "asyncio.StreamWriter",
        ack: Dict[str, Any],
    ) -> None:
        await self._send(writer, ack)
        async for seq, changeset in sub:
            await self._send(
                writer,
                {
                    "event": "change",
                    "view": name,
                    "seq": seq,
                    "changeset": protocol.encode_changeset(changeset),
                },
            )


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------


class ServerError(Exception):
    """The server answered ``{"ok": false}``; the message is its error.

    When the server rejected a ``register`` on static-analysis errors,
    ``diagnostics`` holds the response's diagnostic objects (else it is
    the empty list).
    """

    def __init__(self, message: str, diagnostics=None) -> None:
        super().__init__(message)
        self.diagnostics = list(diagnostics or ())


class Client:
    """A minimal asyncio client for the JSON-lines protocol."""

    def __init__(
        self, reader: "asyncio.StreamReader", writer: "asyncio.StreamWriter"
    ) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "Client":
        reader, writer = await asyncio.open_connection(host, port, limit=_LINE_LIMIT)
        return cls(reader, writer)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request, await its response; raise on ``ok: false``."""
        payload = {"op": op}
        payload.update(fields)
        self._writer.write(
            json.dumps(payload, separators=(",", ":")).encode() + b"\n"
        )
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise ServerError(
                response.get("error", "unknown server error"),
                diagnostics=response.get("diagnostics"),
            )
        return response

    # Convenience wrappers -------------------------------------------------

    async def register(
        self,
        name: str,
        program: str,
        db: Dict[str, Any],
        semantics: str = "stratified",
        carrier: Optional[str] = None,
        durable: bool = True,
    ) -> Dict[str, Any]:
        return await self.request(
            "register",
            name=name,
            program=program,
            db=db,
            semantics=semantics,
            carrier=carrier,
            durable=durable,
        )

    async def delta(
        self,
        view: str,
        inserts: Optional[Dict[str, Any]] = None,
        deletes: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        return await self.request(
            "delta", view=view, inserts=inserts or {}, deletes=deletes or {}
        )

    async def query(
        self, view: str, predicate: str, undefined: bool = False
    ) -> Dict[str, Any]:
        return await self.request(
            "query", view=view, predicate=predicate, undefined=undefined
        )

    async def lint(self, view: str) -> Dict[str, Any]:
        """A hosted view's static-analysis report (the JSON document)."""
        response = await self.request("lint", view=view)
        return response["report"]

    async def metrics(self) -> str:
        """The server's Prometheus text exposition."""
        response = await self.request("metrics")
        return response["metrics"]

    async def subscribe(self, view: str) -> AsyncIterator[Tuple[int, ChangeSet]]:
        """Turn this connection into an event stream (see the module doc)."""
        ack = await self.request("subscribe", view=view)
        assert ack.get("subscribed") == view

        async def events() -> AsyncIterator[Tuple[int, ChangeSet]]:
            while True:
                line = await self._reader.readline()
                if not line:
                    return
                event = json.loads(line)
                if event.get("event") != "change":
                    continue
                yield event["seq"], protocol.decode_changeset(event["changeset"])

        return events()
