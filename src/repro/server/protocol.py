"""Wire codec: deltas, changesets and databases as JSON values.

The server speaks newline-delimited JSON; this module is the one place
tuples cross between engine values and wire payloads.  JSON
distinguishes numbers from strings natively, so the engine's value
domain (``int`` and ``str`` — the same convention the CSV layer
persists, see :mod:`repro.db.csvio`) round-trips without any of the
coercion ambiguity the CSV format has to legislate: ``7`` and ``"7"``
are different JSON values and stay different.

Every decoder validates shape and value types and raises
:class:`ProtocolError` with a message naming the offending field, so a
malformed client request becomes a clean error response instead of a
traceback mid-maintenance.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Tuple

from ..db.database import Database
from ..db.relation import Relation
from ..materialize.delta import Delta
from ..materialize.view import ChangeSet


class ProtocolError(ValueError):
    """A malformed wire value (bad shape or a non int/str tuple field)."""


def encode_value(value: Any) -> Any:
    """An engine value as a JSON scalar (``int`` or ``str`` only)."""
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise ProtocolError(
            "value %r is %s; the wire format carries int and str values only"
            % (value, type(value).__name__)
        )
    return value


def decode_value(value: Any) -> Any:
    """A JSON scalar as an engine value (rejects bool/float/null/…)."""
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise ProtocolError(
            "wire value %r is %s; expected an int or str"
            % (value, type(value).__name__)
        )
    return value


def encode_tuple(t: Tuple[Any, ...]) -> List[Any]:
    """A tuple as a JSON array."""
    return [encode_value(v) for v in t]


def decode_tuple(row: Any) -> Tuple[Any, ...]:
    """A JSON array as a tuple."""
    if not isinstance(row, list):
        raise ProtocolError("tuple %r is not a JSON array" % (row,))
    return tuple(decode_value(v) for v in row)


def encode_tuples(tuples: Iterable[Tuple[Any, ...]]) -> List[List[Any]]:
    """A tuple set as a deterministically ordered JSON array of arrays."""
    return [encode_tuple(t) for t in sorted(tuples, key=repr)]


def _decode_tuple_map(obj: Any, field: str) -> Dict[str, List[Tuple[Any, ...]]]:
    if obj is None:
        return {}
    if not isinstance(obj, dict):
        raise ProtocolError("field %r must be an object of relation: rows" % field)
    out = {}
    for name, rows in obj.items():
        if not isinstance(name, str) or not name:
            raise ProtocolError("relation name %r in %r is invalid" % (name, field))
        if not isinstance(rows, list):
            raise ProtocolError(
                "rows of relation %r in %r are not a JSON array" % (name, field)
            )
        out[name] = [decode_tuple(row) for row in rows]
    return out


# ----------------------------------------------------------------------
# Delta
# ----------------------------------------------------------------------


def encode_delta(delta: Delta) -> Dict[str, Any]:
    """A delta as ``{"inserts": {rel: rows}, "deletes": {rel: rows}}``."""
    inserts = {}
    deletes = {}
    for name, (ins, dels) in delta.items():
        if ins:
            inserts[name] = encode_tuples(ins)
        if dels:
            deletes[name] = encode_tuples(dels)
    return {"inserts": inserts, "deletes": deletes}


def decode_delta(obj: Mapping[str, Any]) -> Delta:
    """The inverse of :func:`encode_delta` (absent sides are empty)."""
    if not isinstance(obj, Mapping):
        raise ProtocolError("delta %r is not a JSON object" % (obj,))
    try:
        return Delta(
            inserts=_decode_tuple_map(obj.get("inserts"), "inserts"),
            deletes=_decode_tuple_map(obj.get("deletes"), "deletes"),
        )
    except ValueError as exc:  # overlapping insert/delete of one tuple
        raise ProtocolError(str(exc)) from None


# ----------------------------------------------------------------------
# ChangeSet
# ----------------------------------------------------------------------


def encode_changeset(changeset: ChangeSet) -> Dict[str, Any]:
    """A changeset as ``{"inserted": {...}, "deleted": {...}}``."""
    return {
        "inserted": {
            name: encode_tuples(tuples)
            for name, tuples in sorted(changeset.inserted.items())
        },
        "deleted": {
            name: encode_tuples(tuples)
            for name, tuples in sorted(changeset.deleted.items())
        },
    }


def decode_changeset(obj: Mapping[str, Any]) -> ChangeSet:
    """The inverse of :func:`encode_changeset`."""
    if not isinstance(obj, Mapping):
        raise ProtocolError("changeset %r is not a JSON object" % (obj,))
    return ChangeSet(
        inserted=_decode_tuple_map(obj.get("inserted"), "inserted"),
        deleted=_decode_tuple_map(obj.get("deleted"), "deleted"),
    )


# ----------------------------------------------------------------------
# Statistics / introspection payloads
# ----------------------------------------------------------------------


def encode_stats(value: Any) -> Any:
    """An introspection payload (``stats`` verb) as a JSON-safe value.

    Unlike the tuple codecs above this is *lossy by design*: stats
    blocks mix engine values with counters, floats, Nones, tuples and
    sets (planner join keys, recent-changes digests), and a reader wants
    numbers-or-strings, not a type error.  Mappings and sequences recur;
    tuples become arrays; sets become sorted arrays; anything else
    non-JSON is rendered with ``repr``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(k): encode_stats(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_stats(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((encode_stats(v) for v in value), key=repr)
    return repr(value)


# ----------------------------------------------------------------------
# Database
# ----------------------------------------------------------------------


def encode_database(db: Database) -> Dict[str, Any]:
    """A database as relations + arities + its full universe.

    The universe is carried explicitly because it can exceed the active
    domain (universes never shrink under deletion) and the completion
    semantics quantifies over all of it.
    """
    return {
        "universe": sorted((encode_value(v) for v in db.universe), key=repr),
        "arities": {name: db[name].arity for name in db.relation_names()},
        "relations": {
            name: encode_tuples(db[name].tuples) for name in db.relation_names()
        },
    }


def decode_database(obj: Mapping[str, Any]) -> Database:
    """The inverse of :func:`encode_database`.

    ``universe`` and ``arities`` may be omitted: the universe then
    defaults to the active domain and arities are inferred from the
    first row of each relation (empty relations need ``arities``).
    """
    if not isinstance(obj, Mapping):
        raise ProtocolError("database %r is not a JSON object" % (obj,))
    relations = _decode_tuple_map(obj.get("relations"), "relations")
    arities = obj.get("arities") or {}
    if not isinstance(arities, Mapping):
        raise ProtocolError("field 'arities' must be an object of relation: arity")
    rels = []
    universe = set()
    for name, tuples in relations.items():
        if name in arities:
            arity = arities[name]
            if not isinstance(arity, int) or isinstance(arity, bool) or arity < 0:
                raise ProtocolError("arity of %r must be a non-negative int" % name)
        elif tuples:
            arity = len(tuples[0])
        else:
            raise ProtocolError(
                "relation %r is empty and has no entry in 'arities'" % name
            )
        try:
            rels.append(Relation(name, arity, tuples))
        except ValueError as exc:
            raise ProtocolError(str(exc)) from None
        for t in tuples:
            universe.update(t)
    declared = obj.get("universe")
    if declared is not None:
        if not isinstance(declared, list):
            raise ProtocolError("field 'universe' must be a JSON array")
        universe.update(decode_value(v) for v in declared)
    try:
        return Database(universe, rels)
    except ValueError as exc:  # tuple value outside the declared universe
        raise ProtocolError(str(exc)) from None
