"""The asyncio view service: registered programs, a writer queue, readers.

:class:`ViewServer` hosts named :class:`~repro.materialize.view.MaterializedView`\\ s
and gives each one the serving discipline the ROADMAP asks for:

* **One writer, batched.**  Every view has a single writer task draining
  an :class:`asyncio.Queue`.  Concurrent :meth:`submit` calls enqueue;
  per tick the writer folds everything queued through
  :meth:`Delta.compose <repro.materialize.delta.Delta.compose>` and runs
  **one** maintenance pass for the whole batch (the
  :meth:`~repro.materialize.view.MaterializedView.apply_many`
  transaction semantics: tuples that churn within a tick cost nothing).
  Every submitter of the batch is acknowledged with the commit sequence
  number and the batch's net changeset.
* **Snapshot-consistent reads, free.**  Databases and results are
  immutable values; :meth:`pin` hands a reader the current
  ``(seq, db, result)`` triple, which stays internally consistent no
  matter how far the writer advances.  :meth:`query` is the one-shot
  convenience form.
* **Changesets are the wire payload.**  :meth:`subscribe` returns an
  async iterator of ``(seq, changeset)`` events, fanned out to every
  subscriber as batches commit (empty net changesets are not
  published; the fan-out's recent-events window is deduplicated by the
  changesets' content hash).
* **Durability by replay.**  With a state directory, every committed
  batch is appended to the view's :class:`~repro.server.wal.DeltaLog`
  *before* it is acknowledged, and a snapshot is cut every
  ``snapshot_every`` commits, so :meth:`ViewServer.start` restarts by
  snapshot + WAL replay instead of from-scratch recompute.
"""

from __future__ import annotations

import asyncio
import logging
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..analysis import LintReport, lint_program, lint_source
from ..core.parser import parse_program
from ..core.planning import PLAN_STORE
from ..core.program import Program
from ..core.validation import check_database
from ..db.database import Database
from ..db.relation import Relation
from ..materialize.delta import Delta
from ..materialize.view import SEMANTICS, ChangeSet, MaterializedView
from ..obs import LATENCY_BUCKETS, REGISTRY, SIZE_BUCKETS
from .wal import DeltaLog

logger = logging.getLogger("repro.server")

_SHUTDOWN = object()

# Per-view serving series, registered on the process-wide registry at
# import time so the ``metrics`` verb exposes the families (and their
# HELP/TYPE headers) before the first commit.  These are always-on —
# one dict hit and a locked increment per *commit*, not per tuple — so
# scraping works without enabling the engine-side recorder.
_SUBMITTED = REGISTRY.counter(
    "repro_server_submitted_total",
    "Deltas submitted (accepted into the writer queue).",
    labelnames=("view",),
)
_COMMITS = REGISTRY.counter(
    "repro_server_commits_total",
    "Batches committed (logged, applied, acknowledged).",
    labelnames=("view",),
)
_COMMIT_SECONDS = REGISTRY.histogram(
    "repro_server_commit_seconds",
    "Commit latency: WAL append + one maintenance pass.",
    labelnames=("view",),
    buckets=LATENCY_BUCKETS,
)
_BATCH_SIZE = REGISTRY.histogram(
    "repro_server_batch_size",
    "Deltas folded into one committed batch.",
    labelnames=("view",),
    buckets=SIZE_BUCKETS,
)
_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_server_queue_depth",
    "Writer-queue depth (refreshed per commit and per scrape).",
    labelnames=("view",),
)
_SUBSCRIBERS = REGISTRY.gauge(
    "repro_server_subscribers",
    "Live subscriptions.",
    labelnames=("view",),
)
_SUBSCRIBER_LAG = REGISTRY.gauge(
    "repro_server_subscriber_lag",
    "Most undelivered events across a view's subscribers.",
    labelnames=("view",),
)
_RECOVERY_REPLAYED = REGISTRY.counter(
    "repro_server_recovery_replayed_total",
    "WAL entries replayed while recovering a view.",
    labelnames=("view",),
)
_RECOVERY_SECONDS = REGISTRY.histogram(
    "repro_server_recovery_seconds",
    "Recovery wall time: snapshot load + WAL replay + refixpoint.",
    labelnames=("view",),
    buckets=LATENCY_BUCKETS,
)

_RECENT_WINDOW = 256
"""How many committed changesets the per-view recent-events window keeps
(the dedup set over their content hashes backs the ``stats`` counters)."""


class ProgramRejected(ValueError):
    """``register`` refused a program with error-level diagnostics.

    Carries the full :class:`~repro.analysis.diagnostics.LintReport` so
    the protocol layer can return the diagnostic list to the client.
    """

    def __init__(self, report: LintReport) -> None:
        self.report = report
        from ..analysis import Severity

        errors = [
            d.message for d in report.diagnostics if d.severity is Severity.ERROR
        ]
        super().__init__(
            "program rejected by static analysis: %d error(s): %s"
            % (report.errors, "; ".join(errors))
        )


class UnknownViewError(KeyError):
    """A request named a view this server does not host."""

    def __init__(self, name: str, known) -> None:
        super().__init__(
            "no view named %r; registered views: %s"
            % (name, sorted(known) or "(none)")
        )


@dataclass(frozen=True)
class ViewInfo:
    """What a client learns about a hosted view."""

    name: str
    semantics: str
    carrier: Optional[str]
    seq: int
    edb: Dict[str, int]
    idb: Dict[str, int]
    durable: bool
    recovered: bool


@dataclass(frozen=True)
class Pinned:
    """A snapshot-consistent read handle: immutable values, safely held
    across awaits while the writer advances the view."""

    seq: int
    db: Database
    result: Any


class Subscription:
    """An async iterator of committed ``(seq, ChangeSet)`` events."""

    def __init__(self, view: str) -> None:
        self.view = view
        self._queue: "asyncio.Queue" = asyncio.Queue()
        self._closed = False

    def _publish(self, seq: int, changeset: ChangeSet) -> None:
        if not self._closed:
            self._queue.put_nowait((seq, changeset))

    def close(self) -> None:
        """End the stream (the iterator finishes after drained events)."""
        if not self._closed:
            self._closed = True
            self._queue.put_nowait(None)

    def __aiter__(self) -> "Subscription":
        return self

    async def __anext__(self) -> Tuple[int, ChangeSet]:
        event = await self._queue.get()
        if event is None:
            raise StopAsyncIteration
        return event


class _ViewState:
    """One hosted view: the materialized view plus its serving shell."""

    __slots__ = (
        "name",
        "program",
        "program_text",
        "carrier",
        "view",
        "log",
        "seq",
        "queue",
        "task",
        "subscribers",
        "recent",
        "recovered",
        "submitted",
        "commits",
        "lint_report",
    )

    def __init__(
        self,
        name: str,
        program: Program,
        program_text: str,
        carrier: Optional[str],
        view: MaterializedView,
        log: Optional[DeltaLog],
        seq: int = 0,
        recovered: bool = False,
    ) -> None:
        self.name = name
        self.program = program
        self.program_text = program_text
        self.carrier = carrier
        self.view = view
        self.log = log
        self.seq = seq
        self.queue: "asyncio.Queue" = asyncio.Queue()
        self.task: Optional["asyncio.Task"] = None
        self.subscribers: List[Subscription] = []
        self.recent: "deque" = deque(maxlen=_RECENT_WINDOW)
        self.recovered = recovered
        self.submitted = 0
        self.commits = 0
        # Static-analysis report, computed once (at register, or lazily
        # for recovered views) so analysis stays off the serving path.
        self.lint_report: Optional[LintReport] = None


class ViewServer:
    """A long-lived host for materialized views (see the module doc).

    Parameters
    ----------
    state_dir:
        Root directory for durability.  Each view owns
        ``<state_dir>/<view name>/`` (a :class:`~repro.server.wal.DeltaLog`);
        ``None`` serves purely in memory.
    tick:
        Seconds the writer lingers after the first queued delta before
        committing, so concurrent submitters land in one batch.  ``0``
        commits immediately with whatever else is already queued.
    snapshot_every:
        Cut a snapshot (and prune the WAL behind it) every this many
        commits.  ``None`` disables periodic snapshots — the WAL then
        grows until :meth:`close`, which always cuts a final snapshot.
    parallel:
        Maintain every hosted view over a pool of this many sharded
        worker processes (``0`` stays sequential).  Falls back to
        sequential where process forking is unavailable.
    """

    def __init__(
        self,
        state_dir: Optional[Union[str, Path]] = None,
        tick: float = 0.0,
        snapshot_every: Optional[int] = 64,
        parallel: int = 0,
    ) -> None:
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.tick = tick
        self.snapshot_every = snapshot_every
        self.parallel = parallel
        self._views: Dict[str, _ViewState] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> List[ViewInfo]:
        """Recover every view the state directory holds; return their infos.

        Recovery is replay: rebuild the view at the newest snapshot,
        then apply the WAL entries after it — each one a committed
        batch — through the ordinary maintenance path.
        """
        started = time.perf_counter()
        recovered = []
        if self.state_dir is not None and self.state_dir.is_dir():
            for child in sorted(self.state_dir.iterdir()):
                if child.is_dir() and DeltaLog.exists(child):
                    state = self._recover(child)
                    self._attach(state)
                    recovered.append(self.info(state.name))
        if recovered:
            logger.info(
                "recovery complete: %d view(s) in %.3fs: %s",
                len(recovered),
                time.perf_counter() - started,
                ", ".join(info.name for info in recovered),
            )
        return recovered

    def _recover(self, directory: Path) -> _ViewState:
        started = time.perf_counter()
        log = DeltaLog(directory)
        rec = log.recover()
        program = parse_program(rec.program_text, carrier=rec.carrier)
        view = MaterializedView(
            program, rec.db, semantics=rec.semantics, parallel=self.parallel
        )
        replayed = 0
        for _seq, delta in rec.entries:
            view.apply(delta)
            replayed += 1
        elapsed = time.perf_counter() - started
        _RECOVERY_REPLAYED.labels(rec.view).inc(replayed)
        _RECOVERY_SECONDS.labels(rec.view).observe(elapsed)
        logger.info(
            "recovered view %r (%s): snapshot at seq %d, %d WAL entries "
            "replayed, last seq %d, %.3fs",
            rec.view,
            rec.semantics,
            log.snapshot_seq,
            replayed,
            rec.last_seq,
            elapsed,
        )
        return _ViewState(
            name=rec.view,
            program=program,
            program_text=rec.program_text,
            carrier=rec.carrier,
            view=view,
            log=log,
            seq=rec.last_seq,
            recovered=True,
        )

    def register(
        self,
        name: str,
        program_text: str,
        db: Database,
        semantics: str = "stratified",
        carrier: Optional[str] = None,
        durable: bool = True,
    ) -> ViewInfo:
        """Host a new view: lint, parse, validate, evaluate, start its writer.

        The program text runs through the static analyzer first; any
        error-level diagnostic (parse failure, arity conflict, missing
        or mismatched database relation) raises :class:`ProgramRejected`
        carrying the full report, so protocol clients get the diagnostic
        list instead of a bare message.  Warnings (unsafe rules,
        non-stratifiability) do not block — inflationary and
        well-founded semantics are total.

        With a state directory (and ``durable``), the initial database
        is snapshotted before the first delta is accepted, so a crash at
        any later point recovers.
        """
        if self._closed:
            raise RuntimeError("server is closed")
        if name in self._views:
            raise ValueError("a view named %r is already registered" % name)
        if semantics not in SEMANTICS:
            raise ValueError(
                "unknown semantics %r; expected one of %s" % (semantics, SEMANTICS)
            )
        report = lint_source(program_text, db=db, carrier=carrier)
        if report.has_errors():
            raise ProgramRejected(report)
        program = parse_program(program_text, carrier=carrier)
        check_database(program, db)
        log = None
        if durable and self.state_dir is not None:
            log = DeltaLog.initialise(
                self.state_dir / name, name, program_text, semantics, carrier, db
            )
        view = MaterializedView(
            program, db, semantics=semantics, parallel=self.parallel
        )
        state = _ViewState(
            name=name,
            program=program,
            program_text=program_text,
            carrier=carrier,
            view=view,
            log=log,
        )
        state.lint_report = report
        self._attach(state)
        logger.info(
            "registered view %r: %s semantics, %d rules, durable=%s",
            name,
            semantics,
            len(program.rules),
            log is not None,
        )
        return self.info(name)

    def _attach(self, state: _ViewState) -> None:
        self._views[state.name] = state
        state.task = asyncio.get_running_loop().create_task(self._writer_loop(state))

    async def close(self) -> None:
        """Stop every writer, end subscriptions, cut final snapshots."""
        self._closed = True
        for state in self._views.values():
            state.queue.put_nowait(_SHUTDOWN)
        for state in self._views.values():
            if state.task is not None:
                await state.task
                state.task = None
            if state.log is not None and state.seq > state.log.snapshot_seq:
                state.log.snapshot(state.seq, state.view.db)
            for sub in list(state.subscribers):
                sub.close()
            state.subscribers.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def views(self) -> List[str]:
        """The hosted view names, sorted."""
        return sorted(self._views)

    def _state(self, name: str) -> _ViewState:
        try:
            return self._views[name]
        except KeyError:
            raise UnknownViewError(name, self._views) from None

    def info(self, name: str) -> ViewInfo:
        """Schema-level facts about a hosted view."""
        state = self._state(name)
        program = state.program
        return ViewInfo(
            name=state.name,
            semantics=state.view.semantics,
            carrier=state.carrier,
            seq=state.seq,
            edb={p: program.arity(p) for p in sorted(program.edb_predicates)},
            idb={p: program.arity(p) for p in sorted(program.idb_predicates)},
            durable=state.log is not None,
            recovered=state.recovered,
        )

    def lint(self, name: str) -> LintReport:
        """The static-analysis report for a hosted view.

        Computed once — at :meth:`register`, or on first request for a
        recovered view (against the database as of that moment) — and
        cached on the view state; the analyzer never runs on the commit
        path.
        """
        state = self._state(name)
        if state.lint_report is None:
            state.lint_report = lint_program(state.program, state.view.db)
        return state.lint_report

    def stats(self, name: str) -> Dict[str, Any]:
        """Serving counters for one view (the observability face).

        ``kernel`` reports the columnar substrate the view runs on —
        which backend is live and how many constants its database family
        has interned (``None`` until something touches the kernel; the
        peek never forces a table into existence).  ``cardinalities``
        are the current per-predicate relation sizes; relations track
        their length, so the whole block is O(#predicates), safe to
        poll — no served tuple is ever counted, copied, or decoded.
        ``planner`` surfaces the shared plan store's observed feedback:
        per-predicate observed cardinalities, empirical join
        selectivities, and how many adaptive re-plans have fired.
        ``analysis`` is the cached static-analysis summary — program
        class, stratum count, negative-cycle predicates, diagnostic
        counts and codes — computed once per registration, never per
        poll.
        """
        from ..db import kernel

        report = self.lint(name)
        state = self._state(name)
        program = state.program
        db = state.view.db
        return {
            "seq": state.seq,
            "submitted": state.submitted,
            "commits": state.commits,
            "applied": state.view.applied,
            "recomputes": state.view.recomputes,
            "queue_depth": state.queue.qsize(),
            "subscribers": len(state.subscribers),
            "recent_events": len(state.recent),
            # ChangeSet hashes by content, so the window dedups exactly.
            "distinct_recent_changes": len({cs for _, cs in state.recent}),
            "snapshot_seq": (
                state.log.snapshot_seq if state.log is not None else None
            ),
            "kernel": {
                "backend": kernel.backend(),
                "interned_constants": db.interned_size(),
            },
            "cardinalities": {
                "edb": {
                    p: (len(r) if (r := db.get(p)) is not None else 0)
                    for p in sorted(program.edb_predicates)
                },
                "idb": {
                    p: len(state.view.relation(p))
                    for p in sorted(program.idb_predicates)
                },
            },
            "planner": PLAN_STORE.statistics.snapshot(),
            "analysis": dict(report.summary(), codes=list(report.codes())),
        }

    def metrics(self) -> str:
        """The process-wide metrics registry in Prometheus text format.

        Counters and histograms accumulate as commits happen;
        point-in-time gauges — queue depth, subscriber counts and lag —
        are refreshed per scrape so every exposition is current.
        """
        for state in self._views.values():
            _QUEUE_DEPTH.labels(state.name).set(state.queue.qsize())
            _SUBSCRIBERS.labels(state.name).set(len(state.subscribers))
            _SUBSCRIBER_LAG.labels(state.name).set(
                max((s._queue.qsize() for s in state.subscribers), default=0)
            )
        return REGISTRY.exposition()

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    def pin(self, name: str) -> Pinned:
        """The current ``(seq, db, result)``, safe to hold across awaits."""
        state = self._state(name)
        return Pinned(seq=state.seq, db=state.view.db, result=state.view.result)

    def query(
        self, name: str, predicate: str, undefined: bool = False
    ) -> Tuple[int, Relation]:
        """One predicate's current value with its commit sequence.

        EDB predicates read from the database, IDB predicates from the
        maintained result.  For well-founded views the IDB value is the
        *true* partition; ``undefined=True`` reads the undefined one
        (an error for two-valued views, which have none).
        """
        state = self._state(name)
        program = state.program
        if undefined:
            if state.view.semantics != "wellfounded":
                raise ValueError(
                    "view %r has two-valued semantics %r: no undefined "
                    "partition to query" % (name, state.view.semantics)
                )
            if predicate not in program.idb_predicates:
                raise KeyError(
                    "predicate %r is not an IDB predicate of view %r"
                    % (predicate, name)
                )
            return state.seq, state.view.result.undefined_idb()[predicate]
        if predicate in program.idb_predicates:
            return state.seq, state.view.relation(predicate)
        rel = state.view.db.get(predicate)
        if rel is None:
            raise KeyError(
                "predicate %r is neither an IDB predicate nor a database "
                "relation of view %r" % (predicate, name)
            )
        return state.seq, rel

    def subscribe(self, name: str) -> Subscription:
        """Stream every future committed batch's net changeset."""
        state = self._state(name)
        sub = Subscription(name)
        state.subscribers.append(sub)
        _SUBSCRIBERS.labels(state.name).set(len(state.subscribers))
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Detach and close a subscription."""
        state = self._views.get(sub.view)
        if state is not None and sub in state.subscribers:
            state.subscribers.remove(sub)
            _SUBSCRIBERS.labels(state.name).set(len(state.subscribers))
        sub.close()

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------

    async def submit(self, name: str, delta: Delta) -> Tuple[int, ChangeSet]:
        """Queue a delta; await its commit.

        The delta is validated against the view's schema *now* (a bad
        delta fails its submitter alone, never the batch it would have
        joined) and acknowledged once the batch containing it is durably
        logged and applied.  The returned changeset is the whole batch's
        net effect and the sequence number is the batch's commit — the
        transaction the submitter rode in.
        """
        state = self._state(name)
        state.view.validate_delta(delta)
        state.submitted += 1
        _SUBMITTED.labels(state.name).inc()
        future: "asyncio.Future" = asyncio.get_running_loop().create_future()
        state.queue.put_nowait((delta, future))
        return await future

    async def _writer_loop(self, state: _ViewState) -> None:
        while True:
            item = await state.queue.get()
            if item is _SHUTDOWN:
                return
            batch = [item]
            if self.tick > 0:
                # Linger one tick so concurrent submitters share the pass.
                await asyncio.sleep(self.tick)
            stop = False
            while True:
                try:
                    nxt = state.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is _SHUTDOWN:
                    stop = True
                    break
                batch.append(nxt)
            self._commit(state, batch)
            if stop:
                return

    def _commit(self, state: _ViewState, batch) -> None:
        composed = Delta.empty()
        for delta, _future in batch:
            composed = composed.compose(delta)
        futures = [future for _delta, future in batch]
        if composed.is_empty():
            # The batch churned to nothing: no log entry, no seq, and the
            # committed-state semantics says nothing happened.
            for future in futures:
                if not future.cancelled():
                    future.set_result((state.seq, ChangeSet()))
            return
        seq = state.seq + 1
        started = time.perf_counter()
        try:
            if state.log is not None:
                # Write-ahead: the entry is durable before any state moves
                # and before any submitter is acknowledged.
                state.log.append(seq, composed)
            try:
                changeset = state.view.apply(composed)
            except BaseException:
                # apply's exception contract left the view untouched; the
                # logged entry must not outlive the failed batch, or replay
                # would apply an update that never happened.
                if state.log is not None:
                    state.log.discard(seq)
                raise
        except Exception as exc:
            for future in futures:
                if not future.cancelled():
                    future.set_exception(exc)
            return
        state.seq = seq
        state.commits += 1
        _COMMITS.labels(state.name).inc()
        _BATCH_SIZE.labels(state.name).observe(len(batch))
        _COMMIT_SECONDS.labels(state.name).observe(time.perf_counter() - started)
        _QUEUE_DEPTH.labels(state.name).set(state.queue.qsize())
        if (
            state.log is not None
            and self.snapshot_every is not None
            and seq - state.log.snapshot_seq >= self.snapshot_every
        ):
            state.log.snapshot(seq, state.view.db)
        if not changeset.is_empty():
            state.recent.append((seq, changeset))
            for sub in state.subscribers:
                sub._publish(seq, changeset)
        for future in futures:
            if not future.cancelled():
                future.set_result((seq, changeset))
