"""End-to-end serving smoke: boot, load, kill, restart, replay-check.

``PYTHONPATH=src python -m repro.server.smoke`` runs the whole serving
story against a real TCP socket in one process and exits non-zero on
the first violated assertion — CI's "the server actually serves" gate,
complementing the unit tests (which exercise the same paths in-process)
and the load harness (which measures instead of asserting):

1. boot a durable :class:`~repro.server.ViewServer` + TCP front end on
   an ephemeral port;
2. register a stratified view (transitive closure + its negation — the
   negation makes maintenance non-monotone, so a replay that is merely
   *similar* would be caught) over the JSON protocol; check the
   ``lint`` verb reports it clean, and that a program with error-level
   diagnostics is *refused* with the findings in the response;
3. POST concurrent deltas, including value shapes the old CSV coercion
   corrupted (``"01"``, ``" 7"``, ``"+5"`` as *strings*), and check a
   subscriber streamed every committed changeset;
4. query through the wire and against a local reference
   :class:`~repro.materialize.view.MaterializedView` fed the same
   deltas;
5. kill the server without a final snapshot (the crash), restart from
   the state directory — recovery is snapshot + WAL replay — and check
   the recovered view state equals the pre-crash one exactly;
6. scrape the ``metrics`` verb on both sides of the crash and check the
   story is visible in the exposition: commit/batch/WAL series present
   and populated before the crash, the recovery replay counter advanced
   after the restart, and the commit counter strictly increasing across
   it (the registry is process-wide, so counters survive the in-process
   "crash" and keep climbing).
"""

from __future__ import annotations

import asyncio
import shutil
import sys
import tempfile
from pathlib import Path

from ..core.parser import parse_program
from ..db.database import Database
from ..db.relation import Relation
from ..materialize.delta import Delta
from ..materialize.view import MaterializedView
from .net import Client, ServerError, TcpFrontend
from .service import ViewServer

PROGRAM = """
    TC(X, Y) :- E(X, Y).
    TC(X, Y) :- E(X, Z), TC(Z, Y).
    NOTC(X, Y) :- !TC(X, Y).
"""

_checks = 0


def _sample(exposition: str, name: str, label: str = 'view="tc"') -> float:
    """The first sample of ``name`` carrying ``label`` (NaN when absent)."""
    for line in exposition.splitlines():
        if line.startswith(name + "{") and label in line:
            return float(line.rsplit(" ", 1)[1])
    return float("nan")


def check(condition: bool, label: str) -> None:
    global _checks
    _checks += 1
    status = "ok" if condition else "FAIL"
    print("  [%s] %s" % (status, label))
    if not condition:
        raise AssertionError("smoke check failed: %s" % label)


async def main() -> int:
    state_dir = Path(tempfile.mkdtemp(prefix="repro-serve-smoke-"))
    try:
        await run(state_dir)
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)
    print("serve smoke passed (%d checks)" % _checks)
    return 0


async def run(state_dir: Path) -> None:
    # --- boot ---------------------------------------------------------
    service = ViewServer(state_dir=state_dir, tick=0.0, snapshot_every=4)
    frontend = TcpFrontend(service)
    host, port = await frontend.start()
    print("booted server on %s:%d (state: %s)" % (host, port, state_dir))

    edges = [(1, 2), (2, 3), (3, 4)]
    client = await Client.connect(host, port)
    await client.register(
        "tc",
        PROGRAM,
        db={"relations": {"E": [list(e) for e in edges]}, "arities": {"E": 2}},
        carrier="NOTC",
    )
    check((await client.request("views"))["views"] == ["tc"], "view registered")

    # --- static analysis over the wire --------------------------------
    report = await client.lint("tc")
    check(report["summary"]["class"] == "stratified", "lint verb reports the class")
    check(report["summary"]["errors"] == 0, "hosted program has no error diagnostics")
    try:
        await client.register(
            "bad",
            "P(X) :- Q(X). P(X, Y) :- Q(Y).",
            db={"relations": {}, "arities": {}},
        )
        check(False, "register refused the arity-conflicted program")
    except ServerError as exc:
        check(
            any(d["code"] == "A001" for d in exc.diagnostics),
            "rejection response carries the A001 diagnostic",
        )
    check((await client.request("views"))["views"] == ["tc"], "rejected view not hosted")

    # --- a subscriber watches every commit ----------------------------
    watcher = await Client.connect(host, port)
    events = await watcher.subscribe("tc")

    # --- concurrent writers, incl. the corruption-prone values --------
    # "01", " 7", "+5" are *strings* the old bare-int() coercion turned
    # into integers on WAL replay; 10 is a genuine int sharing the file.
    deltas = [
        {"inserts": {"E": [[4, 5], [5, 1]]}},
        {"inserts": {"E": [["01", " 7"], [" 7", "+5"], ["+5", 10]]}},
        {"deletes": {"E": [[3, 4]]}},
        {"inserts": {"E": [[10, "01"]]}},
    ]
    writers = [
        asyncio.create_task(_post(host, port, d)) for d in deltas
    ]
    acks = await asyncio.gather(*writers)
    check(all(a["ok"] for a in acks), "concurrent deltas all acknowledged")
    seqs = sorted(a["seq"] for a in acks)
    check(seqs == sorted(set(seqs)) or len(set(seqs)) < len(seqs), "commit seqs assigned")

    # Reference view fed the same deltas, in commit order.
    reference = MaterializedView(
        parse_program(PROGRAM, carrier="NOTC"),
        Database({v for e in edges for v in e}, [Relation("E", 2, edges)]),
    )
    for delta in deltas:
        reference.apply(
            Delta(
                inserts={
                    r: [tuple(t) for t in rows]
                    for r, rows in delta.get("inserts", {}).items()
                },
                deletes={
                    r: [tuple(t) for t in rows]
                    for r, rows in delta.get("deletes", {}).items()
                },
            )
        )
    # The server may have folded writers into fewer batches, but the
    # composed effect is order-insensitive here (disjoint tuples).
    queried = await client.query("tc", "TC")
    served = {tuple(t) for t in queried["tuples"]}
    check(served == set(reference.relation("TC").tuples), "served TC == reference TC")
    string_edge = ("01", " 7")
    check(string_edge in {tuple(t) for t in (await client.query("tc", "E"))["tuples"]},
          "int-lookalike strings served uncorrupted")

    # The subscriber saw every commit the acks named.
    max_seq = max(a["seq"] for a in acks)
    seen = set()
    async for seq, _changeset in events:
        seen.add(seq)
        if seq >= max_seq:
            break
    check(set(a["seq"] for a in acks) <= seen, "subscriber streamed every commit")
    await watcher.close()

    # --- metrics verb: the serving story shows in the exposition ------
    exposition = await client.metrics()
    commits_before = _sample(exposition, "repro_server_commits_total")
    check(commits_before >= 1, "metrics verb exposes the commit counter")
    check(
        _sample(exposition, "repro_server_batch_size_count") >= 1,
        "commit batch-size histogram populated",
    )
    check(
        _sample(exposition, "repro_server_commit_seconds_count") >= 1,
        "commit latency histogram populated",
    )
    check(
        _sample(exposition, "repro_wal_append_seconds_count") >= 1,
        "WAL append latency histogram populated",
    )

    pre_crash = {
        "seq": service.pin("tc").seq,
        "db": service.pin("tc").db,
        "idb": dict(service.pin("tc").result.idb),
    }

    # --- crash: no graceful close, no final snapshot ------------------
    # (close() would cut a snapshot; a real crash does not get one.
    # Killing the tasks and dropping the service leaves only what the
    # write-ahead log already made durable — which must be everything
    # acknowledged above.)
    frontend._server.close()
    for state in service._views.values():
        if state.task is not None:
            state.task.cancel()
    await client.close()
    del service, frontend
    print("crashed server (state dir holds snapshot + WAL only)")

    # --- restart: recovery is snapshot + WAL replay -------------------
    service2 = ViewServer(state_dir=state_dir, tick=0.0, snapshot_every=4)
    recovered = await service2.start()
    check([i.name for i in recovered] == ["tc"], "restart recovered the view")
    check(recovered[0].recovered, "recovery went through the replay path")
    pin = service2.pin("tc")
    check(pin.seq == pre_crash["seq"], "replay reached the pre-crash sequence")
    check(pin.db == pre_crash["db"], "replayed database == pre-crash database")
    check(
        dict(pin.result.idb) == pre_crash["idb"],
        "replayed view result == pre-crash result (exact)",
    )

    # The recovered server keeps serving: one more write + read.
    frontend2 = TcpFrontend(service2)
    host2, port2 = await frontend2.start()
    client2 = await Client.connect(host2, port2)
    ack = await client2.delta("tc", inserts={"E": [[99, 1]]})
    check(ack["seq"] == pre_crash["seq"] + 1, "post-recovery commit continues the log")
    tc_after = {tuple(t) for t in (await client2.query("tc", "TC"))["tuples"]}
    check((99, 2) in tc_after, "post-recovery maintenance is live")

    # Metrics across the crash: recovery counters advanced, commits kept
    # climbing (same process, same registry — the smoke's "crash" kills
    # the server objects, not the counters).
    exposition2 = await client2.metrics()
    check(
        _sample(exposition2, "repro_server_recovery_replayed_total") >= 1,
        "recovery replay counter advanced on restart",
    )
    check(
        _sample(exposition2, "repro_server_recovery_seconds_count") >= 1,
        "recovery wall-time histogram populated",
    )
    check(
        _sample(exposition2, "repro_server_commits_total") > commits_before,
        "commit counter strictly increased across crash/replay",
    )
    stats = (await client2.request("stats", view="tc"))["stats"]
    check("planner" in stats, "stats verb carries the planner statistics block")
    check(
        stats.get("analysis", {}).get("class") == "stratified",
        "stats analysis block live after recovery (lazily computed)",
    )
    await client2.close()
    await frontend2.close()


async def _post(host: str, port: int, delta: dict) -> dict:
    client = await Client.connect(host, port)
    try:
        return await client.delta(
            "tc", inserts=delta.get("inserts"), deletes=delta.get("deletes")
        )
    finally:
        await client.close()


if __name__ == "__main__":
    sys.exit(asyncio.run(main()))
